//! Umbrella crate: examples and integration tests for the Zab reproduction.
pub use zab_core as core;
