//! In-tree shim of the `rand_chacha` crate: [`ChaCha8Rng`].
//!
//! The generator is a real ChaCha stream cipher core with 8 rounds
//! (Bernstein's ChaCha, reduced-round variant) keyed from a `u64` seed
//! via SplitMix64 expansion. Output *values* are not bit-compatible with
//! the upstream crate — only the workspace's own recorded numbers depend
//! on them — but the statistical and determinism properties are the real
//! thing.

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word in `block` (16 = exhausted).
    word_idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64 step, used only to expand the seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])) + 1;
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word_idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, block: [0; 16], word_idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.word_idx + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.word_idx];
        let hi = self.block[self.word_idx + 1];
        self.word_idx += 2;
        u64::from(hi) << 32 | u64::from(lo)
    }

    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        let mut c = ChaCha8Rng::seed_from_u64(100);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_is_well_spread() {
        // Crude sanity: over 4096 draws of 0..256, every byte value shows up.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 256];
        for _ in 0..4096 {
            seen[rng.gen_range(0usize..256)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some byte values never sampled");
    }

    #[test]
    fn blocks_differ_as_counter_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
