//! In-tree shim of the `parking_lot` crate (the subset this workspace
//! uses).
//!
//! Same call signatures as upstream — `lock()` returns the guard
//! directly, with no `Result` — implemented over `std::sync` primitives.
//! Poisoning is deliberately ignored (parking_lot has no poisoning): a
//! panic while holding the lock does not wedge every later locker.

use std::fmt;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // Upstream parking_lot has no poisoning; neither do we.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
