//! In-tree shim of the `crossbeam` crate (the subset this workspace
//! uses): [`channel`] with unbounded MPMC channels, [`channel::tick`],
//! and a [`select!`] macro.
//!
//! Semantics match upstream where the workspace depends on them:
//! `send` fails once every receiver is gone, `recv` fails once every
//! sender is gone and the queue is drained, and a `select!` arm binds
//! `Result<T, RecvError>`. The implementation is a `Mutex<VecDeque>` +
//! `Condvar` per channel — simple and fair enough for the thread-per-
//! connection transport this workspace runs.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`]: every receiver is gone. The
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`]: channel empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Channel empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline passed with nothing queued.
        Timeout,
        /// Channel empty and every sender is gone.
        Disconnected,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// A receiver that yields the current [`Instant`] every `period`,
    /// driven by a dedicated timer thread. The thread exits after the
    /// last receiver is dropped.
    #[must_use]
    pub fn tick(period: Duration) -> Receiver<Instant> {
        let (tx, rx) = unbounded();
        std::thread::Builder::new()
            .name("channel-tick".into())
            .spawn(move || loop {
                std::thread::sleep(period);
                if tx.send(Instant::now()).is_err() {
                    return;
                }
            })
            .expect("spawn tick thread");
        rx
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        shared.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver is gone.
        ///
        /// # Errors
        ///
        /// [`SendError`] carrying `msg` back when disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.0);
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.0).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.0);
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message or disconnection.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is drained and senderless.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.0);
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Blocks until a message, disconnection, or `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = lock(&self.0);
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                inner = guard;
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.0);
            match inner.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Queued message count (racy, for diagnostics).
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.0).queue.len()
        }

        /// Whether the queue is empty right now (racy, for diagnostics).
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// `select!` support: whether `recv` would return without
        /// blocking (message queued, or channel disconnected).
        #[doc(hidden)]
        pub fn __select_ready(&self) -> bool {
            let inner = lock(&self.0);
            !inner.queue.is_empty() || inner.senders == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.0).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.0).receivers -= 1;
        }
    }

    // Re-export so `crossbeam::channel::select!` resolves like upstream.
    pub use crate::select;
}

/// Waits on several receivers, running the arm of whichever is ready
/// first. Each arm binds `Result<T, RecvError>` exactly like upstream
/// crossbeam: `Ok(msg)` for a message, `Err(RecvError)` once that
/// channel disconnects.
///
/// The readiness wait and the arm dispatch are separate passes, and the
/// dispatch runs outside any macro-introduced loop — so `break` /
/// `continue` inside an arm body act on the *caller's* enclosing loop,
/// matching upstream semantics. Each receiver must have a single
/// consuming thread (true everywhere in this workspace); with competing
/// consumers a ready message could be stolen between the two passes.
#[macro_export]
macro_rules! select {
    ( $( recv($rx:expr) -> $pat:pat => $body:expr $(,)? )+ ) => {{
        let __winner: usize = loop {
            let mut __idx = 0usize;
            let mut __found: ::core::option::Option<usize> = ::core::option::Option::None;
            $(
                if __found.is_none() && (&$rx).__select_ready() {
                    __found = ::core::option::Option::Some(__idx);
                }
                __idx += 1;
            )+
            let _ = __idx;
            if let ::core::option::Option::Some(__w) = __found {
                break __w;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(200));
        };
        let mut __idx = 0usize;
        $(
            {
                let __this = __idx;
                __idx += 1;
                if __winner == __this {
                    let $pat = match (&$rx).try_recv() {
                        ::core::result::Result::Ok(__msg) => ::core::result::Result::Ok(__msg),
                        ::core::result::Result::Err(_) =>
                            ::core::result::Result::Err($crate::channel::RecvError),
                    };
                    $body
                }
            }
        )+
        let _ = __idx;
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_propagates_both_ways() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        t.join().unwrap();
    }

    #[test]
    fn cross_thread_fan_in() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn select_picks_ready_arm_and_breaks_caller_loop() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(5).unwrap();
        let mut tx_a = Some(tx_a);
        let mut seen = Vec::new();
        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > 2 {
                panic!("select failed to drive the caller's loop");
            }
            crate::select! {
                recv(rx_a) -> msg => match msg {
                    Ok(v) => { seen.push(v); tx_a.take(); },
                    // `break` here must exit *this* loop, not a macro loop.
                    Err(_) => break,
                },
                recv(rx_b) -> _msg => unreachable!("rx_b never ready"),
            }
        }
        assert_eq!(seen, vec![5]);
        assert_eq!(rounds, 2);
    }

    #[test]
    fn tick_fires_repeatedly() {
        let rx = super::channel::tick(Duration::from_millis(2));
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert!(b >= a);
    }
}
