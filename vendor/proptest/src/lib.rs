//! In-tree shim of the `proptest` crate (the subset this workspace
//! uses).
//!
//! Same surface syntax as upstream — `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `prop_assume!`, `Strategy`/`prop_map`, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::Index` — backed by a simple
//! deterministic runner: each test draws `ProptestConfig::cases` inputs
//! from a ChaCha8 stream seeded from the test's module path, so runs are
//! reproducible without any persistence files.
//!
//! Differences from upstream, deliberate:
//!
//! - **No shrinking.** A failing case reports its exact inputs
//!   (`Debug`-formatted) instead of a minimized one.
//! - **No regression-file replay.** `*.proptest-regressions` files are
//!   kept in-tree as documentation of historical failures; the shrunken
//!   cases they record are pinned as ordinary unit tests next to the
//!   properties (see `crates/core/tests/prop.rs`).
//! - String strategies accept the regex-flavored patterns the workspace
//!   uses (`"\\PC{0,64}"`) but interpret them as "printable chars, with
//!   the braced length bound", not as general regexes.
//!
//! `PROPTEST_CASES` in the environment overrides the per-test case count
//! just like upstream.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` module path used inside `proptest!` bodies.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests.
///
/// Accepts the upstream form: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases = $crate::test_runner::effective_cases(&__config);
            let mut __rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cases.saturating_mul(20).max(1000),
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name),
                    __accepted,
                    __cases,
                );
                let __values =
                    ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                // Debug-render inputs up front; the body takes them by value.
                let __inputs: ::std::string::String = format!(
                    "  {} = {:?}",
                    stringify!($($arg),+),
                    &__values,
                );
                let ( $($arg,)+ ) = __values;
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__why)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\ninputs:\n{}",
                            stringify!($name),
                            __accepted,
                            __why,
                            __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![ $( ::std::boxed::Box::new($strat) ),+ ];
        $crate::strategy::Union::new(__options)
    }};
}

/// Fails the current case (returns `Err(TestCaseError::Fail)`) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `left != right`\n  both: {:?}", __l);
    }};
}

/// Discards the current case (drawing a replacement) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
