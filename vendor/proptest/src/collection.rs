//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length bound for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy producing `Vec`s of `element` with a length in `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = vec(any::<u8>(), 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
        }
        let nested = vec(vec(any::<u8>(), 0..3), 1..4);
        let n = nested.generate(&mut rng);
        assert!((1..=3).contains(&n.len()));
    }
}
