//! Case-runner plumbing behind the `proptest!` macro.

use rand::SeedableRng;

/// Per-test configuration (upstream's `Config`, re-exported by the
/// prelude as `ProptestConfig`). Only the fields this workspace sets are
/// present.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
    /// Accepted for upstream compatibility; this runner does not shrink,
    /// so the value is unused.
    pub max_shrink_iters: u32,
}

/// Upstream module-path alias (`test_runner::Config`).
pub use ProptestConfig as Config;

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// Resolves the case count, honoring the `PROPTEST_CASES` environment
/// override like upstream.
#[must_use]
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(config.cases),
        Err(_) => config.cases,
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated; the runner fails the test.
    Fail(String),
    /// The drawn inputs don't satisfy an assumption; the runner draws a
    /// replacement case.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(why) => write!(f, "case failed: {why}"),
            TestCaseError::Reject(why) => write!(f, "case rejected: {why}"),
        }
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG for a property test, seeded from its fully
/// qualified name (FNV-1a), so every run explores the same sequence.
#[must_use]
pub fn rng_for(test_name: &str) -> crate::strategy::TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    crate::strategy::TestRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_per_name_deterministic() {
        let mut a = rng_for("mod::test_a");
        let mut b = rng_for("mod::test_a");
        let mut c = rng_for("mod::test_b");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
    }

    #[test]
    fn config_override_shape() {
        let cfg = ProptestConfig { cases: 48, ..ProptestConfig::default() };
        assert_eq!(cfg.cases, 48);
        assert_eq!(cfg.max_shrink_iters, ProptestConfig::default().max_shrink_iters);
    }
}
