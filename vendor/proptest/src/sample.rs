//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection whose size is unknown at generation time.
///
/// Generated via `any::<Index>()`; resolved against a concrete length
/// with [`Index::index`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Index {
        Index(raw)
    }

    /// Resolves against a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Index({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_stable_and_bounded() {
        let i = Index::new(1_000_003);
        assert_eq!(i.index(10), i.index(10));
        assert!(i.index(7) < 7);
        assert_eq!(i.index(1), 0);
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn zero_len_panics() {
        let _ = Index::new(3).index(0);
    }
}
