//! Strategy trait and combinators.

use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG threaded through generation: deterministic per test.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree / shrinking; `generate` draws
/// one concrete value.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Keeps only values satisfying `f`, rejecting (and redrawing) the
    /// rest.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, keep: f, whence }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    source: S,
    keep: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws: {}", self.whence);
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps the given non-empty option list.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// The workspace's string-pattern strategies: a `&'static str` literal
/// is treated as "printable characters" with an optional trailing
/// `{min,max}` length bound (e.g. `"\\PC{0,64}"`). Anything without a
/// brace bound defaults to lengths `0..=32`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_length_bound(self).unwrap_or((0, 32));
        let len = rng.gen_range(min..=max);
        // Printable, multi-byte-inclusive alphabet so codecs see real
        // UTF-8 variety, not just ASCII.
        const ALPHABET: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '!', '~', '/', '\\', '"', '\'', 'é', 'ß', 'λ',
            'Ω', '中', '文', '🦀', '𝕫',
        ];
        (0..len).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())]).collect()
    }
}

fn parse_length_bound(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (min, max) = body.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_covers_all_options() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_pattern_respects_length_bound() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "\\PC{0,64}".generate(&mut r);
            assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = (0u8..5, 10u16..20, Just(true)).generate(&mut r);
        assert!(a < 5 && (10..20).contains(&b) && c);
    }
}
