//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::{Strategy, TestRng};
use rand::RngCore;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (see [`any`]).
pub struct ArbitraryStrategy<A>(PhantomData<A>);

impl<A> Debug for ArbitraryStrategy<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any::<_>()")
    }
}

impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

/// The canonical strategy for `A`, upstream-style entry point.
#[must_use]
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    ArbitraryStrategy(PhantomData)
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn primitives_cover_their_width() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = any::<u8>();
        let mut seen = [false; 256];
        for _ in 0..8192 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 250);
        let flags: Vec<bool> = (0..32).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(flags.contains(&true) && flags.contains(&false));
    }
}
