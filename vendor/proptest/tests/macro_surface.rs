//! End-to-end exercise of the `proptest!` macro surface the workspace
//! uses: config attribute, multiple tests per block, tuple/map/oneof
//! strategies, string patterns, `Index`, assume/assert, and `?` on
//! `TestCaseError`.

use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
enum Op {
    Push(u8),
    Pop,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![any::<u8>().prop_map(Op::Push), Just(Op::Pop)]
}

fn checked(v: u32) -> Result<u32, TestCaseError> {
    if v > 1_000_000 {
        return Err(TestCaseError::fail("out of range"));
    }
    Ok(v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Stack height never goes negative when we guard pops.
    #[test]
    fn stack_height_tracks_ops(ops in prop::collection::vec(op(), 0..32)) {
        let mut height: i64 = 0;
        for o in &ops {
            match o {
                Op::Push(_) => height += 1,
                Op::Pop => height -= i64::from(height > 0),
            }
        }
        prop_assert!(height >= 0, "height {} after {:?}", height, ops);
        prop_assert!(height as usize <= ops.len());
    }

    #[test]
    fn tuples_strings_and_indexes(
        (a, b) in (0u32..50, 0u32..50),
        s in "\\PC{0,64}",
        pick in any::<prop::sample::Index>(),
        flag in any::<bool>(),
    ) {
        prop_assume!(a != 49);
        prop_assert!(a + b < 100);
        prop_assert!(s.chars().count() <= 64);
        let list = [1, 2, 3];
        prop_assert!(pick.index(list.len()) < list.len());
        let negated = !flag;
        prop_assert_ne!(flag, negated);
        prop_assert_ne!(a + 1, a);
        // `?` must thread TestCaseError out of the body.
        let v = checked(a + b)?;
        prop_assert_eq!(v, a + b);
    }
}

#[test]
fn case_failure_reports_inputs() {
    let caught = std::panic::catch_unwind(|| {
        proptest! {
            // No #[test] here: the property runs via the direct call below.
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    });
    let err = caught.expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("panic payload is a String");
    assert!(msg.contains("always_fails"), "message names the test: {msg}");
    assert!(msg.contains("x ="), "message shows inputs: {msg}");
}
