//! In-tree shim of the `bytes` crate (the subset this workspace uses).
//!
//! [`Bytes`] is a reference-counted view into an immutable contiguous
//! buffer. `clone()` and [`Bytes::slice`] are O(1): they bump a refcount
//! and adjust a window — no payload bytes move. That property is what the
//! workspace's zero-copy payload pipeline is built on: one allocation per
//! client op is shared by the codec, the log, and every follower's
//! outgoing frame.
//!
//! This is not the upstream crate. It implements exactly the API surface
//! the workspace needs (see `vendor/README.md` for the policy); buffers
//! are backed by `Arc<[u8]>` or a `&'static` region, so sharing is
//! thread-safe.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable and sliceable chunk of contiguous memory.
///
/// The buffer is immutable once wrapped; clones share it. Equality,
/// ordering and hashing all defer to the viewed byte slice.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage — no allocation, no refcount.
    Static(&'static [u8]),
    /// Shared heap allocation; clones bump the `Arc`.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty `Bytes` (no allocation).
    #[must_use]
    pub const fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]), off: 0, len: 0 }
    }

    /// Wraps a static slice without copying or allocating.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(bytes), off: 0, len: bytes.len() }
    }

    /// Copies `data` into a fresh shared buffer.
    ///
    /// This is the *one* copying constructor; everything downstream of it
    /// (clone, slice) is zero-copy.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a zero-copy sub-view of `self` covering `range`.
    ///
    /// The returned `Bytes` shares the same underlying buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n.checked_add(1).expect("slice start overflow"),
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n.checked_add(1).expect("slice end overflow"),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice range inverted: {start} > {end}");
        assert!(end <= self.len, "slice out of bounds: {end} > {}", self.len);
        Bytes { repr: self.repr.clone(), off: self.off + start, len: end - start }
    }

    /// The viewed bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        let backing = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => &a[..],
        };
        &backing[self.off..self.off + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { repr: Repr::Shared(Arc::from(v)), off: 0, len }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        let len = b.len();
        Bytes { repr: Repr::Shared(Arc::from(b)), off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Bytes> for &[u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<Bytes> for [u8; N] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<Bytes> for &[u8; N] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1..4);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        // Slicing a slice composes.
        assert_eq!(s.slice(1..).as_slice(), &[3, 4]);
        assert_eq!(s.slice(..=1).as_slice(), &[2, 3]);
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(b"hello");
        assert_eq!(s.len(), 5);
        assert_eq!(s.slice(0..0).len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default(), Bytes::new());
    }

    #[test]
    fn equality_across_reprs() {
        let a = Bytes::from_static(b"xyz");
        let b = Bytes::copy_from_slice(b"xyz");
        assert_eq!(a, b);
        assert_eq!(a, b"xyz"[..].to_vec());
        assert_eq!(a, *b"xyz");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::from_static(b"ab").slice(0..3);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\0")), "b\"a\\x00\"");
    }
}
