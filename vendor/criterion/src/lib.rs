//! In-tree shim of the `criterion` crate (the subset this workspace
//! uses).
//!
//! Keeps upstream's registration surface — `criterion_group!` /
//! `criterion_main!`, `benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`, `Throughput` — over a plain wall-clock measurement
//! loop. Like upstream, when the harness binary is invoked *without*
//! `--bench` (which is how `cargo test` runs `harness = false` bench
//! targets), every benchmark body executes exactly once as a smoke test;
//! with `--bench` each benchmark is warmed up and timed, and a
//! `name  median  throughput` line is printed per benchmark.

use std::time::{Duration, Instant};

/// How much work one pass represents, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times one
/// routine call per setup regardless of the hint.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver, created by `criterion_group!`.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench` passes `--bench` to harness = false targets;
        // `cargo test` does not.
        Criterion { bench_mode: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 32 }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let name = name.into();
        run_benchmark(self.bench_mode, &name, None, 32, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion.bench_mode, &full, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark body to drive measurement.
pub struct Bencher {
    mode: BenchMode,
    /// Total time spent in measured routines.
    elapsed: Duration,
    /// Number of measured routine invocations.
    iters: u64,
}

enum BenchMode {
    /// Run each routine exactly once (under `cargo test`).
    TestOnce,
    /// Time routines until the sample budget is spent.
    Timed { samples: u64 },
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let reps = match self.mode {
            BenchMode::TestOnce => 1,
            BenchMode::Timed { samples } => samples,
        };
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += reps;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let reps = match self.mode {
            BenchMode::TestOnce => 1,
            BenchMode::Timed { samples } => samples,
        };
        for _ in 0..reps {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark(
    bench_mode: bool,
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if !bench_mode {
        let mut b = Bencher { mode: BenchMode::TestOnce, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        return;
    }
    // Warm-up pass, unmeasured.
    let mut warm = Bencher { mode: BenchMode::TestOnce, elapsed: Duration::ZERO, iters: 0 };
    f(&mut warm);
    let mut b = Bencher {
        mode: BenchMode::Timed { samples: sample_size as u64 },
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter_ns = if b.iters == 0 { 0.0 } else { b.elapsed.as_nanos() as f64 / b.iters as f64 };
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Bytes(n) => {
            format!("  {:.1} MiB/s", n as f64 / per_iter_ns.max(1.0) * 1e9 / (1 << 20) as f64)
        }
        Throughput::Elements(n) => {
            format!("  {:.0} elem/s", n as f64 / per_iter_ns.max(1.0) * 1e9)
        }
    });
    println!("bench  {name:<48}  {per_iter_ns:>14.1} ns/iter{rate}");
}

/// Groups benchmark functions under one registration entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion { bench_mode: false };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(8));
            g.bench_function("one", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn timed_mode_counts_batched_setups() {
        let mut c = Criterion { bench_mode: true };
        let mut setups = 0u32;
        let mut runs = 0u32;
        c.benchmark_group("g").sample_size(5).bench_function("b", |b| {
            b.iter_batched(|| setups += 1, |()| runs += 1, BatchSize::SmallInput)
        });
        // Warm-up (1) + timed samples (5).
        assert_eq!(setups, 6);
        assert_eq!(runs, 6);
    }
}
