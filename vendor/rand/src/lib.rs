//! In-tree shim of the `rand` crate (the subset this workspace uses).
//!
//! Provides the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and
//! uniform integer sampling over `a..b` and `a..=b` ranges. Generators
//! live in sibling crates (`rand_chacha`). Determinism under a fixed seed
//! is the property the simulator relies on; statistical quality beyond
//! "well mixed" is not a goal here.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A random `bool` that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Deterministically derives a full generator state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// An integer type that supports uniform sampling.
///
/// The single generic [`SampleRange`] impl per range shape (mirroring
/// upstream) is what lets type inference unify a range literal's element
/// type with the surrounding usage, e.g. `rng.gen_range(0..100) < x_u32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The value immediately below `hi` (for exclusive upper bounds).
    fn step_down(hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_lossless, clippy::cast_sign_loss)]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (lo as i128 + offset as i128) as $t
            }

            fn step_down(hi: Self) -> $t {
                hi - 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, T::step_down(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let a = rng.gen_range(0u64..100);
            assert!(a < 100);
            let b = rng.gen_range(5i64..=7);
            assert!((5..=7).contains(&b));
            let c = rng.gen_range(0usize..=0);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn bool_probabilities_degenerate() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(10u32..10);
    }
}
