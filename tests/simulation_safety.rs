//! Property-based safety: random fault schedules against the simulator,
//! with the full PO-atomic-broadcast checker as the oracle.
//!
//! Each case builds a cluster, runs a closed-loop workload, and interleaves
//! a randomly generated schedule of crashes, restarts, and partitions.
//! Whatever happens, the checker must pass — these properties are the
//! paper's §4 safety claims, tested rather than proved.

use proptest::prelude::*;
use zab_core::ServerId;
use zab_simnet::{ClosedLoopSpec, Sim, SimBuilder};

const SEC: u64 = 1_000_000;

/// One step of a fault schedule.
#[derive(Debug, Clone)]
enum Fault {
    /// Crash server `victim % n` (if up).
    Crash(u64),
    /// Restart whichever server is down (no-op if none).
    RestartDowned,
    /// Partition the named server away from the rest.
    Isolate(u64),
    /// Heal all partitions.
    Heal,
    /// Let time pass (ms).
    Run(u64),
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0u64..16).prop_map(Fault::Crash),
        Just(Fault::RestartDowned),
        (0u64..16).prop_map(Fault::Isolate),
        Just(Fault::Heal),
        (200u64..2_000).prop_map(Fault::Run),
    ]
}

/// Applies a schedule while a workload runs; returns the sim for checking.
fn run_schedule(n: u64, seed: u64, schedule: &[Fault]) -> Sim {
    let mut sim = SimBuilder::new(n).seed(seed).timeouts_ms(200, 200, 25).build();
    sim.run_until_leader(20 * SEC);
    sim.install_closed_loop(ClosedLoopSpec {
        clients: 6,
        payload_size: 64,
        total_ops: 100_000, // effectively unbounded for the schedule
        retry_delay_us: 5_000,
        op_timeout_us: Some(2 * SEC),
    });
    let mut downed: Vec<ServerId> = Vec::new();
    for fault in schedule {
        match fault {
            Fault::Crash(v) => {
                let victim = ServerId(v % n + 1);
                // Keep a quorum's worth of servers up so the run makes
                // progress (safety holds regardless, but stalled runs
                // test less).
                if !downed.contains(&victim) && downed.len() + 1 < (n as usize).div_ceil(2) + 1 {
                    sim.crash(victim);
                    downed.push(victim);
                }
            }
            Fault::RestartDowned => {
                if let Some(v) = downed.pop() {
                    sim.restart(v);
                }
            }
            Fault::Isolate(v) => {
                let victim = v % n + 1;
                sim.partition(&[&[victim]]);
            }
            Fault::Heal => sim.heal(),
            Fault::Run(ms) => sim.run_for(ms * 1_000),
        }
        sim.run_for(100_000);
    }
    // Final heal + settle so convergence can also be checked.
    sim.heal();
    for v in downed {
        sim.restart(v);
    }
    sim.run_for(10 * SEC);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
    })]

    /// Safety under arbitrary crash/partition schedules, 3 servers.
    #[test]
    fn po_safety_holds_under_random_faults_n3(
        seed in 0u64..10_000,
        schedule in prop::collection::vec(fault_strategy(), 1..12),
    ) {
        let sim = run_schedule(3, seed, &schedule);
        sim.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("safety violated: {e} (schedule {schedule:?})"))
        })?;
    }

    /// Safety under arbitrary crash/partition schedules, 5 servers.
    #[test]
    fn po_safety_holds_under_random_faults_n5(
        seed in 0u64..10_000,
        schedule in prop::collection::vec(fault_strategy(), 1..10),
    ) {
        let sim = run_schedule(5, seed, &schedule);
        sim.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("safety violated: {e} (schedule {schedule:?})"))
        })?;
    }

    /// With compaction enabled, the same properties hold (SNAP paths).
    #[test]
    fn po_safety_holds_with_compaction(
        seed in 0u64..10_000,
        schedule in prop::collection::vec(fault_strategy(), 1..8),
    ) {
        let mut sim = SimBuilder::new(3)
            .seed(seed)
            .timeouts_ms(200, 200, 25)
            .compact_every(Some(25))
            .build();
        sim.run_until_leader(20 * SEC);
        sim.install_closed_loop(ClosedLoopSpec {
            clients: 6,
            payload_size: 64,
            total_ops: 100_000,
            retry_delay_us: 5_000,
            op_timeout_us: Some(2 * SEC),
        });
        let mut downed: Vec<ServerId> = Vec::new();
        for fault in &schedule {
            match fault {
                Fault::Crash(v) => {
                    let victim = ServerId(v % 3 + 1);
                    if downed.is_empty() {
                        sim.crash(victim);
                        downed.push(victim);
                    }
                }
                Fault::RestartDowned => {
                    if let Some(v) = downed.pop() {
                        sim.restart(v);
                    }
                }
                Fault::Isolate(v) => sim.partition(&[&[v % 3 + 1]]),
                Fault::Heal => sim.heal(),
                Fault::Run(ms) => sim.run_for(ms * 1_000),
            }
            sim.run_for(100_000);
        }
        sim.heal();
        for v in downed {
            sim.restart(v);
        }
        sim.run_for(10 * SEC);
        sim.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("safety violated: {e} (schedule {schedule:?})"))
        })?;
    }
}

/// A long deterministic soak: rolling crashes across every server.
#[test]
fn rolling_crash_soak() {
    let mut sim = SimBuilder::new(5).seed(777).timeouts_ms(200, 200, 25).build();
    sim.run_until_leader(20 * SEC).expect("leader");
    sim.install_closed_loop(ClosedLoopSpec {
        clients: 8,
        payload_size: 128,
        total_ops: 100_000,
        retry_delay_us: 5_000,
        op_timeout_us: Some(2 * SEC),
    });
    for round in 0..10u64 {
        let victim = ServerId(round % 5 + 1);
        sim.crash(victim);
        sim.run_for(2 * SEC);
        sim.restart(victim);
        sim.run_for(2 * SEC);
        sim.check_invariants().unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
    sim.run_for(10 * SEC);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
    assert!(
        sim.stats().ops.len() > 1_000,
        "soak made too little progress: {} ops",
        sim.stats().ops.len()
    );
}
