//! Cross-crate link between the KV application and the PO requirement:
//! the incremental deltas the primary emits are exactly the objects whose
//! correctness depends on primary-order delivery.

use proptest::prelude::*;
use zab_kv::{DataTree, Delta, Op, PrimaryExecutor};

/// A generated, always-valid client operation against a growing tree.
#[derive(Debug, Clone)]
enum GenOp {
    CreateSeq { parent_idx: usize },
    Set { node_idx: usize },
    CreatePlain { name: u8 },
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0usize..8).prop_map(|parent_idx| GenOp::CreateSeq { parent_idx }),
        (0usize..16).prop_map(|node_idx| GenOp::Set { node_idx }),
        (0u8..50).prop_map(|name| GenOp::CreatePlain { name }),
    ]
}

/// Materializes generated ops into executable ones against the current
/// speculative view (skipping ops whose target no longer makes sense).
fn materialize(gen: &GenOp, view: &DataTree) -> Option<Op> {
    let existing: Vec<String> = view.children("/").expect("root").to_vec();
    match gen {
        GenOp::CreateSeq { parent_idx } => {
            // Sequential create under root or an existing child.
            if existing.is_empty() || parent_idx % 2 == 0 {
                Some(Op::create_sequential("/q-", vec![1]))
            } else {
                let p = &existing[parent_idx % existing.len()];
                Some(Op::create_sequential(format!("/{p}/s-"), vec![2]))
            }
        }
        GenOp::Set { node_idx } => {
            if existing.is_empty() {
                None
            } else {
                let p = &existing[node_idx % existing.len()];
                Some(Op::set(format!("/{p}"), vec![*node_idx as u8]))
            }
        }
        GenOp::CreatePlain { name } => {
            let path = format!("/n{name}");
            if view.exists(&path) {
                None
            } else {
                Some(Op::create(path, vec![*name]))
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// In-order delta application reconstructs the primary's state exactly
    /// (this is what Zab's primary order guarantees the backups see).
    #[test]
    fn backup_replaying_deltas_in_order_matches_primary(
        gens in prop::collection::vec(gen_op(), 1..60),
    ) {
        let mut primary = PrimaryExecutor::new(DataTree::new());
        let mut deltas: Vec<Delta> = Vec::new();
        for gen in &gens {
            if let Some(op) = materialize(gen, primary.view()) {
                if let Ok((delta, _)) = primary.execute(&op) {
                    deltas.push(delta);
                }
            }
        }
        let mut backup = DataTree::new();
        for d in &deltas {
            backup.apply(d).expect("in-order deltas always apply");
        }
        prop_assert_eq!(&backup, primary.view());
    }

    /// Dropping one delta from the middle of a dependent chain makes some
    /// later delta fail or the final state diverge — deltas really are
    /// order/completeness sensitive (the property Multi-Paxos breaks).
    #[test]
    fn dropping_a_middle_delta_is_observable(
        count in 3usize..20,
    ) {
        // A maximally dependent chain: sequential creates under one parent.
        let mut primary = PrimaryExecutor::new(DataTree::new());
        let mut deltas = Vec::new();
        for _ in 0..count {
            let (d, _) = primary.execute(&Op::create_sequential("/c-", vec![])).expect("create");
            deltas.push(d);
        }
        let skip = count / 2;
        let mut backup = DataTree::new();
        let mut failed = false;
        for (i, d) in deltas.iter().enumerate() {
            if i == skip {
                continue;
            }
            if backup.apply(d).is_err() {
                failed = true;
                break;
            }
        }
        // Either some delta failed to apply, or the final states differ.
        prop_assert!(
            failed || &backup != primary.view(),
            "dropping delta {skip} of {count} went unnoticed"
        );
    }
}

/// The concrete five-line story from the paper's introduction: a lock
/// queue where the delta for request k is meaningless without request k-1.
#[test]
fn lock_queue_depends_on_every_predecessor() {
    let mut primary = PrimaryExecutor::new(DataTree::new());
    let (d_queue, _) = primary.execute(&Op::create("/lock", vec![])).expect("mkdir");
    let (d1, r1) =
        primary.execute(&Op::create_sequential("/lock/req-", b"client-a".to_vec())).expect("req 1");
    let (d2, r2) =
        primary.execute(&Op::create_sequential("/lock/req-", b"client-b".to_vec())).expect("req 2");
    assert_eq!(r1.created_path.as_deref(), Some("/lock/req-0000000000"));
    assert_eq!(r2.created_path.as_deref(), Some("/lock/req-0000000001"));

    // A backup that somehow applies d2 without d1 has a corrupt queue:
    // the holder (lowest sequence number) would be wrong.
    let mut bad_backup = DataTree::new();
    bad_backup.apply(&d_queue).expect("mkdir");
    bad_backup.apply(&d2).expect("applies structurally...");
    let holder = bad_backup.children("/lock").expect("lock")[0].clone();
    assert_eq!(holder, "req-0000000001", "...but client-b now wrongly holds the lock");

    // The correct backup agrees with the primary.
    let mut good_backup = DataTree::new();
    for d in [&d_queue, &d1, &d2] {
        good_backup.apply(d).expect("in order");
    }
    assert_eq!(good_backup.children("/lock").expect("lock")[0], "req-0000000000");
    assert_eq!(&good_backup, primary.view());
}
