//! **M — implementation micro-benchmarks** (Criterion).
//!
//! Hot-path costs underneath the protocol figures: checksums, wire codec,
//! log appends (memory and file), data-tree operations, and a full
//! simulated broadcast round as an end-to-end sanity probe.
//!
//! Run: `cargo bench -p zab-bench`

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;
use zab_core::{Epoch, Message, Txn, Zxid};
use zab_kv::{DataTree, Op, PrimaryExecutor};
use zab_log::{FileStorage, MemStorage, Storage};
use zab_simnet::{ClosedLoopSpec, SimBuilder};
use zab_wire::crc32c::crc32c;
use zab_wire::frame::{encode_frame, FrameDecoder};

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32c");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| crc32c(black_box(&data))));
    }
    g.finish();
}

fn bench_frame(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame");
    let payload = vec![7u8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("encode_1KiB", |b| b.iter(|| encode_frame(black_box(&payload))));
    let wire = encode_frame(&payload);
    g.bench_function("decode_1KiB", |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            dec.extend(black_box(&wire));
            dec.next_frame().expect("ok").expect("complete")
        })
    });
    g.finish();
}

fn bench_message_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("message");
    let msg = Message::Propose {
        txn: Txn::new(Zxid::new(Epoch(3), 42), vec![9u8; 1024]),
        commit_up_to: Zxid::new(Epoch(3), 41),
    };
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("encode_propose_1KiB", |b| b.iter(|| black_box(&msg).encode()));
    let wire = msg.encode();
    g.bench_function("decode_propose_1KiB", |b| {
        b.iter(|| Message::decode(black_box(&wire)).expect("decodes"))
    });
    g.finish();
}

fn bench_log_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_append_1KiB");
    g.throughput(Throughput::Elements(1));
    g.bench_function("mem", |b| {
        b.iter_batched(
            MemStorage::new,
            |mut s| {
                for i in 1..=64u32 {
                    s.append_txns(&[Txn::new(Zxid::new(Epoch(1), i), vec![1u8; 1024])])
                        .expect("append");
                }
                s.flush().expect("flush");
                s
            },
            BatchSize::SmallInput,
        )
    });
    let dir = std::env::temp_dir().join(format!("zab-bench-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    g.bench_function("file_group64", |b| {
        // Criterion may invoke this setup several times; resume the zxid
        // counter from whatever the previous phase left in the log.
        let mut s = FileStorage::open(&dir).expect("open");
        let mut n = s.recover().expect("recover").history.last_zxid().counter();
        b.iter(|| {
            for _ in 0..64 {
                n += 1;
                s.append_txns(&[Txn::new(Zxid::new(Epoch(1), n), vec![1u8; 1024])])
                    .expect("append");
            }
            s.flush().expect("flush");
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

fn bench_data_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv");
    g.bench_function("sequential_create", |b| {
        b.iter_batched(
            || PrimaryExecutor::new(DataTree::new()),
            |mut p| {
                for _ in 0..100 {
                    p.execute(&Op::create_sequential("/q-", vec![0u8; 64])).expect("create");
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    let mut tree = DataTree::new();
    let mut p = PrimaryExecutor::new(tree.clone());
    let (delta, _) = p.execute(&Op::create("/node", vec![0u8; 64])).expect("create");
    tree.apply(&delta).expect("apply");
    g.bench_function("snapshot_1k_nodes", |b| {
        let mut big = PrimaryExecutor::new(DataTree::new());
        for i in 0..1000 {
            big.execute(&Op::create(format!("/n{i}"), vec![0u8; 32])).expect("create");
        }
        let view = big.view().clone();
        b.iter(|| black_box(&view).snapshot())
    });
    g.finish();
}

const FANOUT_PAYLOADS: [usize; 4] = [1024, 4096, 16384, 65536];
const FANOUT_FOLLOWERS: [usize; 4] = [2, 4, 8, 16];

/// One leader fan-out: the broadcast hot path clones the message handle
/// once per follower (`Leader::broadcast`); with `Bytes` payloads this is
/// a refcount bump, never a payload copy.
fn fan_out(msg: &Message, followers: usize) -> Vec<Message> {
    let mut out = Vec::with_capacity(followers);
    for _ in 0..followers {
        out.push(black_box(msg).clone());
    }
    out
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("fanout");
    for size in FANOUT_PAYLOADS {
        let msg = Message::Propose {
            txn: Txn::new(Zxid::new(Epoch(1), 1), Bytes::from(vec![0xC3u8; size])),
            commit_up_to: Zxid::ZERO,
        };
        for n in FANOUT_FOLLOWERS {
            g.throughput(Throughput::Elements(n as u64));
            g.bench_function(format!("{}KiB_x{n}", size / 1024), |b| b.iter(|| fan_out(&msg, n)));
        }
    }
    g.finish();

    // Hand-timed pass emitting machine-readable rows for CI: if the
    // zero-copy pipeline holds, ns_per_follower is flat across payload
    // sizes (a clone is a refcount bump, not a memcpy).
    let mut rows = Vec::new();
    for size in FANOUT_PAYLOADS {
        let msg = Message::Propose {
            txn: Txn::new(Zxid::new(Epoch(1), 1), Bytes::from(vec![0xC3u8; size])),
            commit_up_to: Zxid::ZERO,
        };
        for n in FANOUT_FOLLOWERS {
            for _ in 0..1_000 {
                black_box(fan_out(&msg, n));
            }
            let iters = 20_000u32;
            let start = Instant::now();
            for _ in 0..iters {
                black_box(fan_out(&msg, n));
            }
            let ns_per_op = start.elapsed().as_nanos() as f64 / f64::from(iters);
            rows.push(format!(
                "{{\"payload_bytes\":{size},\"followers\":{n},\"ns_per_fanout\":{:.1},\"ns_per_follower\":{:.2}}}",
                ns_per_op,
                ns_per_op / n as f64
            ));
        }
    }
    // All BENCH_*.json land at the repo root so the perf-trajectory
    // tracker finds them regardless of the bench's working directory.
    let out = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fanout.json").into());
    if let Ok(mut f) = std::fs::File::create(&out) {
        let _ = writeln!(
            f,
            "{{\"bench\":\"leader_fanout\",\"unit\":\"ns\",\"rows\":[\n{}\n]}}",
            rows.join(",\n")
        );
    }
}

fn bench_simulated_broadcast(c: &mut Criterion) {
    // End-to-end: how fast the *simulator* chews through a committed op
    // (wall-clock cost of the reproduction itself, not protocol latency).
    let mut g = c.benchmark_group("simnet");
    g.sample_size(10);
    g.bench_function("broadcast_500_ops_n3", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(3).seed(1).build();
            sim.run_until_leader(30_000_000).expect("leader");
            sim.install_closed_loop(ClosedLoopSpec::saturating(32, 256, 500));
            assert!(sim.run_until_completed(500, 600_000_000));
            sim.check_invariants().expect("safety");
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_frame,
    bench_message_codec,
    bench_log_append,
    bench_data_tree,
    bench_fanout,
    bench_simulated_broadcast
);
criterion_main!(benches);
