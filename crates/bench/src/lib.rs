//! # zab-bench — harness helpers for regenerating the paper's evaluation
//!
//! Each figure/table of the DSN'11 evaluation has a dedicated binary in
//! `src/bin/` (see `DESIGN.md` §3 for the index and `EXPERIMENTS.md` for
//! captured results). This library holds the shared measurement plumbing:
//! saturated-throughput runs on the deterministic simulator and table
//! formatting.
//!
//! All simulator numbers are in *virtual* time under the resource model
//! documented in `zab-simnet` (1 Gb/s node egress, 100–200 µs one-way
//! latency, 1 ms disk flush unless a binary overrides them); they
//! reproduce the paper's *shapes*, not its absolute values.

use zab_simnet::{ClosedLoopSpec, LatencyStats, Sim, SimBuilder};

/// Microseconds per virtual second.
pub const SEC: u64 = 1_000_000;

/// Result of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Committed operations per virtual second.
    pub throughput_ops_per_sec: f64,
    /// Commit-latency stats.
    pub latency: LatencyStats,
    /// Protocol messages delivered during the run.
    pub messages: u64,
    /// Protocol bytes delivered during the run.
    pub bytes: u64,
}

/// Parameters for a saturated (closed-loop) throughput run.
#[derive(Debug, Clone, Copy)]
pub struct SaturatedRun {
    /// Ensemble size.
    pub n: u64,
    /// Operation payload bytes.
    pub payload: usize,
    /// Leader pipelining window.
    pub max_outstanding: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Operations to complete.
    pub total_ops: u64,
    /// Seed.
    pub seed: u64,
    /// Disk flush latency (µs).
    pub flush_latency_us: u64,
}

impl SaturatedRun {
    /// The defaults used by the figure binaries: 1 KiB ops, deep window,
    /// enough clients to saturate.
    pub fn new(n: u64) -> SaturatedRun {
        SaturatedRun {
            n,
            payload: 1024,
            max_outstanding: 1000,
            clients: 200,
            total_ops: 5_000,
            seed: 42,
            flush_latency_us: 1_000,
        }
    }
}

/// Runs a saturated closed-loop workload to completion and returns the
/// measured result.
///
/// # Panics
///
/// Panics if the cluster fails to elect, the workload stalls, or the
/// safety checker finds a violation (it always runs).
pub fn run_saturated(params: SaturatedRun) -> RunResult {
    let mut sim = SimBuilder::new(params.n)
        .seed(params.seed)
        .max_outstanding(params.max_outstanding)
        .flush_latency_us(params.flush_latency_us)
        .build();
    sim.run_until_leader(30 * SEC).expect("leader");
    let msg0 = sim.stats().messages_delivered;
    let bytes0 = sim.stats().bytes_delivered;
    sim.install_closed_loop(ClosedLoopSpec::saturating(
        params.clients,
        params.payload,
        params.total_ops,
    ));
    assert!(
        sim.run_until_completed(params.total_ops, 3_600 * SEC),
        "workload stalled (n={}, payload={})",
        params.n,
        params.payload
    );
    sim.check_invariants().expect("safety");
    finish(sim, msg0, bytes0)
}

/// Extracts a [`RunResult`] from a completed simulation.
pub fn finish(sim: Sim, msg0: u64, bytes0: u64) -> RunResult {
    let stats = sim.stats();
    RunResult {
        throughput_ops_per_sec: stats.throughput_ops_per_sec().expect("enough ops"),
        latency: stats.latency().expect("latency samples"),
        messages: stats.messages_delivered - msg0,
        bytes: stats.bytes_delivered - bytes0,
    }
}

/// Prints a table header row followed by a separator, markdown-style.
pub fn print_header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|c| "-".repeat(c.len() + 2)).collect::<Vec<_>>().join("|"));
}

/// Formats a float tersely (3 significant-ish digits).
pub fn fmt_f(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_run_smoke() {
        let mut p = SaturatedRun::new(3);
        p.total_ops = 100;
        p.clients = 16;
        let r = run_saturated(p);
        assert!(r.throughput_ops_per_sec > 0.0);
        assert!(r.latency.p50_us > 0);
        assert!(r.messages > 0);
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(99.94), "99.9");
        assert_eq!(fmt_f(1.234), "1.23");
    }
}
