//! # zab-bench — harness helpers for regenerating the paper's evaluation
//!
//! Each figure/table of the DSN'11 evaluation has a dedicated binary in
//! `src/bin/` (see `DESIGN.md` §3 for the index and `EXPERIMENTS.md` for
//! captured results). This library holds the shared measurement plumbing:
//! saturated-throughput runs on the deterministic simulator and table
//! formatting.
//!
//! All simulator numbers are in *virtual* time under the resource model
//! documented in `zab-simnet` (1 Gb/s node egress, 100–200 µs one-way
//! latency, 1 ms disk flush unless a binary overrides them); they
//! reproduce the paper's *shapes*, not its absolute values.

use zab_simnet::{ClosedLoopSpec, LatencyStats, Sim, SimBuilder};

/// Microseconds per virtual second.
pub const SEC: u64 = 1_000_000;

/// Result of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Committed operations per virtual second.
    pub throughput_ops_per_sec: f64,
    /// Commit-latency stats.
    pub latency: LatencyStats,
    /// Protocol messages delivered during the run.
    pub messages: u64,
    /// Protocol bytes delivered during the run.
    pub bytes: u64,
}

/// Parameters for a saturated (closed-loop) throughput run.
#[derive(Debug, Clone, Copy)]
pub struct SaturatedRun {
    /// Ensemble size.
    pub n: u64,
    /// Operation payload bytes.
    pub payload: usize,
    /// Leader pipelining window.
    pub max_outstanding: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Operations to complete.
    pub total_ops: u64,
    /// Seed.
    pub seed: u64,
    /// Disk flush latency (µs).
    pub flush_latency_us: u64,
}

impl SaturatedRun {
    /// The defaults used by the figure binaries: 1 KiB ops, deep window,
    /// enough clients to saturate.
    pub fn new(n: u64) -> SaturatedRun {
        SaturatedRun {
            n,
            payload: 1024,
            max_outstanding: 1000,
            clients: 200,
            total_ops: 5_000,
            seed: 42,
            flush_latency_us: 1_000,
        }
    }
}

/// Runs a saturated closed-loop workload to completion and returns the
/// measured result.
///
/// # Panics
///
/// Panics if the cluster fails to elect, the workload stalls, or the
/// safety checker finds a violation (it always runs).
pub fn run_saturated(params: SaturatedRun) -> RunResult {
    let mut sim = SimBuilder::new(params.n)
        .seed(params.seed)
        .max_outstanding(params.max_outstanding)
        .flush_latency_us(params.flush_latency_us)
        .build();
    sim.run_until_leader(30 * SEC).expect("leader");
    let msg0 = sim.stats().messages_delivered;
    let bytes0 = sim.stats().bytes_delivered;
    sim.install_closed_loop(ClosedLoopSpec::saturating(
        params.clients,
        params.payload,
        params.total_ops,
    ));
    assert!(
        sim.run_until_completed(params.total_ops, 3_600 * SEC),
        "workload stalled (n={}, payload={})",
        params.n,
        params.payload
    );
    sim.check_invariants().expect("safety");
    finish(sim, msg0, bytes0)
}

/// Extracts a [`RunResult`] from a completed simulation.
pub fn finish(sim: Sim, msg0: u64, bytes0: u64) -> RunResult {
    let stats = sim.stats();
    RunResult {
        throughput_ops_per_sec: stats.throughput_ops_per_sec().expect("enough ops"),
        latency: stats.latency().expect("latency samples"),
        messages: stats.messages_delivered - msg0,
        bytes: stats.bytes_delivered - bytes0,
    }
}

/// Accumulator for an open-loop (offered-load) run.
///
/// The quantile estimate comes **only** from operations that actually
/// delivered; shed and rejected operations are counted but never
/// contribute a latency sample. Mixing them in is the classic
/// coordinated-omission-in-reverse mistake: a shed op has no commit
/// latency, and recording one (as zero, or as time-until-shed) skews
/// p50/p99 toward whatever the overload path costs instead of what a
/// successful client observed.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopStats {
    delivered_ms: Vec<f64>,
    shed: u64,
    rejected: u64,
}

impl OpenLoopStats {
    /// An empty accumulator.
    pub fn new() -> OpenLoopStats {
        OpenLoopStats::default()
    }

    /// Records one delivered operation's commit latency.
    pub fn record_delivered(&mut self, latency_ms: f64) {
        self.delivered_ms.push(latency_ms);
    }

    /// Counts one operation shed at the admission gate (refused before
    /// entering the pipeline — no latency exists for it).
    pub fn record_shed(&mut self) {
        self.shed += 1;
    }

    /// Counts one operation rejected after admission (leadership churn,
    /// queue limit) — it entered the pipeline but never committed, so it
    /// has no commit latency either.
    pub fn record_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Operations that delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered_ms.len() as u64
    }

    /// Operations shed at the admission gate.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Operations rejected after admission.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The `p`-quantile (0.0–1.0) of *delivered* commit latency, in ms;
    /// 0.0 when nothing delivered.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.delivered_ms.is_empty() {
            return 0.0;
        }
        let mut v = self.delivered_ms.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        v[idx]
    }

    /// Delivered operations per second over `elapsed_s`.
    pub fn achieved_ops_per_sec(&self, elapsed_s: f64) -> f64 {
        self.delivered() as f64 / elapsed_s
    }

    /// Shed operations per second over `elapsed_s`.
    pub fn shed_ops_per_sec(&self, elapsed_s: f64) -> f64 {
        self.shed as f64 / elapsed_s
    }
}

/// Prints a table header row followed by a separator, markdown-style.
pub fn print_header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|c| "-".repeat(c.len() + 2)).collect::<Vec<_>>().join("|"));
}

/// Formats a float tersely (3 significant-ish digits).
pub fn fmt_f(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturated_run_smoke() {
        let mut p = SaturatedRun::new(3);
        p.total_ops = 100;
        p.clients = 16;
        let r = run_saturated(p);
        assert!(r.throughput_ops_per_sec > 0.0);
        assert!(r.latency.p50_us > 0);
        assert!(r.messages > 0);
    }

    #[test]
    fn shed_and_rejected_ops_never_pollute_quantiles() {
        let mut s = OpenLoopStats::new();
        for _ in 0..100 {
            s.record_delivered(2.0);
        }
        // A flood of sheds and rejects, each of which would read as a
        // 0 ms (or multi-second) sample if it leaked into the estimator.
        for _ in 0..10_000 {
            s.record_shed();
        }
        for _ in 0..500 {
            s.record_rejected();
        }
        assert_eq!(s.delivered(), 100);
        assert_eq!(s.shed(), 10_000);
        assert_eq!(s.rejected(), 500);
        // Every quantile is exactly the delivered latency: the 10 500
        // non-delivered ops contributed zero samples.
        assert_eq!(s.percentile_ms(0.0), 2.0);
        assert_eq!(s.percentile_ms(0.50), 2.0);
        assert_eq!(s.percentile_ms(0.99), 2.0);
        assert_eq!(s.percentile_ms(1.0), 2.0);
        // Throughput accounting splits the same way.
        assert_eq!(s.achieved_ops_per_sec(10.0), 10.0);
        assert_eq!(s.shed_ops_per_sec(10.0), 1_000.0);
    }

    #[test]
    fn empty_open_loop_stats_are_zero() {
        let s = OpenLoopStats::new();
        assert_eq!(s.percentile_ms(0.99), 0.0);
        assert_eq!(s.achieved_ops_per_sec(1.0), 0.0);
        assert_eq!(s.delivered(), 0);
    }

    #[test]
    fn quantiles_order_delivered_samples() {
        let mut s = OpenLoopStats::new();
        // Insert out of order; quantiles must sort.
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record_delivered(v);
        }
        s.record_shed();
        assert_eq!(s.percentile_ms(0.0), 1.0);
        assert_eq!(s.percentile_ms(0.5), 3.0);
        assert_eq!(s.percentile_ms(1.0), 5.0);
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(99.94), "99.9");
        assert_eq!(fmt_f(1.234), "1.23");
    }
}
