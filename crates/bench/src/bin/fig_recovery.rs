//! **F5 — Follower recovery: synchronization cost vs. lag (DIFF vs SNAP).**
//!
//! A follower crashes, the cluster commits `lag` more operations, the
//! follower restarts and must resynchronize before serving. Two
//! strategies, selected by the snap threshold:
//!
//! - **DIFF**: ship the missed log suffix — cost proportional to the lag;
//! - **SNAP**: ship a full application snapshot — cost proportional to
//!   total state size, independent of lag.
//!
//! The crossover (DIFF cheaper for small lags, SNAP for large) is the
//! design rationale for ZooKeeper's threshold heuristic.
//!
//! Run: `cargo run --release -p zab-bench --bin fig_recovery`

use zab_bench::{fmt_f, print_header, SEC};
use zab_simnet::{ClosedLoopSpec, SimBuilder};

const PREFIX_OPS: u64 = 1_000;
const PAYLOAD: usize = 1024;

/// Runs one recovery measurement; returns (sync virtual ms, sync wire MB).
fn measure(lag: u64, snap_threshold: u64) -> (f64, f64) {
    let mut sim = SimBuilder::new(3).seed(11).snap_threshold(snap_threshold).build();
    let leader = sim.run_until_leader(30 * SEC).expect("leader");
    let victim = sim.members().into_iter().find(|&m| m != leader).expect("a follower");
    let total = PREFIX_OPS + lag;
    sim.install_closed_loop(ClosedLoopSpec::saturating(64, PAYLOAD, total));
    assert!(sim.run_until_completed(PREFIX_OPS, 600 * SEC), "prefix stalled");
    sim.crash(victim);
    assert!(sim.run_until_completed(total, 3_600 * SEC), "lag phase stalled");
    // Quiesce, then restart the follower and measure pure sync cost.
    sim.run_for(2 * SEC);
    let bytes0 = sim.stats().bytes_delivered;
    let t0 = sim.now_us();
    sim.restart(victim);
    let deadline = sim.now_us() + 3_600 * SEC;
    while (sim.applied_log(victim).len() as u64) < total && sim.now_us() < deadline {
        sim.run_for(SEC / 1_000);
    }
    assert_eq!(sim.applied_log(victim).len() as u64, total, "never caught up");
    sim.check_invariants().expect("safety");
    let sync_ms = (sim.now_us() - t0) as f64 / 1000.0;
    let sync_mb = (sim.stats().bytes_delivered - bytes0) as f64 / 1e6;
    (sync_ms, sync_mb)
}

fn main() {
    println!(
        "F5: follower resynchronization cost vs lag (3 servers, 1 KiB ops,\n\
         total state = {PREFIX_OPS} + lag transactions)\n"
    );
    print_header(&[
        "lag (txns)",
        "DIFF time (ms)",
        "DIFF wire (MB)",
        "SNAP time (ms)",
        "SNAP wire (MB)",
    ]);
    for lag in [100u64, 500, 2_000, 8_000] {
        let (diff_ms, diff_mb) = measure(lag, u64::MAX); // never snap
        let (snap_ms, snap_mb) = measure(lag, 1); // always snap
        println!(
            "| {lag} | {} | {} | {} | {} |",
            fmt_f(diff_ms),
            fmt_f(diff_mb),
            fmt_f(snap_ms),
            fmt_f(snap_mb),
        );
    }
    println!(
        "\nshape check: DIFF cost grows linearly with lag; SNAP cost is set by the\n\
         total state (snapshot) plus the post-snapshot tail, so it's ~flat in lag\n\
         until lag dominates state size — the DIFF/SNAP crossover behind\n\
         ZooKeeper's snap threshold.\n\
         note: the simulated app stores 16 B per applied txn while DIFF ships the\n\
         full 1 KiB payloads, so SNAP's absolute advantage is amplified here;\n\
         the linear-vs-flat *shape* is the reproduced result."
    );
}
