//! **F3 — Throughput vs. maximum outstanding proposals.**
//!
//! The design requirement the paper leads with: a primary must keep
//! *multiple transactions outstanding* for high throughput. With a window
//! of 1 (stop-and-wait — what a naive consensus-per-operation deployment
//! gives you), every commit pays a full round trip plus a disk flush
//! before the next proposal starts; deeper windows pipeline those costs
//! until the leader NIC saturates.
//!
//! Run: `cargo run --release -p zab-bench --bin fig_outstanding`

use zab_bench::{fmt_f, print_header, run_saturated, SaturatedRun};

fn main() {
    println!("F3: throughput vs max outstanding proposals (3 servers, 1 KiB ops)\n");
    print_header(&["outstanding", "ops/s", "mean lat (ms)", "speedup vs 1"]);
    let mut base = None;
    for window in [1usize, 2, 5, 10, 20, 50, 100, 500, 1000] {
        let mut p = SaturatedRun::new(3);
        p.max_outstanding = window;
        p.clients = window.max(8) * 2; // keep the window full
        p.total_ops = if window < 10 { 1_000 } else { 5_000 };
        let r = run_saturated(p);
        let tput = r.throughput_ops_per_sec;
        let base = *base.get_or_insert(tput);
        println!(
            "| {window} | {} | {} | {}x |",
            fmt_f(tput),
            fmt_f(r.latency.mean_us as f64 / 1000.0),
            fmt_f(tput / base),
        );
    }
    println!(
        "\nshape check: near-linear scaling for small windows (pipelining hides the\n\
         RTT + flush), flattening once the leader egress link saturates — the\n\
         paper's argument for requirement 1 (multiple outstanding transactions)."
    );
}
