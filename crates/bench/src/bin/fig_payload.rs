//! **F4 — Throughput vs. operation payload size.**
//!
//! Two regimes: small operations are per-message-overhead bound (ops/s
//! roughly flat, bytes/s growing with size), large operations are
//! bandwidth bound (bytes/s flat at the leader egress limit, ops/s
//! falling as 1/size).
//!
//! Run: `cargo run --release -p zab-bench --bin fig_payload`

use zab_bench::{fmt_f, print_header, run_saturated, SaturatedRun};

fn main() {
    println!("F4: throughput vs payload size (3 servers)\n");
    print_header(&["payload (B)", "ops/s", "payload MB/s", "wire MB/s (all links)"]);
    for payload in [32usize, 128, 512, 1024, 4096, 16384, 65536] {
        let mut p = SaturatedRun::new(3);
        p.payload = payload;
        p.total_ops = if payload >= 16384 { 1_500 } else { 5_000 };
        let r = run_saturated(p);
        let tput = r.throughput_ops_per_sec;
        // Wire bytes per virtual second over the measurement span.
        let span_s = r.latency.count as f64 / tput;
        println!(
            "| {payload} | {} | {} | {} |",
            fmt_f(tput),
            fmt_f(tput * payload as f64 / 1e6),
            fmt_f(r.bytes as f64 / span_s / 1e6),
        );
    }
    println!(
        "\nshape check: ops/s ~flat for small payloads (per-op costs dominate),\n\
         then ~1/size once the leader's 125 MB/s egress saturates; payload MB/s\n\
         approaches BW/(n-1) = 62.5 MB/s for n = 3."
    );
}
