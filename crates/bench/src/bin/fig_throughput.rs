//! **F1 — Saturated broadcast throughput vs. ensemble size.**
//!
//! The paper's headline throughput figure: 1 KiB operations at saturating
//! offered load, for ensembles of 3–13 servers. The leader unicasts every
//! proposal to n−1 followers, so its egress NIC is the bottleneck and
//! throughput falls roughly as `BW / ((n−1) · msg_size)` — the shape to
//! reproduce (absolute ops/s depend on the modeled NIC, not the authors'
//! testbed).
//!
//! Run: `cargo run --release -p zab-bench --bin fig_throughput`

use zab_bench::{fmt_f, print_header, run_saturated, SaturatedRun};

fn main() {
    println!("F1: saturated broadcast throughput, 1 KiB ops, 1 Gb/s leader egress\n");
    print_header(&[
        "servers",
        "ops/s",
        "MB/s (payload)",
        "mean lat (ms)",
        "p99 lat (ms)",
        "ops/s x (n-1)",
    ]);
    let mut base: Option<f64> = None;
    for n in [3, 5, 7, 9, 13] {
        let r = run_saturated(SaturatedRun::new(n));
        let tput = r.throughput_ops_per_sec;
        base.get_or_insert(tput * (n - 1) as f64);
        println!(
            "| {n} | {} | {} | {} | {} | {} |",
            fmt_f(tput),
            fmt_f(tput * 1024.0 / 1e6),
            fmt_f(r.latency.mean_us as f64 / 1000.0),
            fmt_f(r.latency.p99_us as f64 / 1000.0),
            fmt_f(tput * (n - 1) as f64),
        );
    }
    println!(
        "\nshape check: ops/s x (n-1) should stay ~constant (leader egress bound);\n\
         the paper reports the same hyperbolic decline with ensemble size."
    );
}
