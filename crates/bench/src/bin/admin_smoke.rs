//! **Admin-endpoint smoke driver for CI.**
//!
//! ```text
//! admin_smoke [--hold-secs S] [--base-port P]
//! ```
//!
//! Boots a real 3-node localhost ensemble with the admin endpoint
//! enabled on every node (ports `P`, `P+1`, `P+2`; ephemeral if no
//! `--base-port`), waits for a fully active ensemble, commits a batch of
//! transactions, and writes the merged flight-recorder dump to
//! `trace-sample.json` (`$TRACE_OUT` overrides) as Chrome trace-event
//! JSON. It then prints one `admin <id> <addr>` line per node plus
//! `READY`, and holds the cluster up for `--hold-secs` (default 0) so an
//! external prober — CI `curl` — can exercise `/metrics`, `/health`, and
//! `/trace` against live replicas.
//!
//! Exits nonzero (with a message) if the ensemble fails to elect, sync,
//! or commit; malformed arguments print usage and exit 2.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use zab_core::ServerId;
use zab_node::{apps::BytesApp, NodeConfig, NodeEvent, Replica, Role};
use zab_trace::{chrome_trace_json, merge};

const N: u64 = 3;
const OPS: u32 = 25;

fn usage(reason: &str) -> ! {
    eprintln!("error: {reason}");
    eprintln!("usage: admin_smoke [--hold-secs S] [--base-port P]");
    std::process::exit(2);
}

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter().position(|a| a == flag).map(|i| match args.get(i + 1).map(|v| v.parse()) {
        Some(Ok(v)) => v,
        _ => usage(&format!("{flag} needs a numeric value")),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hold_secs = parse_flag(&args, "--hold-secs").unwrap_or(0);
    let base_port = parse_flag(&args, "--base-port").unwrap_or(0);

    let book: BTreeMap<ServerId, SocketAddr> = (1..=N)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect();
    let replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let admin_port = if base_port == 0 { 0 } else { base_port + id.0 - 1 };
            let admin: SocketAddr = format!("127.0.0.1:{admin_port}").parse().expect("admin addr");
            let cfg = NodeConfig::new(id, book.clone()).with_admin(admin);
            (id, Replica::start(cfg, BytesApp::new()).expect("start replica"))
        })
        .collect();

    // Elect, and wait for every follower to finish syncing so the batch
    // below travels the broadcast path (and therefore the trace).
    let deadline = Instant::now() + Duration::from_secs(30);
    let leader = loop {
        if let Some((&id, _)) = replicas
            .iter()
            .find(|(_, r)| matches!(r.role(), Role::Leading { established: true, .. }))
        {
            break id;
        }
        assert!(Instant::now() < deadline, "no leader elected");
        std::thread::sleep(Duration::from_millis(10));
    };
    while !replicas.values().all(|r| {
        matches!(
            r.role(),
            Role::Leading { established: true, .. } | Role::Following { active: true, .. }
        )
    }) {
        assert!(Instant::now() < deadline, "ensemble never became fully active");
        std::thread::sleep(Duration::from_millis(10));
    }

    for i in 0..OPS {
        replicas[&leader].submit(i.to_le_bytes().to_vec());
    }
    for (&id, r) in &replicas {
        let mut got = 0;
        let deadline = Instant::now() + Duration::from_secs(30);
        while got < OPS && Instant::now() < deadline {
            if let Ok(NodeEvent::Delivered(_)) = r.events().recv_timeout(Duration::from_millis(100))
            {
                got += 1;
            }
        }
        assert_eq!(got, OPS, "replica {id} missed deliveries");
    }

    let trace_path = std::env::var("TRACE_OUT").unwrap_or_else(|_| "trace-sample.json".to_string());
    let merged = merge(replicas.values().map(Replica::trace_events).collect());
    std::fs::write(&trace_path, chrome_trace_json(&merged)).expect("write trace sample");
    println!("trace sample ({} events) written to {trace_path}", merged.len());

    for (&id, r) in &replicas {
        let addr = r.admin_addr().expect("admin endpoint bound");
        println!("admin {} {addr}", id.0);
    }
    println!("READY");

    let hold_until = Instant::now() + Duration::from_secs(hold_secs);
    while Instant::now() < hold_until {
        std::thread::sleep(Duration::from_millis(100));
    }
}
