//! **T2 — Protocol step accounting: where latency comes from.**
//!
//! Under a quiet cluster with *fixed* link latency L and disk flush F, the
//! protocol's structure predicts:
//!
//! - broadcast commit (client → leader delivery): `2·L + F`
//!   (PROPOSE out, follower flush ⟂ leader flush, ACK back; the leader's
//!   own flush overlaps the round trip when `F ≲ 2·L`);
//! - leader change (crash → new leader established): follower timeout +
//!   election (gossip + finalize wait) + discovery/sync round trips.
//!
//! This binary measures both on the simulator and prints measured vs.
//! predicted, mirroring the paper's discussion of Zab's latency budget.
//!
//! Run: `cargo run --release -p zab-bench --bin table_steps`

use zab_bench::{fmt_f, print_header, SEC};
use zab_simnet::{ClosedLoopSpec, SimBuilder};

fn commit_latency_us(link_us: u64, flush_us: u64) -> f64 {
    let mut sim = SimBuilder::new(3)
        .seed(3)
        .latency_us(link_us, link_us)
        .egress_bandwidth(None) // isolate protocol delays from serialization
        .flush_latency_us(flush_us)
        .build();
    sim.run_until_leader(30 * SEC).expect("leader");
    // One op at a time: pure protocol latency, no queueing.
    sim.install_closed_loop(ClosedLoopSpec::saturating(1, 64, 200));
    assert!(sim.run_until_completed(200, 600 * SEC));
    sim.check_invariants().expect("safety");
    sim.stats().latency().expect("samples").mean_us
}

fn failover_ms(link_us: u64) -> f64 {
    let mut sim =
        SimBuilder::new(3).seed(5).latency_us(link_us, link_us).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(30 * SEC).expect("leader");
    sim.run_for(SEC);
    let t0 = sim.now_us();
    sim.crash(leader);
    let deadline = sim.now_us() + 60 * SEC;
    while sim.leader().is_none() && sim.now_us() < deadline {
        sim.run_for(SEC / 1_000);
    }
    assert!(sim.leader().is_some(), "no failover");
    (sim.now_us() - t0) as f64 / 1000.0
}

fn main() {
    println!("T2a: broadcast commit latency = 2L + F (quiet cluster, no queueing)\n");
    print_header(&["link L (us)", "flush F (us)", "measured (us)", "predicted 2L+F (us)"]);
    for (l, f) in [(100u64, 0u64), (100, 1_000), (500, 1_000), (1_000, 0), (2_000, 5_000)] {
        let measured = commit_latency_us(l, f);
        let predicted = (2 * l + f) as f64;
        println!("| {l} | {f} | {} | {} |", fmt_f(measured), fmt_f(predicted));
    }

    println!("\nT2b: leader change (crash -> new established leader)\n");
    print_header(&["link L (us)", "measured failover (ms)", "detection+election floor (ms)"]);
    for l in [100u64, 1_000, 5_000] {
        let measured = failover_ms(l);
        // Floor: TCP-level disconnect detection (10 ms) + election
        // finalize wait (200 ms) + phase 1-2 round trips. The follower
        // timeout (200 ms) only gates failures TCP does not surface.
        println!("| {l} | {} | ~210 + rtts |", fmt_f(measured));
    }
    println!(
        "\nshape check: commit latency tracks 2L + F within the tick quantum\n\
         (+ queueing of the follower's group flush); failover is dominated by\n\
         the failure-detection timeout, as the paper observes for ZooKeeper."
    );
}
