//! **A1 — Ablation: group commit × pipelining.**
//!
//! The follower may only ACK a proposal once it is durable; the disk model
//! performs one flush at a time, and every proposal buffered when a flush
//! starts rides the next one (group commit). This ablation separates the
//! two effects the paper's design couples:
//!
//! - with **window = 1** (no pipelining) every operation pays a full flush
//!   on its critical path → throughput ≈ 1 / (2L + F);
//! - with a **deep window**, flushes amortize over whole batches and the
//!   flush latency nearly vanishes from the throughput equation until the
//!   disk's flush *rate* (not latency) binds.
//!
//! Run: `cargo run --release -p zab-bench --bin ablation_groupcommit`

use zab_bench::{fmt_f, print_header, run_saturated, SaturatedRun};

fn main() {
    println!("A1: throughput (ops/s) vs disk flush latency, with and without pipelining");
    println!("(3 servers, 1 KiB ops; group commit active in both — the window decides\n how many proposals share each flush)\n");
    print_header(&[
        "flush latency (us)",
        "window 1 (ops/s)",
        "window 1000 (ops/s)",
        "amortization factor",
    ]);
    for flush_us in [0u64, 500, 1_000, 5_000, 10_000] {
        let mut p1 = SaturatedRun::new(3);
        p1.max_outstanding = 1;
        p1.clients = 2;
        p1.total_ops = 500;
        p1.flush_latency_us = flush_us;
        let r1 = run_saturated(p1);

        let mut pn = SaturatedRun::new(3);
        pn.flush_latency_us = flush_us;
        let rn = run_saturated(pn);

        println!(
            "| {flush_us} | {} | {} | {}x |",
            fmt_f(r1.throughput_ops_per_sec),
            fmt_f(rn.throughput_ops_per_sec),
            fmt_f(rn.throughput_ops_per_sec / r1.throughput_ops_per_sec),
        );
    }
    println!(
        "\nshape check: window-1 throughput collapses as 1/(2L+F) when the flush\n\
         gets slower; the deep window holds near the NIC bound until very slow\n\
         disks — group commit + pipelining together hide durability latency,\n\
         which is why Zab's requirement 1 matters even for disk-bound setups."
    );
}
