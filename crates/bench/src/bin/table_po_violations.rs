//! **T1 — Primary-order violations: naive Multi-Paxos vs. Zab.**
//!
//! The paper's motivating claim, quantified: run many seeded
//! crash-and-takeover schedules and count runs whose delivered sequence
//! violates primary order.
//!
//! - Multi-Paxos: violations appear as soon as the pipelining window
//!   exceeds 1 and grow with window depth and message loss.
//! - Zab: the same class of schedule (leader crash mid-pipeline, unflushed
//!   writes lost) on the deterministic simulator, checked by the full PO
//!   safety checker — zero violations, by construction.
//!
//! Run: `cargo run --release -p zab-bench --bin table_po_violations`

use zab_baselines::harness::{run_scenario, Scenario};
use zab_baselines::po::check_primary_order;
use zab_bench::{print_header, SEC};
use zab_simnet::{ClosedLoopSpec, SimBuilder};

const SEEDS: u64 = 1_000;

fn main() {
    println!("T1a: % of runs violating primary order — naive Multi-Paxos");
    println!("({SEEDS} seeds per cell; 3 acceptors; crash + takeover each run)\n");
    let drops = [10u32, 25, 40];
    let header: Vec<String> = std::iter::once("window \\ accept loss".to_string())
        .chain(drops.iter().map(|d| format!("{d}%")))
        .collect();
    print_header(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for window in [1usize, 2, 4, 8, 16] {
        let mut row = format!("| {window} |");
        for &drop in &drops {
            let mut violations = 0u64;
            for seed in 0..SEEDS {
                let o = run_scenario(&Scenario {
                    acceptors: 3,
                    window,
                    ops_before_crash: 10,
                    crash_primary: true,
                    ops_after_takeover: 5,
                    accept_drop_percent: drop,
                    seed,
                });
                if check_primary_order(&o.delivered).is_err() {
                    violations += 1;
                }
            }
            row.push_str(&format!(" {:.1}% |", violations as f64 * 100.0 / SEEDS as f64));
        }
        println!("{row}");
    }

    println!("\nT1b: Zab under leader-crash schedules (full PO safety checker)\n");
    let schedules = 25u64;
    let mut violations = 0u64;
    for seed in 0..schedules {
        let mut sim = SimBuilder::new(3)
            .seed(seed)
            .timeouts_ms(200, 200, 25)
            .flush_latency_us(10_000)
            .build();
        let leader = sim.run_until_leader(30 * SEC).expect("leader");
        sim.install_closed_loop(ClosedLoopSpec {
            clients: 8,
            payload_size: 64,
            total_ops: 300,
            retry_delay_us: 5_000,
            op_timeout_us: Some(2 * SEC),
        });
        sim.run_until_completed(100, 60 * SEC);
        sim.crash(leader);
        sim.run_for(3 * SEC);
        sim.restart(leader);
        sim.run_until_completed(300, 600 * SEC);
        if sim.check_invariants().is_err() {
            violations += 1;
        }
    }
    print_header(&["schedules", "violations"]);
    println!("| {schedules} | {violations} |");
    assert_eq!(violations, 0, "Zab must never violate primary order");
    println!(
        "\nshape check: Multi-Paxos at window 1 is always clean (stop-and-wait);\n\
         violations rise with window depth and loss; Zab is clean at any window."
    );
}
