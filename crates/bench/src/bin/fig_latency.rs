//! **F2 — Commit latency vs. offered load.**
//!
//! Open-loop workload at a sweep of rates relative to the measured
//! saturation point, for 3/5/7-server ensembles. The expected shape:
//! latency sits near the protocol floor (one round trip + one disk flush)
//! until the knee near saturation, then grows sharply as queueing
//! dominates.
//!
//! Run: `cargo run --release -p zab-bench --bin fig_latency`

use zab_bench::{finish, fmt_f, print_header, run_saturated, SaturatedRun, SEC};
use zab_simnet::{OpenLoopSpec, SimBuilder};

fn main() {
    println!("F2: commit latency vs offered load (open loop, 1 KiB ops)\n");
    for n in [3u64, 5, 7] {
        // Measure the saturation point first.
        let mut sat_params = SaturatedRun::new(n);
        sat_params.total_ops = 3_000;
        let sat = run_saturated(sat_params).throughput_ops_per_sec;
        println!("servers = {n}  (measured saturation ≈ {} ops/s)", fmt_f(sat));
        print_header(&[
            "offered load (% of sat)",
            "ops/s offered",
            "mean lat (ms)",
            "p99 lat (ms)",
        ]);
        for pct in [10u64, 25, 50, 75, 90, 100, 110] {
            let rate = (sat * pct as f64 / 100.0).max(100.0) as u64;
            let total_ops = (rate / 2).clamp(500, 5_000);
            let mut sim = SimBuilder::new(n).seed(7 + pct).build();
            sim.run_until_leader(30 * SEC).expect("leader");
            let msg0 = sim.stats().messages_delivered;
            let bytes0 = sim.stats().bytes_delivered;
            sim.install_open_loop(OpenLoopSpec::at_rate(rate, 1024, total_ops));
            // Generous deadline: overload runs drain slowly.
            assert!(sim.run_until_completed(total_ops, 3_600 * SEC), "open-loop run stalled");
            sim.check_invariants().expect("safety");
            let r = finish(sim, msg0, bytes0);
            println!(
                "| {pct}% | {rate} | {} | {} |",
                fmt_f(r.latency.mean_us as f64 / 1000.0),
                fmt_f(r.latency.p99_us as f64 / 1000.0),
            );
        }
        println!();
    }
    println!(
        "shape check: flat latency floor until ~90-100% of saturation, then a sharp\n\
         queueing knee — matching the paper's latency/throughput relationship."
    );
}
