//! **Broadcast saturation bench — the paper's three headline figures on
//! real TCP.**
//!
//! Drives real localhost ensembles (in-memory storage, so the disk does
//! not confound the network path) to saturation and emits
//! `BENCH_broadcast.json` at the repo root with three datasets:
//!
//! 1. saturated throughput vs. ensemble size (n = 3/5/7/9), with a
//!    topology axis (`--topology relay` adds relay-tree rows next to the
//!    star baseline) and the leader's measured egress bytes per
//!    committed txn — the quantity the relay tree flattens,
//! 2. p50/p99 commit latency vs. offered load (fractions of the measured
//!    3-node saturation point, including over-saturation at 1.1× and
//!    1.5×),
//! 3. throughput vs. maximum outstanding proposals (1/8/32/128),
//! 4. a virtual-time simnet scaling curve at n = 9/15/33 (`scaling_simnet`
//!    rows) where the 1-CPU container cannot distort per-peer socket
//!    costs — the axis that shows relay dissemination extending the
//!    curve past what real localhost TCP can host here.
//!
//! The offered-load axis is an *honest* open loop: submissions go
//! through the non-blocking `try_submit`, ops shed at the admission
//! gate are counted (`shed_ops_per_sec` per row) and excluded from the
//! latency quantiles, and over-saturation is expected to plateau —
//! achieved throughput holds near the saturation point while the gate
//! sheds the excess — rather than collapse. The generator treats a
//! refusal as backpressure (1 ms probe backoff, shedding arrivals due
//! meanwhile locally): everything shares one core here, so a client
//! that re-probes per arrival would starve the pipeline it measures.
//!
//! Wall-clock numbers depend on the host; EXPERIMENTS.md records the
//! shapes and the before/after of the cumulative-commit + frame-coalescing
//! work. `--quick` shrinks every axis for CI smoke (schema-identical
//! output).
//!
//! Run: `cargo run --release -p zab-bench --bin broadcast_bench
//! [--quick] [--topology star|relay] [--trace-out PATH]`
//! (`--topology relay` *adds* the relay axis; the star baseline always
//! runs so every relay row has its comparison row in the same file.)
//! Output: `BENCH_broadcast.json` at the repo root (`BENCH_OUT` overrides).
//! With `--trace-out`, the merged flight-recorder dump of the 3-node
//! saturation run is written to PATH as Chrome trace-event JSON
//! (Perfetto loadable) and per-stage latency breakdowns are printed for
//! both the saturation run and the most-overloaded offered-load run
//! (whose admit → submit delta is the cost of the admission gate).

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use zab_bench::{fmt_f, print_header, OpenLoopStats};
use zab_core::{ServerId, Topology};
use zab_node::{apps::BytesApp, NodeConfig, NodeEvent, Replica, Role, SubmitError};
use zab_simnet::workload::ClosedLoopSpec;
use zab_simnet::SimBuilder;
use zab_trace::{chrome_trace_json, merge, stage_deltas, TraceEvent};

const PAYLOAD: usize = 1024;

struct Cluster {
    replicas: BTreeMap<ServerId, Replica<BytesApp>>,
    leader: ServerId,
}

impl Cluster {
    /// Boots an n-server localhost ensemble and waits for an established
    /// leader.
    fn start(n: u64, max_outstanding: usize, topology: Topology) -> Cluster {
        Cluster::start_with(n, max_outstanding, topology, |cfg| cfg)
    }

    /// [`Cluster::start`] with a per-node config hook (the observability
    /// on/off cells toggle tracing and the admin endpoint through it).
    fn start_with(
        n: u64,
        max_outstanding: usize,
        topology: Topology,
        customize: impl Fn(NodeConfig) -> NodeConfig,
    ) -> Cluster {
        let book: BTreeMap<ServerId, SocketAddr> = (1..=n)
            .map(|i| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = l.local_addr().expect("addr");
                drop(l);
                (ServerId(i), addr)
            })
            .collect();
        let replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
            .keys()
            .map(|&id| {
                let mut cfg = NodeConfig::new(id, book.clone()).with_topology(topology);
                cfg.cluster.max_outstanding = max_outstanding;
                let cfg = customize(cfg);
                (id, Replica::start(cfg, BytesApp::new()).expect("start"))
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(30);
        let leader = loop {
            if let Some((&id, _)) = replicas
                .iter()
                .find(|(_, r)| matches!(r.role(), Role::Leading { established: true, .. }))
            {
                break id;
            }
            assert!(Instant::now() < deadline, "no leader elected");
            std::thread::sleep(Duration::from_millis(10));
        };
        Cluster { replicas, leader }
    }

    fn leader(&self) -> &Replica<BytesApp> {
        &self.replicas[&self.leader]
    }

    /// Flips the flight recorder on every replica at runtime. F5 uses
    /// this to compare observed and dark slices on the *same booted
    /// ensemble*: two fresh boots of identical config differ by a
    /// persistent few percent on this host (allocator layout and thread
    /// placement are decided at boot and never re-rolled), which is the
    /// size of the effect under measurement, so a two-cluster
    /// comparison measures the boot, not the plane.
    fn set_recording(&self, on: bool) {
        for r in self.replicas.values() {
            r.trace_recorder().set_enabled(on);
        }
    }

    /// Discards leader events until the stream stays silent, so a
    /// backlog left by one (possibly over-saturating) run can never leak
    /// deliveries into the next measurement on the same cluster.
    fn drain_to_quiescence(&self) {
        while self.leader().events().recv_timeout(Duration::from_millis(300)).is_ok() {}
    }

    /// Re-locates the established leader (an over-saturating run may have
    /// forced a failover) and waits until one exists.
    fn refresh_leader(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some((&id, _)) = self
                .replicas
                .iter()
                .find(|(_, r)| matches!(r.role(), Role::Leading { established: true, .. }))
            {
                self.leader = id;
                return;
            }
            assert!(Instant::now() < deadline, "no leader re-established");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// The op id embedded in the first 8 payload bytes, if present.
fn op_id(data: &[u8]) -> Option<u64> {
    data.get(..8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn payload(op: u64) -> Vec<u8> {
    let mut p = vec![0u8; PAYLOAD];
    p[..8].copy_from_slice(&op.to_le_bytes());
    p
}

/// Commit latencies in milliseconds, plus the measurement wall-clock span.
struct Measured {
    latencies_ms: Vec<f64>,
    elapsed_s: f64,
}

impl Measured {
    fn ops_per_sec(&self) -> f64 {
        self.latencies_ms.len() as f64 / self.elapsed_s
    }

    fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies_ms.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        v[idx]
    }
}

/// Closed-loop saturation: keep `window` ops in flight until `ops`
/// complete on the leader.
fn run_closed_loop(cluster: &Cluster, window: usize, ops: u64) -> Measured {
    let leader = cluster.leader();
    let mut in_flight: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut issued = 0u64;
    let mut latencies = Vec::with_capacity(ops as usize);
    let t0 = Instant::now();
    while issued < window.min(ops as usize) as u64 {
        in_flight.insert(issued, Instant::now());
        leader.submit(payload(issued));
        issued += 1;
    }
    let deadline = Instant::now() + Duration::from_secs(180);
    while (latencies.len() as u64) < ops && Instant::now() < deadline {
        match leader.events().recv_timeout(Duration::from_millis(500)) {
            Ok(NodeEvent::Delivered(txn)) => {
                let Some(op) = op_id(&txn.data) else { continue };
                if let Some(start) = in_flight.remove(&op) {
                    latencies.push(start.elapsed().as_secs_f64() * 1000.0);
                    if issued < ops {
                        in_flight.insert(issued, Instant::now());
                        leader.submit(payload(issued));
                        issued += 1;
                    }
                }
            }
            Ok(NodeEvent::Rejected { request, .. }) => {
                // A rejected op never commits; resubmit it so the closed
                // loop still completes exactly `ops` measurements. The
                // pause keeps a not-yet-reestablished leader from turning
                // this into a hot reject spin.
                let Some(op) = op_id(&request) else { continue };
                if in_flight.remove(&op).is_some() {
                    std::thread::sleep(Duration::from_millis(1));
                    in_flight.insert(op, Instant::now());
                    leader.submit(request.to_vec());
                }
            }
            _ => {}
        }
    }
    assert_eq!(latencies.len() as u64, ops, "closed-loop run did not complete");
    Measured { latencies_ms: latencies, elapsed_s: t0.elapsed().as_secs_f64() }
}

/// Open-loop offered load: submit at `rate` ops/s for `duration`,
/// measuring the latency of everything that commits.
///
/// Honest open loop: submissions go through [`Replica::try_submit`],
/// which **never blocks** — when the admission window is full the op is
/// shed at the gate, counted, and dropped. The old harness blocked in
/// `submit()` instead, which silently turned the open loop into a
/// closed loop *and* stopped this thread from draining the event
/// stream, the first domino of the congestion collapse this bench now
/// guards against. Quantiles come only from delivered ops
/// ([`OpenLoopStats`]); shed and rejected ops appear as achieved
/// falling under offered, plus an explicit shed rate.
fn run_offered_load(cluster: &Cluster, rate: f64, duration: Duration) -> (OpenLoopStats, f64) {
    let leader = cluster.leader();
    let interval = Duration::from_secs_f64(1.0 / rate);
    let mut in_flight: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut issued = 0u64;
    let mut stats = OpenLoopStats::new();
    let t0 = Instant::now();
    let mut next_due = t0;
    let t_end = t0 + duration;
    let mut spare: Option<Vec<u8>> = None;
    let mut backoff_until: Option<Instant> = None;
    const BACKOFF: Duration = Duration::from_millis(1);
    loop {
        let now = Instant::now();
        if now >= t_end {
            break;
        }
        // Submit everything due by now. An overloaded gate sheds each op
        // in O(1), so even a far-over-saturation rate cannot stall this
        // loop or grow any queue. A shed hands the payload buffer back;
        // restamping its op-id header keeps the shed path allocation-free
        // (at 1.5x saturation the generator sheds tens of thousands of
        // 1 KiB ops per second — re-allocating each would bill the gate
        // for the load generator's own malloc traffic).
        //
        // Refusal is also a backpressure *signal*, and the generator
        // honors it: after a shed it stops probing for BACKOFF and fails
        // arrivals due in that window locally (still counted as shed).
        // A client that re-probes every arrival against a refusing gate
        // bills the server for its own attempt CPU — on this one-core
        // box the generator's wakeups alone would crowd out the very
        // pipeline being measured, turning far-over-saturation rates
        // into an artificial throughput decay.
        if backoff_until.is_some_and(|until| now < until) {
            while next_due <= now {
                next_due += interval;
                stats.record_shed();
                issued += 1;
            }
        } else {
            backoff_until = None;
            while next_due <= now {
                next_due += interval;
                let buf = match spare.take() {
                    Some(mut b) => {
                        b[..8].copy_from_slice(&issued.to_be_bytes());
                        b
                    }
                    None => payload(issued),
                };
                match leader.try_submit(buf) {
                    Ok(()) => {
                        in_flight.insert(issued, Instant::now());
                    }
                    Err(SubmitError::Overloaded(returned)) => {
                        spare = Some(returned);
                        stats.record_shed();
                        issued += 1;
                        backoff_until = Some(now + BACKOFF);
                        while next_due <= now {
                            next_due += interval;
                            stats.record_shed();
                            issued += 1;
                        }
                        break;
                    }
                    Err(SubmitError::Closed(_)) => panic!("leader closed during offered-load run"),
                }
                issued += 1;
            }
        }
        // Deliveries wake the recv below immediately; the timeout only
        // bounds how long an idle or backed-off generator naps.
        let wait = backoff_until
            .unwrap_or(next_due)
            .min(t_end)
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(1));
        match leader.events().recv_timeout(wait) {
            Ok(NodeEvent::Delivered(txn)) => {
                let Some(op) = op_id(&txn.data) else { continue };
                if let Some(start) = in_flight.remove(&op) {
                    stats.record_delivered(start.elapsed().as_secs_f64() * 1000.0);
                }
            }
            Ok(NodeEvent::Rejected { request, .. }) => {
                // Admitted but refused downstream (leadership churn, core
                // queue limit): a lost op, never a latency sample.
                if let Some(op) = op_id(&request) {
                    if in_flight.remove(&op).is_some() {
                        stats.record_rejected();
                    }
                }
            }
            _ => {}
        }
    }
    // Achieved/shed rates are per second of *measurement window*; the
    // tail drain below only harvests latency samples for ops submitted
    // inside the window, it never extends the denominator.
    let measured_s = t0.elapsed().as_secs_f64();
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while !in_flight.is_empty() && Instant::now() < drain_deadline {
        match leader.events().recv_timeout(Duration::from_millis(200)) {
            Ok(NodeEvent::Delivered(txn)) => {
                let Some(op) = op_id(&txn.data) else { continue };
                if let Some(start) = in_flight.remove(&op) {
                    stats.record_delivered(start.elapsed().as_secs_f64() * 1000.0);
                }
            }
            Ok(NodeEvent::Rejected { request, .. }) => {
                if let Some(op) = op_id(&request) {
                    if in_flight.remove(&op).is_some() {
                        stats.record_rejected();
                    }
                }
            }
            _ => {}
        }
    }
    (stats, measured_s)
}

struct Row {
    fields: Vec<(&'static str, String)>,
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "0".to_string()
    }
}

fn rows_to_json(rows: &[Row]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let fields: Vec<String> =
                r.fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            format!("    {{{}}}", fields.join(", "))
        })
        .collect();
    format!("[\n{}\n  ]", body.join(",\n"))
}

fn out_path() -> PathBuf {
    if let Some(p) = std::env::var_os("BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_broadcast.json")
}

/// Prints the mean latency of every adjacent stage transition observed in
/// `events` (one line per `node / from→to` pair with ≥ 1 sample): where a
/// transaction's wall time actually goes, broken down by pipeline stage.
fn print_stage_breakdown(events: &[TraceEvent]) {
    let mut agg: BTreeMap<(u64, &'static str, &'static str), (u64, u64)> = BTreeMap::new();
    for d in stage_deltas(events) {
        let e = agg.entry((d.node, d.from.as_str(), d.to.as_str())).or_insert((0, 0));
        e.0 += 1;
        e.1 += d.delta_us;
    }
    if agg.is_empty() {
        println!("  (no stage transitions recorded)");
        return;
    }
    print_header(&["node", "transition", "samples", "mean (µs)"]);
    for ((node, from, to), (count, sum_us)) in agg {
        println!("| {node} | {from} → {to} | {count} | {} |", fmt_f(sum_us as f64 / count as f64));
    }
}

fn topology_name(t: Topology) -> &'static str {
    match t {
        Topology::Star => "star",
        Topology::Relay => "relay",
    }
}

/// One simnet scaling cell: a saturating closed loop against an
/// `n`-node virtual-time cluster, reporting committed throughput in
/// *virtual* ops/s and the leader's egress bytes per committed txn.
/// Virtual time is what makes the n=33 row honest on a 1-CPU container:
/// every per-peer serialization delay is modeled (125 B/µs NIC), none is
/// distorted by the host actually multiplexing 33 event loops.
fn run_simnet_cell(n: u64, topology: Topology, ops: u64) -> (f64, f64, f64, f64) {
    // Failure-detection timeouts sized like a deployment's: well above
    // the saturated p99 commit latency. The chaos tests deliberately run
    // tighter ones; here a timeout inside the queueing tail would read
    // as phantom stalls (and, under relay, thrash members between tree
    // and direct paths, each switch replaying the in-flight window).
    let mut sim = SimBuilder::new(n)
        .seed(1)
        .timeouts_ms(2_000, 2_000, 100)
        .max_outstanding(512)
        .topology(topology)
        .build();
    let leader = sim.run_until_leader(10_000_000).expect("simnet leader");
    // Warm up to steady state before measuring, as F1 does: under relay
    // the tree forms incrementally (each follower joins the plan on its
    // first ack) and every join replays the in-flight window on the new
    // path — a one-time formation cost that must not be billed to the
    // steady-state row.
    let warmup = (ops / 5).max(200);
    sim.install_closed_loop(ClosedLoopSpec::saturating(256, PAYLOAD, warmup));
    let deadline = sim.now_us() + 600_000_000;
    assert!(sim.run_until_completed(warmup, deadline), "simnet n={n} warmup did not complete");
    sim.stop_workload();
    sim.run_for(500_000);
    let done0 = sim.stats().ops.len();
    let egress0 = sim.egress_bytes(leader);
    sim.install_closed_loop(ClosedLoopSpec::saturating(256, PAYLOAD, ops));
    let deadline = sim.now_us() + 600_000_000;
    assert!(
        sim.run_until_completed(done0 as u64 + ops, deadline),
        "simnet n={n} did not complete {ops} ops"
    );
    sim.stop_workload();
    // Measurement slice: only the post-warmup completions.
    let measured = &sim.stats().ops[done0..];
    let (first, last) = measured
        .iter()
        .fold((u64::MAX, 0u64), |(lo, hi), o| (lo.min(o.completed_us), hi.max(o.completed_us)));
    let tput = measured.len() as f64 * 1_000_000.0 / (last - first).max(1) as f64;
    let lat = zab_simnet::stats::LatencyStats::from_samples(
        measured.iter().map(|o| o.completed_us - o.issued_us).collect(),
    )
    .expect("latency samples");
    let bytes_per_txn = (sim.egress_bytes(leader) - egress0) as f64 / measured.len() as f64;
    (tput, lat.p50_us as f64 / 1000.0, lat.p99_us as f64 / 1000.0, bytes_per_txn)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let args: Vec<String> = std::env::args().collect();
    let trace_out: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    // `--topology relay` ADDS the relay axis; star always runs so the
    // relay rows ship with their baseline in the same file.
    let relay_axis = args
        .iter()
        .position(|a| a == "--topology")
        .and_then(|i| args.get(i + 1))
        .is_some_and(|v| v == "relay");
    let topologies: &[Topology] =
        if relay_axis { &[Topology::Star, Topology::Relay] } else { &[Topology::Star] };
    // Axis sizes: --quick is the CI smoke (schema-identical, seconds);
    // the full run is the EXPERIMENTS.md record.
    let (ensemble_sizes, sat_ops, windows, load_fractions, load_secs): (
        &[u64],
        u64,
        &[usize],
        &[f64],
        f64,
    ) = if quick {
        // 5 exercises a mid-size real-TCP ensemble in CI; 9 pins the far
        // end of the scaling curve schema.
        (&[3, 5, 9], 500, &[1, 32], &[0.5, 0.9, 1.5], 1.0)
    } else {
        (&[3, 5, 7, 9], 20_000, &[1, 8, 32, 128], &[0.25, 0.5, 0.75, 0.9, 1.1, 1.5], 3.0)
    };
    const SAT_WINDOW: usize = 512;

    // Figure 1: saturated throughput vs. ensemble size, per topology.
    println!("F1: saturated throughput vs. ensemble size ({sat_ops} x {PAYLOAD} B ops)\n");
    print_header(&["topology", "servers", "window", "ops/s", "p50 (ms)", "p99 (ms)", "ldr B/txn"]);
    let mut fig1 = Vec::new();
    let mut sat3 = 0.0f64;
    let mut sat3_traces: Vec<TraceEvent> = Vec::new();
    let mut commit_quantiles_ms = (0u64, 0u64, 0u64);
    for &topology in topologies {
        for &n in ensemble_sizes {
            let mut cluster = Cluster::start(n, 1000, topology);
            // Settle before measuring (the fix for the old n=5 p99
            // outlier, 124 ms against 40 ms at n=7): a freshly booted
            // ensemble is still absorbing establishment traffic — late
            // joiners reconnecting, the adaptive admission window warming
            // up from its seed — and F1 used to start its stopwatch
            // straight into that. A short warm-up burst followed by a
            // drain gets every one-time transient out of the measured
            // window, exactly as F2 already did per row.
            let warmup = (sat_ops / 10).clamp(100, 2_000);
            run_closed_loop(&cluster, SAT_WINDOW.min(64), warmup);
            cluster.drain_to_quiescence();
            cluster.refresh_leader();
            let before = cluster.leader().metrics_snapshot();
            let m = run_closed_loop(&cluster, SAT_WINDOW, sat_ops);
            let after = cluster.leader().metrics_snapshot();
            let (tput, p50, p99) = (m.ops_per_sec(), m.percentile_ms(0.50), m.percentile_ms(0.99));
            // The leader's egress cost per committed txn, from its own
            // transport counters — the quantity relay dissemination is
            // supposed to flatten from O(N) to O(√N).
            let d_bytes = after.counter_sum("transport.bytes_out.")
                - before.counter_sum("transport.bytes_out.");
            let d_committed = after.counter("core.proposals_committed")
                - before.counter("core.proposals_committed");
            let bytes_per_txn = d_bytes as f64 / d_committed.max(1) as f64;
            let forwards = after.counter("transport.relay_forwards")
                - before.counter("transport.relay_forwards");
            if n == 3 && topology == Topology::Star {
                sat3 = tput;
                // Histogram-side commit latency (leader's own measurement,
                // independent of the closed loop's client-side stopwatch).
                if let Some(h) =
                    cluster.leader().metrics_snapshot().histogram("node.commit_latency_ms")
                {
                    commit_quantiles_ms = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
                }
                // Flight-recorder dump of the saturation run, and the memory
                // bound it must honor even at full load.
                for r in cluster.replicas.values() {
                    assert!(
                        r.trace_events().len() <= r.trace_recorder().max_resident_events(),
                        "flight recorder exceeded its configured memory bound under saturation"
                    );
                }
                sat3_traces = merge(cluster.replicas.values().map(|r| r.trace_events()).collect());
            }
            println!(
                "| {} | {n} | {SAT_WINDOW} | {} | {} | {} | {} |",
                topology_name(topology),
                fmt_f(tput),
                fmt_f(p50),
                fmt_f(p99),
                fmt_f(bytes_per_txn)
            );
            fig1.push(Row {
                fields: vec![
                    ("n", n.to_string()),
                    ("topology", format!("\"{}\"", topology_name(topology))),
                    ("window", SAT_WINDOW.to_string()),
                    ("ops_per_sec", num(tput)),
                    ("p50_ms", num(p50)),
                    ("p99_ms", num(p99)),
                    ("leader_bytes_out_per_txn", num(bytes_per_txn)),
                    ("relay_forwards", forwards.to_string()),
                ],
            });
        }
    }

    // Figure 2: latency vs. offered load (3 servers, fractions of the
    // measured saturation point; the >1 points must *plateau*, with the
    // admission gate shedding the excess, not collapse).
    println!("\nF2: p50/p99 latency vs. offered load (3 servers, sat = {} ops/s)\n", fmt_f(sat3));
    print_header(&["offered ops/s", "achieved ops/s", "shed ops/s", "p50 (ms)", "p99 (ms)"]);
    let mut fig2 = Vec::new();
    let mut overload_traces: Vec<TraceEvent> = Vec::new();
    {
        // A fresh ensemble per row, like F1/F3 cells: the logs and
        // in-memory history are append-only, so a shared cluster makes
        // each row inherit every prior row's accumulated state — by the
        // 1.5x row that run-length decay (B1's caveat) dwarfs the effect
        // of offered load itself and reads as a phantom collapse.
        for &f in load_fractions {
            let mut cluster = Cluster::start(3, 1000, Topology::Star);
            cluster.drain_to_quiescence();
            cluster.refresh_leader();
            let rate = (sat3 * f).max(10.0);
            let (stats, elapsed_s) =
                run_offered_load(&cluster, rate, Duration::from_secs_f64(load_secs));
            let (ach, shed_rate, p50, p99) = (
                stats.achieved_ops_per_sec(elapsed_s),
                stats.shed_ops_per_sec(elapsed_s),
                stats.percentile_ms(0.50),
                stats.percentile_ms(0.99),
            );
            println!(
                "| {} | {} | {} | {} | {} |",
                fmt_f(rate),
                fmt_f(ach),
                fmt_f(shed_rate),
                fmt_f(p50),
                fmt_f(p99)
            );
            fig2.push(Row {
                fields: vec![
                    ("n", "3".to_string()),
                    ("offered_ops_per_sec", num(rate)),
                    ("achieved_ops_per_sec", num(ach)),
                    ("shed_ops_per_sec", num(shed_rate)),
                    ("p50_ms", num(p50)),
                    ("p99_ms", num(p99)),
                ],
            });
            // Fractions ascend, so the rings harvested from the last
            // row's cluster hold the most-overloaded run: the one whose
            // admit-stage spans show what admission control costs when
            // it is actually working.
            overload_traces = merge(cluster.replicas.values().map(|r| r.trace_events()).collect());
        }
    }

    // Figure 3: throughput vs. max outstanding proposals (3 servers).
    // The submit window tracks the protocol window so the closed loop
    // exercises exactly the pipelining depth under test.
    println!("\nF3: throughput vs. max outstanding (3 servers)\n");
    print_header(&["max outstanding", "ops/s", "p50 (ms)"]);
    let mut fig3 = Vec::new();
    for &w in windows {
        let cluster = Cluster::start(3, w, Topology::Star);
        let ops = if quick { sat_ops } else { (sat_ops / 4).max(500) * (w.min(8) as u64) };
        let m = run_closed_loop(&cluster, w, ops);
        let (tput, p50) = (m.ops_per_sec(), m.percentile_ms(0.50));
        println!("| {w} | {} | {} |", fmt_f(tput), fmt_f(p50));
        fig3.push(Row {
            fields: vec![
                ("n", "3".to_string()),
                ("max_outstanding", w.to_string()),
                ("ops_per_sec", num(tput)),
                ("p50_ms", num(p50)),
            ],
        });
    }

    // Figure 4: the virtual-time scaling curve. Real TCP on this 1-CPU
    // box stops being a fair referee past n≈9 (the host multiplexing N
    // event loops becomes the bottleneck, not the protocol), so the
    // 15/33-node rows come from the simnet where per-peer NIC
    // serialization is modeled exactly.
    let sim_sizes: &[u64] = &[9, 15, 33];
    let sim_ops: u64 = if quick { 1_000 } else { 10_000 };
    println!("\nF4: simnet scaling curve ({sim_ops} x {PAYLOAD} B ops, virtual time)\n");
    print_header(&["topology", "servers", "ops/s (virtual)", "p50 (ms)", "p99 (ms)", "ldr B/txn"]);
    let mut fig4 = Vec::new();
    for &topology in topologies {
        for &n in sim_sizes {
            let (tput, p50, p99, bytes_per_txn) = run_simnet_cell(n, topology, sim_ops);
            println!(
                "| {} | {n} | {} | {} | {} | {} |",
                topology_name(topology),
                fmt_f(tput),
                fmt_f(p50),
                fmt_f(p99),
                fmt_f(bytes_per_txn)
            );
            fig4.push(Row {
                fields: vec![
                    ("n", n.to_string()),
                    ("topology", format!("\"{}\"", topology_name(topology))),
                    ("ops_per_sec", num(tput)),
                    ("p50_ms", num(p50)),
                    ("p99_ms", num(p99)),
                    ("leader_bytes_out_per_txn", num(bytes_per_txn)),
                ],
            });
        }
    }

    // Figure 5: what the observability plane itself costs. One live
    // ensemble, booted in the observed configuration (flight recorder
    // on, admin endpoint bound), measured in alternating saturation
    // sub-windows: "observed" slices record every stage event and serve
    // /health scrapes at zabctl-watch cadence (an *operated* node, not
    // an idle endpoint); "dark" slices flip every replica's recorder
    // off (`Recorder::set_enabled`) and pause the scraper. Two
    // estimator lessons are baked in. First, on this shared 1-CPU box
    // external load comes in multi-second phases that swing throughput
    // by 10-30% — far more than the effect under measurement — so
    // slices alternate (order flipping every round) and each adjacent
    // pair sees the same phase; the per-round ratio isolates the plane.
    // Second — the reason this is ONE cluster and not an observed/dark
    // pair — two freshly booted ensembles of *identical* config differ
    // by a persistent few percent on this host: a null A/A test read
    // 0.2% on one boot pair and 4.6% on the next, and swapping which
    // cluster carried tracing flipped the sign of the "overhead".
    // Allocator layout and thread placement are rolled once at boot, so
    // inter-cluster deltas measure the boot, not the plane; toggling
    // recording inside one boot cancels that bias exactly. The residual
    // blind spot is the admin thread's idle accept-poll (a 20 ms sleep
    // loop), which rides in both slices; it is a few microsecond-scale
    // wakes per scrape interval, far below this bench's resolution.
    // The reported figure is the median over all per-round ratios; the
    // acceptance bar is overhead within 5% of saturated throughput.
    println!("\nF5: observability overhead (3 servers, tracing+admin+scrape vs dark slices)\n");
    print_header(&["mode", "trial", "median ops/s", "p50 (ms)", "p99 (ms)"]);
    let mut fig5 = Vec::new();
    let mut round_pct: Vec<f64> = Vec::new();
    let rounds: usize = if quick { 8 } else { 12 };
    let sub_ops: u64 = 6_000; // ~130 ms per sub-window at saturation
    let trials = 3; // 2 modes x 3 trials: CI asserts >= 6 F5 rows, quick included
    for trial in 0..trials {
        let mut cluster = Cluster::start_with(3, 1000, Topology::Star, |cfg| {
            cfg.with_tracing(true).with_admin("127.0.0.1:0".parse().expect("addr"))
        });
        run_closed_loop(&cluster, SAT_WINDOW.min(64), 2_000);
        cluster.drain_to_quiescence();
        cluster.refresh_leader();
        // Scrape the leader's /health at watch cadence, but only while
        // an observed slice is running — a scrape landing in a dark
        // slice would slow *dark* down and flatter the estimate.
        let scrape_on = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let scraper = {
            let addr = cluster.leader().admin_addr().expect("admin bound");
            let (scrape_on, stop) =
                (std::sync::Arc::clone(&scrape_on), std::sync::Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    if scrape_on.load(std::sync::atomic::Ordering::Relaxed) {
                        if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                            use std::io::{Read, Write};
                            let _ = s.write_all(b"GET /health HTTP/1.0\r\nHost: b\r\n\r\n");
                            let mut buf = String::new();
                            let _ = s.read_to_string(&mut buf);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            })
        };
        let mut mode_runs: [Vec<Measured>; 2] = [Vec::new(), Vec::new()]; // [observed, dark]
        for round in 0..rounds {
            let order: [usize; 2] = if round % 2 == 0 { [0, 1] } else { [1, 0] };
            let mut pair = [0.0f64; 2];
            for slot in order {
                // Flush stragglers from the previous slice so reused op
                // ids cannot be miscounted, then flip the plane.
                cluster.drain_to_quiescence();
                cluster.set_recording(slot == 0);
                scrape_on.store(slot == 0, std::sync::atomic::Ordering::Relaxed);
                let m = run_closed_loop(&cluster, SAT_WINDOW, sub_ops);
                scrape_on.store(false, std::sync::atomic::Ordering::Relaxed);
                pair[slot] = m.ops_per_sec();
                mode_runs[slot].push(m);
            }
            round_pct.push((pair[1] - pair[0]) / pair[1].max(1.0) * 100.0);
        }
        cluster.set_recording(true);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = scraper.join();
        for (slot, mode) in [(0usize, "observed"), (1usize, "dark")] {
            let runs = &mode_runs[slot];
            let mut tputs: Vec<f64> = runs.iter().map(|m| m.ops_per_sec()).collect();
            tputs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let med = tputs[tputs.len() / 2];
            let mid = runs
                .iter()
                .min_by(|a, b| {
                    (a.ops_per_sec() - med)
                        .abs()
                        .partial_cmp(&(b.ops_per_sec() - med).abs())
                        .expect("finite")
                })
                .expect("at least one round");
            let (p50, p99) = (mid.percentile_ms(0.50), mid.percentile_ms(0.99));
            println!("| {mode} | {trial} | {} | {} | {} |", fmt_f(med), fmt_f(p50), fmt_f(p99));
            fig5.push(Row {
                fields: vec![
                    ("n", "3".to_string()),
                    ("mode", format!("\"{mode}\"")),
                    ("trial", trial.to_string()),
                    ("tracing", (slot == 0).to_string()),
                    ("admin", (slot == 0).to_string()),
                    ("ops_per_sec", num(med)),
                    ("p50_ms", num(p50)),
                    ("p99_ms", num(p99)),
                ],
            });
        }
    }
    round_pct.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let obs_overhead_pct = round_pct[round_pct.len() / 2];
    println!(
        "observability overhead (median of {} interleaved rounds): {}% of dark \
         throughput (bar: <= 5%)",
        round_pct.len(),
        fmt_f(obs_overhead_pct)
    );

    // Schema-additive: the histogram-side commit quantiles, the F1
    // topology/egress columns, and the simnet scaling rows all ride
    // along under new keys; every v1 consumer keeps parsing.
    let (q50, q95, q99) = commit_quantiles_ms;
    let json = format!(
        "{{\n  \"schema\": \"zab-broadcast-bench/v1\",\n  \"quick\": {quick},\n  \
         \"payload_bytes\": {PAYLOAD},\n  \
         \"commit_latency_quantiles_ms\": {{\"p50\": {q50}, \"p95\": {q95}, \"p99\": {q99}}},\n  \
         \"throughput_vs_ensemble\": {},\n  \
         \"latency_vs_load\": {},\n  \"throughput_vs_outstanding\": {},\n  \
         \"scaling_simnet\": {},\n  \
         \"observability_overhead\": {},\n  \
         \"observability_overhead_pct\": {}\n}}\n",
        rows_to_json(&fig1),
        rows_to_json(&fig2),
        rows_to_json(&fig3),
        rows_to_json(&fig4),
        rows_to_json(&fig5),
        num(obs_overhead_pct),
    );
    let path = out_path();
    std::fs::write(&path, json).expect("write BENCH_broadcast.json");
    println!("\nwrote {}", path.display());
    println!("commit latency (leader histogram): p50 {q50} ms, p95 {q95} ms, p99 {q99} ms");

    if let Some(trace_path) = trace_out {
        println!("\nstage-latency breakdown (3-server saturation run)\n");
        print_stage_breakdown(&sat3_traces);
        println!("\nstage-latency breakdown (most-overloaded offered-load run)\n");
        print_stage_breakdown(&overload_traces);
        std::fs::write(&trace_path, chrome_trace_json(&sat3_traces)).expect("write trace");
        println!(
            "\nwrote {} ({} trace events; load in Perfetto / chrome://tracing)",
            trace_path.display(),
            sat3_traces.len()
        );
    }
}
