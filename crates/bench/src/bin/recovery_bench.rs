//! **F — Production-scale recovery on a live TCP ensemble.**
//!
//! Crashes a follower under a saturated closed loop, lets the rest of
//! the ensemble commit a controlled amount of lag, restarts the victim
//! on its surviving disk state, and measures the catch-up:
//!
//!  - **catch-up vs lag** — DIFF when the leader's log still covers the
//!    victim's gap, SNAP once compaction has advanced the horizon past
//!    it (this is where `fig_recovery`'s simulator crossover table moved
//!    to: same question, answered on real sockets and a real disk);
//!  - **throughput dip** — live commit throughput while the sync ships,
//!    with paced shipping (`sync_rate_bytes_per_sec` set) vs the legacy
//!    single-burst path (rate `0`).
//!
//! Writes `BENCH_recovery.json` (schema `zab-recovery-bench/v1`) at the
//! repo root, or to `$BENCH_OUT`. `--quick` shrinks every axis for CI
//! smoke (schema-identical output, seconds instead of minutes).
//!
//! Run: `cargo run --release -p zab-bench --bin recovery_bench [-- --quick]`

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use zab_bench::{fmt_f, print_header};
use zab_core::ServerId;
use zab_node::{apps::BytesApp, NodeConfig, NodeEvent, Replica, Role};

/// Live-throughput sampling bucket during catch-up.
const BUCKET_MS: u64 = 100;

/// Shape of one recovery scenario.
#[derive(Debug, Clone)]
struct Scenario {
    n: u64,
    window: usize,
    payload: usize,
    /// Log compaction cadence (applied txns); `None` keeps the whole log.
    snapshot_every: Option<u64>,
    /// Leader sync token bucket; `0` disables pacing (one-burst legacy).
    sync_rate_bytes_per_sec: u64,
    /// Ops committed with all replicas up before the crash.
    baseline_ops: u64,
    /// Ops committed while the victim is down (its lag at rejoin).
    lag_ops: u64,
    /// Keep the closed loop running while the victim catches up. `true`
    /// measures the live-throughput dip (the sync plan then also covers
    /// whatever commits during the rejoin handshake); `false` quiesces
    /// first, so sync cost is a pure function of the lag.
    live_catchup: bool,
    /// Cap the closed loop's issue rate (ops/s); `None` saturates the
    /// window. The dip comparison runs at a moderate rate: pacing can
    /// only protect live traffic when the configured sync rate exceeds
    /// the live commit byte rate — a fully saturated loop just grows
    /// backlog that any recovery must ship (and compete for) regardless.
    target_ops_per_sec: Option<u64>,
}

struct Cluster {
    book: BTreeMap<ServerId, SocketAddr>,
    cfgs: BTreeMap<ServerId, NodeConfig>,
    replicas: BTreeMap<ServerId, Replica<BytesApp>>,
    leader: ServerId,
}

impl Cluster {
    /// Boots an n-server localhost ensemble on file-backed storage under
    /// `scratch` and waits for an established leader.
    fn start(s: &Scenario, scratch: &Path) -> Cluster {
        let book: BTreeMap<ServerId, SocketAddr> = (1..=s.n)
            .map(|i| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = l.local_addr().expect("addr");
                drop(l);
                (ServerId(i), addr)
            })
            .collect();
        let cfgs: BTreeMap<ServerId, NodeConfig> = book
            .keys()
            .map(|&id| {
                let mut cfg = NodeConfig::new(id, book.clone())
                    .with_data_dir(scratch.join(format!("n{}", id.0)));
                cfg.cluster.max_outstanding = s.window;
                cfg.cluster.sync_rate_bytes_per_sec = s.sync_rate_bytes_per_sec;
                if let Some(k) = s.snapshot_every {
                    cfg = cfg.with_snapshot_every(k);
                }
                (id, cfg)
            })
            .collect();
        let replicas: BTreeMap<ServerId, Replica<BytesApp>> = cfgs
            .iter()
            .map(|(&id, cfg)| (id, Replica::start(cfg.clone(), BytesApp::new()).expect("start")))
            .collect();
        let mut cluster = Cluster { book, cfgs, replicas, leader: ServerId(0) };
        cluster.refresh_leader();
        cluster
    }

    fn leader(&self) -> &Replica<BytesApp> {
        &self.replicas[&self.leader]
    }

    fn refresh_leader(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some((&id, _)) = self
                .replicas
                .iter()
                .find(|(_, r)| matches!(r.role(), Role::Leading { established: true, .. }))
            {
                self.leader = id;
                return;
            }
            assert!(Instant::now() < deadline, "no leader established");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Any ensemble member that is not the leader.
    fn a_follower(&self) -> ServerId {
        *self.book.keys().find(|&&id| id != self.leader).expect("ensemble has a follower")
    }

    /// Fail-stops `id` (drops the replica; its data dir survives).
    fn crash(&mut self, id: ServerId) {
        let victim = self.replicas.remove(&id).expect("victim is running");
        drop(victim);
    }

    /// Reboots `id` from its surviving data dir.
    fn restart(&mut self, id: ServerId) {
        let cfg = self.cfgs[&id].clone();
        let replica = Replica::start(cfg, BytesApp::new()).expect("restart");
        self.replicas.insert(id, replica);
    }

    /// Applied-log length of `id`'s application.
    fn applied_len(&self, id: ServerId) -> u64 {
        self.replicas[&id].with_app(|a| a.log().len() as u64)
    }
}

fn op_id(data: &[u8]) -> Option<u64> {
    data.get(..8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn payload(op: u64, size: usize) -> Vec<u8> {
    let mut p = vec![0u8; size.max(8)];
    p[..8].copy_from_slice(&op.to_le_bytes());
    p
}

/// Closed-loop bookkeeping that survives across phases of one run.
#[derive(Default)]
struct LoopState {
    in_flight: BTreeMap<u64, Instant>,
    issued: u64,
    completed: u64,
    /// Wall-clock commit instants, for bucketed live throughput.
    commits: Vec<Instant>,
}

/// When to stop pumping the closed loop.
enum Until {
    /// `completed` reaches this count.
    Completed(u64),
    /// This replica's applied log reaches this length (polled between
    /// events; the loop keeps the window full the whole time).
    Applied(ServerId, u64),
}

/// Pumps the closed loop: keeps `window` ops in flight on the leader and
/// records every commit, until the `until` condition holds.
fn pump(cluster: &Cluster, s: &Scenario, st: &mut LoopState, until: Until) {
    let leader = cluster.leader();
    let deadline = Instant::now() + Duration::from_secs(60);
    let pace_start = Instant::now();
    let issued_at_start = st.issued;
    // The applied-log poll locks the target replica's app mutex, so rate-
    // limit it: probing on every event would contend with the victim's
    // own apply path and distort the throughput it is measuring.
    let mut last_poll = Instant::now() - Duration::from_secs(1);
    loop {
        match until {
            Until::Completed(target) if st.completed >= target => return,
            Until::Applied(id, len) if last_poll.elapsed() >= Duration::from_millis(10) => {
                last_poll = Instant::now();
                if cluster.applied_len(id) >= len {
                    return;
                }
            }
            _ => {}
        }
        if Instant::now() >= deadline {
            for (&id, r) in &cluster.replicas {
                eprintln!("  stall: n{} role {:?}", id.0, r.role());
            }
            eprintln!(
                "  stall: completed {} issued {} in_flight {}",
                st.completed,
                st.issued,
                st.in_flight.len()
            );
            panic!("closed loop stalled");
        }
        while st.in_flight.len() < s.window {
            if let Some(target) = s.target_ops_per_sec {
                let allowed = (pace_start.elapsed().as_secs_f64() * target as f64) as u64;
                if st.issued - issued_at_start >= allowed {
                    break;
                }
            }
            st.in_flight.insert(st.issued, Instant::now());
            leader.submit(payload(st.issued, s.payload));
            st.issued += 1;
        }
        match leader.events().recv_timeout(Duration::from_millis(100)) {
            Ok(NodeEvent::Delivered(txn)) => {
                let Some(op) = op_id(&txn.data) else { continue };
                if st.in_flight.remove(&op).is_some() {
                    st.completed += 1;
                    st.commits.push(Instant::now());
                }
            }
            Ok(NodeEvent::Rejected { request, .. }) => {
                // Resubmit so the loop keeps its window under churn.
                let Some(op) = op_id(&request) else { continue };
                if st.in_flight.remove(&op).is_some() {
                    std::thread::sleep(Duration::from_millis(1));
                    st.in_flight.insert(op, Instant::now());
                    leader.submit(request.to_vec());
                }
            }
            _ => {}
        }
    }
}

/// Stops issuing and waits for every in-flight op to commit (rejected
/// ops are abandoned), leaving the cluster quiescent.
fn drain(cluster: &Cluster, st: &mut LoopState) {
    let leader = cluster.leader();
    let deadline = Instant::now() + Duration::from_secs(60);
    while !st.in_flight.is_empty() && Instant::now() < deadline {
        match leader.events().recv_timeout(Duration::from_millis(200)) {
            Ok(NodeEvent::Delivered(txn)) => {
                let Some(op) = op_id(&txn.data) else { continue };
                if st.in_flight.remove(&op).is_some() {
                    st.completed += 1;
                    st.commits.push(Instant::now());
                }
            }
            Ok(NodeEvent::Rejected { request, .. }) => {
                if let Some(op) = op_id(&request) {
                    st.in_flight.remove(&op);
                }
            }
            _ => {}
        }
    }
    assert!(st.in_flight.is_empty(), "drain stalled");
}

/// One measured recovery.
struct Recovery {
    /// Restart → victim has applied everything committed before rejoin.
    catchup_ms: f64,
    /// Leader `core.sync_bytes_sent` delta across the catch-up.
    sync_mb: f64,
    /// `"DIFF"` or `"SNAP"`, from the leader's sync counters.
    served: &'static str,
    /// Steady-state commit throughput with the victim down.
    baseline_ops_s: f64,
    /// Worst 500 ms sliding window of live throughput while the sync shipped.
    worst_window_ops_s: f64,
    /// `100 * (1 - worst_window / baseline)`, floored at 0.
    dip_pct: f64,
    /// Longest gap between consecutive live commits during the catch-up:
    /// how long client traffic froze outright while the sync shipped.
    max_stall_ms: f64,
}

/// Drives one crash/lag/rejoin cycle under a continuous closed loop and
/// measures the catch-up. The closed loop never pauses: the sync stream
/// competes with live PROPOSE traffic exactly as it would in production.
fn recovery_run(s: &Scenario, scratch: &Path) -> Recovery {
    let mut cluster = Cluster::start(s, scratch);
    let victim = cluster.a_follower();
    let mut st = LoopState::default();

    // Phase A: all replicas up; make sure the victim has durably applied
    // the baseline before it "crashes".
    pump(&cluster, s, &mut st, Until::Completed(s.baseline_ops));
    let wait_deadline = Instant::now() + Duration::from_secs(60);
    while cluster.applied_len(victim) < s.baseline_ops {
        assert!(Instant::now() < wait_deadline, "victim never applied the baseline");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Phase B: crash the victim, commit its lag on the surviving quorum.
    cluster.crash(victim);
    let lag_start = st.commits.len();
    pump(&cluster, s, &mut st, Until::Completed(s.baseline_ops + s.lag_ops));
    // Baseline = steady state of the second half of the lag phase (the
    // first half absorbs the crash transient).
    let lag_commits = &st.commits[lag_start..];
    let half = &lag_commits[lag_commits.len() / 2..];
    let baseline_ops_s = if half.len() >= 2 {
        let span = half.last().expect("nonempty").duration_since(half[0]).as_secs_f64();
        if span > 0.0 {
            (half.len() - 1) as f64 / span
        } else {
            0.0
        }
    } else {
        0.0
    };

    // Phase C: restart and let the victim catch up — under continuing
    // live load (dip measurement) or on a quiesced cluster (pure sync
    // cost). Done when the victim has applied everything committed
    // before it rejoined.
    if !s.live_catchup {
        drain(&cluster, &mut st);
    }
    let committed_at_restart = st.completed;
    let before = cluster.leader().metrics_snapshot();
    let t_restart = Instant::now();
    cluster.restart(victim);
    let sync_window_start = st.commits.len();
    if s.live_catchup {
        pump(&cluster, s, &mut st, Until::Applied(victim, committed_at_restart));
    } else {
        let deadline = Instant::now() + Duration::from_secs(300);
        while cluster.applied_len(victim) < committed_at_restart {
            assert!(Instant::now() < deadline, "catch-up stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let catchup_ms = t_restart.elapsed().as_secs_f64() * 1000.0;
    let after = cluster.leader().metrics_snapshot();

    if std::env::var_os("RECOVERY_BENCH_DEBUG").is_some() {
        for k in ["core.sync_bytes_sent", "core.diff_syncs", "core.snap_syncs"] {
            eprintln!("  debug {k}: {} -> {}", before.counter(k), after.counter(k));
        }
    }
    let sync_bytes = after.counter("core.sync_bytes_sent") - before.counter("core.sync_bytes_sent");
    let served = if after.counter("core.snap_syncs") > before.counter("core.snap_syncs") {
        "SNAP"
    } else {
        "DIFF"
    };

    // Live-traffic impact while the sync shipped, only meaningful when
    // the load kept running. Measured from the first post-restart commit
    // (the bench's serial restart plus the issue-rate ramp make the
    // instants right after `restart()` artificially quiet). The primary
    // signal is the longest inter-commit stall — how long clients froze
    // outright; the worst 500 ms sliding window (5 consecutive 100 ms
    // buckets, partial tail dropped) adds a throughput-floor view. A
    // single 100 ms bucket is too fine on localhost: ambient fsync /
    // scheduler stalls of ~100-150 ms zero out one bucket in every mode,
    // while a 500 ms window only collapses when a genuine multi-bucket
    // freeze (an unthrottled sync burst) lands inside it.
    let (worst_window_ops_s, dip_pct, max_stall_ms) = if s.live_catchup {
        let sync_commits = &st.commits[sync_window_start..];
        let mut max_stall_ms = 0f64;
        for w in sync_commits.windows(2) {
            max_stall_ms = max_stall_ms.max(w[1].duration_since(w[0]).as_secs_f64() * 1000.0);
        }
        let (first, last) = match (sync_commits.first(), sync_commits.last()) {
            (Some(f), Some(l)) => (*f, *l),
            _ => (t_restart, t_restart),
        };
        let span_ms = last.duration_since(first).as_millis() as u64;
        let full_buckets = (span_ms / BUCKET_MS).max(1);
        let mut buckets = vec![0u64; full_buckets as usize];
        for t in sync_commits {
            let b = t.duration_since(first).as_millis() as u64 / BUCKET_MS;
            if let Some(slot) = buckets.get_mut(b as usize) {
                *slot += 1;
            }
        }
        if std::env::var_os("RECOVERY_BENCH_DEBUG").is_some() {
            eprintln!("  debug catch-up buckets (ops/{BUCKET_MS}ms): {buckets:?}");
        }
        const WINDOW_BUCKETS: usize = 5;
        let worst_window = if buckets.len() >= WINDOW_BUCKETS {
            buckets.windows(WINDOW_BUCKETS).map(|w| w.iter().sum::<u64>()).min().unwrap_or(0) as f64
                * (1000.0 / (BUCKET_MS as f64 * WINDOW_BUCKETS as f64))
        } else {
            // Catch-up shorter than one window: fall back to the mean.
            let span = buckets.len().max(1) as f64 * BUCKET_MS as f64;
            buckets.iter().sum::<u64>() as f64 * 1000.0 / span
        };
        let dip = if baseline_ops_s > 0.0 {
            (100.0 * (1.0 - worst_window / baseline_ops_s)).max(0.0)
        } else {
            0.0
        };
        (worst_window, dip, max_stall_ms)
    } else {
        (0.0, 0.0, 0.0)
    };

    drop(cluster);
    Recovery {
        catchup_ms,
        sync_mb: sync_bytes as f64 / (1024.0 * 1024.0),
        served,
        baseline_ops_s,
        worst_window_ops_s,
        dip_pct,
        max_stall_ms,
    }
}

struct Row {
    fields: Vec<(&'static str, String)>,
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "0".to_string()
    }
}

fn rows_to_json(rows: &[Row]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let fields: Vec<String> =
                r.fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            format!("    {{{}}}", fields.join(", "))
        })
        .collect();
    format!("[\n{}\n  ]", body.join(",\n"))
}

fn out_path() -> PathBuf {
    if let Some(p) = std::env::var_os("BENCH_OUT") {
        return PathBuf::from(p);
    }
    // crates/bench → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_recovery.json")
}

/// A fresh scratch dir per run; every replica's data dir nests under it.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zab-recovery-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // Axis sizes: --quick is the CI smoke (schema-identical, seconds).
    let (baseline_ops, diff_lags, snap_lag, pacing_lag, pacing_payload): (
        u64,
        Vec<u64>,
        u64,
        u64,
        usize,
    ) = if quick {
        (128, vec![64, 256], 256, 6144, 4096)
    } else {
        (256, vec![256, 1024, 4096], 2048, 8192, 8192)
    };

    println!("F: live-ensemble recovery bench (real TCP, file-backed storage)");
    println!("   quick={quick}\n");

    // ── F.1: catch-up vs lag, DIFF vs SNAP ────────────────────────────
    // DIFF rows keep the whole log (no compaction); the SNAP row compacts
    // every 32 applied txns, so by rejoin time the leader's log starts
    // past the victim's last zxid and the sync must be served from the
    // retained snapshot — the compaction-horizon path.
    println!("F.1: catch-up vs lag (3 servers, 1 KiB ops, paced at the default rate)\n");
    print_header(&["lag (ops)", "compaction", "served", "catch-up (ms)", "sync (MB)"]);
    let mut f1 = Vec::new();
    let mut runs: Vec<(u64, Option<u64>)> = diff_lags.iter().map(|&lag| (lag, None)).collect();
    runs.push((snap_lag, Some(32)));
    for (i, &(lag, snapshot_every)) in runs.iter().enumerate() {
        let s = Scenario {
            n: 3,
            window: 64,
            payload: 1024,
            snapshot_every,
            sync_rate_bytes_per_sec: 64 << 20,
            baseline_ops,
            lag_ops: lag,
            live_catchup: false,
            target_ops_per_sec: None,
        };
        let scratch = scratch_dir(&format!("f1-{i}"));
        let r = recovery_run(&s, &scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        let compaction = snapshot_every.map_or("off".to_string(), |k| format!("every {k}"));
        println!(
            "| {lag} | {compaction} | {} | {} | {} |",
            r.served,
            fmt_f(r.catchup_ms),
            fmt_f(r.sync_mb)
        );
        f1.push(Row {
            fields: vec![
                ("lag_ops", lag.to_string()),
                ("snapshot_every", snapshot_every.unwrap_or(0).to_string()),
                ("served", format!("\"{}\"", r.served)),
                ("catchup_ms", num(r.catchup_ms)),
                ("sync_mb", num(r.sync_mb)),
            ],
        });
    }

    // ── F.2: live-throughput dip, pacing on vs off ────────────────────
    // Big payloads and a deep lag make the sync stream heavy enough to
    // contend with PROPOSE fan-out. Pacing off ships the whole plan in
    // one burst inside a single leader turn; pacing on ack-gates chunks
    // against the token bucket, trading catch-up time for a smaller hole
    // in live throughput. The live load runs at a moderate fixed rate
    // whose commit byte rate sits below the sync budget — the regime
    // pacing is for (a saturated loop would grow backlog faster than any
    // throttled stream could drain it).
    let rate_on: u64 = 16 << 20;
    let target_ops: u64 = 1000;
    println!(
        "\nF.2: live-throughput dip during catch-up (3 servers, {pacing_payload} B ops, \
         {pacing_lag}-op lag, {target_ops} ops/s offered)\n"
    );
    print_header(&[
        "pacing",
        "catch-up (ms)",
        "baseline (ops/s)",
        "max stall (ms)",
        "worst 500ms window (ops/s)",
        "dip (%)",
        "sync (MB)",
    ]);
    let mut f2 = Vec::new();
    for (label, rate) in [("off", 0u64), ("on", rate_on)] {
        let s = Scenario {
            n: 3,
            window: 64,
            payload: pacing_payload,
            snapshot_every: None,
            sync_rate_bytes_per_sec: rate,
            baseline_ops,
            lag_ops: pacing_lag,
            live_catchup: true,
            target_ops_per_sec: Some(target_ops),
        };
        // Median-of-3 by stall: single localhost runs are noisy (host
        // scheduling moves both the baseline and the worst bucket), so
        // report the middle trial as the representative row.
        let mut trials = Vec::new();
        for t in 0..3 {
            let scratch = scratch_dir(&format!("f2-{label}-{t}"));
            trials.push(recovery_run(&s, &scratch));
            let _ = std::fs::remove_dir_all(&scratch);
        }
        trials.sort_by(|a, b| a.max_stall_ms.partial_cmp(&b.max_stall_ms).expect("finite stall"));
        let r = trials.swap_remove(trials.len() / 2);
        println!(
            "| {label} | {} | {} | {} | {} | {} | {} |",
            fmt_f(r.catchup_ms),
            fmt_f(r.baseline_ops_s),
            fmt_f(r.max_stall_ms),
            fmt_f(r.worst_window_ops_s),
            fmt_f(r.dip_pct),
            fmt_f(r.sync_mb)
        );
        f2.push(Row {
            fields: vec![
                ("pacing", format!("\"{label}\"")),
                ("rate_bytes_per_sec", rate.to_string()),
                ("offered_ops_per_sec", target_ops.to_string()),
                ("catchup_ms", num(r.catchup_ms)),
                ("baseline_ops_s", num(r.baseline_ops_s)),
                ("max_stall_ms", num(r.max_stall_ms)),
                ("worst_window_ops_s", num(r.worst_window_ops_s)),
                ("dip_pct", num(r.dip_pct)),
                ("sync_mb", num(r.sync_mb)),
            ],
        });
    }

    let json = format!(
        "{{\n  \"schema\": \"zab-recovery-bench/v1\",\n  \"quick\": {quick},\n  \
         \"catchup_vs_lag\": {},\n  \"pacing_dip\": {}\n}}\n",
        rows_to_json(&f1),
        rows_to_json(&f2),
    );
    let path = out_path();
    std::fs::write(&path, json).expect("write BENCH_recovery.json");
    println!("\nwrote {}", path.display());
}
