//! **R — End-to-end sanity on real sockets.**
//!
//! Runs the F1/F3 shapes on actual TCP replicas on localhost (in-memory
//! storage, so the disk does not confound the network path). Wall-clock
//! numbers depend on the host; the point is that the *shapes* from the
//! simulator carry over to the real implementation.
//!
//! Run: `cargo run --release -p zab-bench --bin real_cluster_bench`

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use zab_bench::{fmt_f, print_header};
use zab_core::ServerId;
use zab_node::{apps::BytesApp, NodeConfig, NodeEvent, Replica, Role};

const OPS: usize = 2_000;
const PAYLOAD: usize = 1024;

fn address_book(n: u64) -> BTreeMap<ServerId, SocketAddr> {
    (1..=n)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect()
}

/// Closed-loop run with `window` ops in flight; returns (ops/s, mean ms).
fn run(n: u64, window: usize) -> (f64, f64) {
    let book = address_book(n);
    let replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone());
            (id, Replica::start(cfg, BytesApp::new()).expect("start"))
        })
        .collect();
    // Wait for establishment.
    let leader = {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some((&id, _)) = replicas
                .iter()
                .find(|(_, r)| matches!(r.role(), Role::Leading { established: true, .. }))
            {
                break id;
            }
            assert!(Instant::now() < deadline, "no leader");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let leader_replica = &replicas[&leader];

    let mut issued = 0usize;
    let mut completed = 0usize;
    let mut latencies = Vec::with_capacity(OPS);
    let mut in_flight: BTreeMap<u64, Instant> = BTreeMap::new();
    let payload = |op: usize| {
        let mut p = vec![0u8; PAYLOAD];
        p[..8].copy_from_slice(&(op as u64).to_le_bytes());
        p
    };
    let t0 = Instant::now();
    while issued < window.min(OPS) {
        in_flight.insert(issued as u64, Instant::now());
        leader_replica.submit(payload(issued));
        issued += 1;
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while completed < OPS && Instant::now() < deadline {
        if let Ok(NodeEvent::Delivered(txn)) =
            leader_replica.events().recv_timeout(Duration::from_millis(500))
        {
            let op = u64::from_le_bytes(txn.data[..8].try_into().expect("8 bytes"));
            if let Some(start) = in_flight.remove(&op) {
                latencies.push(start.elapsed().as_secs_f64() * 1000.0);
                completed += 1;
                if issued < OPS {
                    in_flight.insert(issued as u64, Instant::now());
                    leader_replica.submit(payload(issued));
                    issued += 1;
                }
            }
        }
    }
    assert_eq!(completed, OPS, "run did not complete");
    let elapsed = t0.elapsed().as_secs_f64();
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    (OPS as f64 / elapsed, mean)
}

fn main() {
    println!("R: real-TCP localhost cluster, {OPS} x {PAYLOAD} B ops (in-memory storage)\n");
    print_header(&["servers", "window", "ops/s", "mean lat (ms)"]);
    for (n, window) in [(3u64, 1usize), (3, 64), (3, 512), (5, 512)] {
        let (tput, mean) = run(n, window);
        println!("| {n} | {window} | {} | {} |", fmt_f(tput), fmt_f(mean));
    }
    println!(
        "\nshape check: window 1 is RTT-bound; deeper windows pipeline (F3's shape);\n\
         5 servers trail 3 servers at equal window (F1's shape)."
    );
}
