//! The primary-side speculative executor.
//!
//! A Zab primary pipelines many operations; each must be executed against
//! the state produced by the (not yet committed) operations before it —
//! otherwise two concurrent sequential creates would both resolve to the
//! same sequence number. [`PrimaryExecutor`] therefore keeps a
//! *speculative* tree: the committed state plus every delta this primary
//! has emitted but not yet seen commit.
//!
//! On leadership change, the speculative tree is discarded and rebuilt
//! from the committed tree ([`PrimaryExecutor::new`]) — uncommitted
//! speculative deltas either survived into the new epoch (and will arrive
//! as ordinary deliveries) or were discarded by synchronization.

use crate::ops::{Delta, Op, OpResult};
use crate::tree::{split_path, DataTree, KvError};

/// Executes client operations speculatively, emitting broadcast deltas.
#[derive(Debug, Clone)]
pub struct PrimaryExecutor {
    speculative: DataTree,
}

impl PrimaryExecutor {
    /// Builds an executor over the current committed state.
    pub fn new(committed: DataTree) -> PrimaryExecutor {
        PrimaryExecutor { speculative: committed }
    }

    /// The speculative view (committed + emitted deltas).
    pub fn view(&self) -> &DataTree {
        &self.speculative
    }

    /// Executes one client operation: validates it against the speculative
    /// state, resolves all non-determinism, applies it speculatively, and
    /// returns the delta to broadcast plus the client-visible result.
    ///
    /// # Errors
    ///
    /// Application-level failures ([`KvError`]) are returned to the client
    /// and produce *no* delta — failed operations are not broadcast.
    pub fn execute(&mut self, op: &Op) -> Result<(Delta, OpResult), KvError> {
        let (delta, result) = self.prepare(op)?;
        self.speculative
            .apply(&delta)
            .expect("speculative apply of a just-validated delta succeeds");
        Ok((delta, result))
    }

    /// Validates and translates without applying.
    fn prepare(&self, op: &Op) -> Result<(Delta, OpResult), KvError> {
        match op {
            Op::Create { path, data, sequential } => {
                let final_path;
                let parent_path;
                if *sequential {
                    // The counter comes from the parent's cversion; the
                    // path argument is a prefix, its parent is the node
                    // that owns the counter.
                    let (parent, _) = split_path(path)?;
                    let p = self
                        .speculative
                        .get(parent)
                        .ok_or_else(|| KvError::NoNode(parent.to_string()))?;
                    final_path = format!("{path}{:010}", p.cversion);
                    parent_path = parent.to_string();
                } else {
                    let (parent, _) = split_path(path)?;
                    if !self.speculative.exists(parent) {
                        return Err(KvError::NoNode(parent.to_string()));
                    }
                    if self.speculative.exists(path) {
                        return Err(KvError::NodeExists(path.clone()));
                    }
                    final_path = path.clone();
                    parent_path = parent.to_string();
                }
                let parent_cversion =
                    self.speculative.get(&parent_path).expect("validated").cversion + 1;
                Ok((
                    Delta::CreateNode {
                        path: final_path.clone(),
                        data: data.clone(),
                        parent_cversion,
                    },
                    OpResult { created_path: Some(final_path), new_version: None },
                ))
            }
            Op::Delete { path, expected_version } => {
                let node =
                    self.speculative.get(path).ok_or_else(|| KvError::NoNode(path.clone()))?;
                if let Some(expected) = expected_version {
                    if node.version != *expected {
                        return Err(KvError::BadVersion {
                            path: path.clone(),
                            expected: *expected,
                            actual: node.version,
                        });
                    }
                }
                if !self.speculative.children(path)?.is_empty() {
                    return Err(KvError::NotEmpty(path.clone()));
                }
                Ok((Delta::DeleteNode { path: path.clone() }, OpResult::default()))
            }
            Op::SetData { path, data, expected_version } => {
                let node =
                    self.speculative.get(path).ok_or_else(|| KvError::NoNode(path.clone()))?;
                if let Some(expected) = expected_version {
                    if node.version != *expected {
                        return Err(KvError::BadVersion {
                            path: path.clone(),
                            expected: *expected,
                            actual: node.version,
                        });
                    }
                }
                let new_version = node.version + 1;
                Ok((
                    Delta::SetData { path: path.clone(), data: data.clone(), new_version },
                    OpResult { created_path: None, new_version: Some(new_version) },
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_creates_resolve_increasing_counters() {
        let mut p = PrimaryExecutor::new(DataTree::new());
        let (d1, r1) = p.execute(&Op::create_sequential("/task-", vec![])).unwrap();
        let (d2, r2) = p.execute(&Op::create_sequential("/task-", vec![])).unwrap();
        assert_eq!(r1.created_path.as_deref(), Some("/task-0000000000"));
        assert_eq!(r2.created_path.as_deref(), Some("/task-0000000001"));
        // Backups replay the deltas and end in the same state.
        let mut backup = DataTree::new();
        backup.apply(&d1).unwrap();
        backup.apply(&d2).unwrap();
        assert_eq!(backup, *p.view());
    }

    #[test]
    fn pipelined_dependent_ops_chain_speculatively() {
        let mut p = PrimaryExecutor::new(DataTree::new());
        // Create a node, then immediately set it, before anything commits.
        let (d1, _) = p.execute(&Op::create("/cfg", b"v0".to_vec())).unwrap();
        let (d2, r2) = p.execute(&Op::set("/cfg", b"v1".to_vec())).unwrap();
        assert_eq!(r2.new_version, Some(1));
        let mut backup = DataTree::new();
        backup.apply(&d1).unwrap();
        backup.apply(&d2).unwrap();
        assert_eq!(backup.get("/cfg").unwrap().data, b"v1");
    }

    #[test]
    fn version_cas_succeeds_then_fails() {
        let mut p = PrimaryExecutor::new(DataTree::new());
        p.execute(&Op::create("/n", vec![])).unwrap();
        p.execute(&Op::set_if_version("/n", b"a".to_vec(), 0)).unwrap();
        let err = p.execute(&Op::set_if_version("/n", b"b".to_vec(), 0)).unwrap_err();
        assert!(matches!(err, KvError::BadVersion { expected: 0, actual: 1, .. }));
    }

    #[test]
    fn failed_ops_emit_no_delta_and_do_not_mutate() {
        let mut p = PrimaryExecutor::new(DataTree::new());
        assert!(p.execute(&Op::delete("/missing")).is_err());
        assert!(p.execute(&Op::create("/no/parent", vec![])).is_err());
        assert_eq!(*p.view(), DataTree::new());
    }

    #[test]
    fn rebuild_from_committed_discards_speculation() {
        let mut p = PrimaryExecutor::new(DataTree::new());
        let committed = DataTree::new();
        p.execute(&Op::create("/spec", vec![])).unwrap();
        // Leadership lost: rebuild from committed.
        let p2 = PrimaryExecutor::new(committed.clone());
        assert_eq!(*p2.view(), committed);
    }

    #[test]
    fn sequential_counter_survives_child_deletion() {
        // ZooKeeper semantics: the parent's counter never reuses numbers,
        // even after children are deleted.
        let mut p = PrimaryExecutor::new(DataTree::new());
        let (_, r1) = p.execute(&Op::create_sequential("/q-", vec![])).unwrap();
        p.execute(&Op::delete(r1.created_path.as_deref().unwrap())).unwrap();
        let (_, r2) = p.execute(&Op::create_sequential("/q-", vec![])).unwrap();
        assert_eq!(r2.created_path.as_deref(), Some("/q-0000000001"));
    }
}
