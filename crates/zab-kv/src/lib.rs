//! # zab-kv — a ZooKeeper-like data tree over Zab
//!
//! The Zab abstract describes the system shape this crate completes:
//!
//! > *"ZooKeeper implements a primary-backup scheme in which a primary
//! > process executes clients operations and uses Zab to propagate the
//! > corresponding incremental state changes to backup processes."*
//!
//! The crucial word is **incremental**. A client operation like
//! `create -s /lock/req-` (sequential node) or `setData -v 3 /cfg` (versioned
//! write) is *non-deterministic with respect to the raw operation*: its
//! outcome depends on the state the primary executed it against (the next
//! sequence number, the current version). So the primary **executes** the
//! operation, and what gets broadcast is the resulting **state delta**
//! ([`Delta`]) — fully deterministic to apply. This is exactly why Zab must
//! guarantee that a delta is never delivered unless every delta it was
//! computed against is delivered first (primary order): applying
//! `{create "/lock/req-0000000007"}` to a tree that never saw request 6
//! silently corrupts the lock queue.
//!
//! Pieces:
//!
//! - [`DataTree`] — the replicated state: hierarchical znodes with data,
//!   versions, child lists and per-parent sequential counters. Applies
//!   [`Delta`]s; serves reads; snapshots to bytes.
//! - [`Op`] — client operations (create / delete / set-data with optional
//!   version guards, plus reads served locally).
//! - [`PrimaryExecutor`] — the primary-side speculative executor: executes
//!   ops against *latest-proposed* state (so pipelined ops chain), emits
//!   deltas for broadcast, and can be rebuilt from committed state after a
//!   leadership change.
//!
//! # Example
//!
//! ```
//! use zab_kv::{DataTree, Op, PrimaryExecutor};
//!
//! let mut primary = PrimaryExecutor::new(DataTree::new());
//! let mut backup = DataTree::new();
//!
//! // The primary executes; the backup applies the broadcast delta.
//! let (delta, result) = primary
//!     .execute(&Op::create_sequential("/task-", b"job".to_vec()))
//!     .unwrap();
//! assert_eq!(result.created_path.as_deref(), Some("/task-0000000000"));
//! backup.apply(&delta).unwrap();
//! assert!(backup.exists("/task-0000000000"));
//! ```

pub mod ops;
pub mod primary;
pub mod tree;

pub use ops::{Delta, Op, OpResult};
pub use primary::PrimaryExecutor;
pub use tree::{DataTree, KvError};
