//! The hierarchical data tree (znodes) and deterministic delta application.

use crate::ops::Delta;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use zab_wire::codec::{WireRead, WireWrite};

/// Application-level failure executing an operation or applying a delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The path (or its parent) does not exist.
    NoNode(String),
    /// Create of an existing path.
    NodeExists(String),
    /// Delete of a znode that still has children.
    NotEmpty(String),
    /// A version guard failed.
    BadVersion {
        /// The path.
        path: String,
        /// Version the client expected.
        expected: u64,
        /// Actual version.
        actual: u64,
    },
    /// Malformed path (must start with '/', no empty or trailing segments).
    BadPath(String),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::NoNode(p) => write!(f, "no node at {p}"),
            KvError::NodeExists(p) => write!(f, "node already exists at {p}"),
            KvError::NotEmpty(p) => write!(f, "node at {p} has children"),
            KvError::BadVersion { path, expected, actual } => {
                write!(f, "version mismatch at {path}: expected {expected}, actual {actual}")
            }
            KvError::BadPath(p) => write!(f, "malformed path {p:?}"),
        }
    }
}

impl Error for KvError {}

/// One znode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Znode {
    /// Node payload.
    pub data: Vec<u8>,
    /// Data version (bumped by each set).
    pub version: u64,
    /// Per-parent sequential-create counter (ZooKeeper's cversion role).
    pub cversion: u64,
}

/// Validates a path and returns its parent and leaf name.
///
/// # Errors
/// [`KvError::BadPath`] for anything not of the form `/a/b/c`.
pub fn split_path(path: &str) -> Result<(&str, &str), KvError> {
    if !path.starts_with('/') || path.len() < 2 || path.ends_with('/') {
        return Err(KvError::BadPath(path.to_string()));
    }
    if path.split('/').skip(1).any(|seg| seg.is_empty()) {
        return Err(KvError::BadPath(path.to_string()));
    }
    let idx = path.rfind('/').expect("starts with '/'");
    let parent = if idx == 0 { "/" } else { &path[..idx] };
    Ok((parent, &path[idx + 1..]))
}

/// The replicated hierarchical store.
///
/// The root znode `/` always exists. Deltas apply deterministically; a
/// delta that fails indicates divergence between primary and backup and is
/// surfaced as an error (callers treat it as fatal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataTree {
    /// Path → node. A `BTreeMap` keeps children enumeration ordered.
    nodes: BTreeMap<String, Znode>,
}

impl Default for DataTree {
    fn default() -> Self {
        Self::new()
    }
}

impl DataTree {
    /// A tree containing only the root.
    pub fn new() -> DataTree {
        let mut nodes = BTreeMap::new();
        nodes.insert("/".to_string(), Znode { data: vec![], version: 0, cversion: 0 });
        DataTree { nodes }
    }

    /// Number of znodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: the root exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if a znode exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Reads a znode.
    pub fn get(&self, path: &str) -> Option<&Znode> {
        self.nodes.get(path)
    }

    /// Lists the names of `path`'s direct children, in order.
    ///
    /// # Errors
    /// [`KvError::NoNode`] if `path` does not exist.
    pub fn children(&self, path: &str) -> Result<Vec<String>, KvError> {
        if !self.exists(path) {
            return Err(KvError::NoNode(path.to_string()));
        }
        let prefix = if path == "/" { String::from("/") } else { format!("{path}/") };
        Ok(self
            .nodes
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .filter(|(k, _)| !k[prefix.len()..].is_empty() && !k[prefix.len()..].contains('/'))
            .map(|(k, _)| k[prefix.len()..].to_string())
            .collect())
    }

    /// Applies a delta computed by the primary.
    ///
    /// # Errors
    ///
    /// Any error means this replica's state diverged from the primary's
    /// at delta-computation time — with primary order intact this cannot
    /// happen; callers treat it as fatal. (The primary-order violation
    /// experiment in the benchmarks triggers exactly these errors when
    /// replaying Multi-Paxos-ordered deltas.)
    pub fn apply(&mut self, delta: &Delta) -> Result<(), KvError> {
        match delta {
            Delta::CreateNode { path, data, parent_cversion } => {
                let (parent, _) = split_path(path)?;
                if self.exists(path) {
                    return Err(KvError::NodeExists(path.clone()));
                }
                let Some(p) = self.nodes.get_mut(parent) else {
                    return Err(KvError::NoNode(parent.to_string()));
                };
                p.cversion = *parent_cversion;
                self.nodes
                    .insert(path.clone(), Znode { data: data.clone(), version: 0, cversion: 0 });
                Ok(())
            }
            Delta::DeleteNode { path } => {
                if !self.exists(path) {
                    return Err(KvError::NoNode(path.clone()));
                }
                if !self.children(path)?.is_empty() {
                    return Err(KvError::NotEmpty(path.clone()));
                }
                self.nodes.remove(path);
                Ok(())
            }
            Delta::SetData { path, data, new_version } => {
                let Some(node) = self.nodes.get_mut(path) else {
                    return Err(KvError::NoNode(path.clone()));
                };
                node.data = data.clone();
                node.version = *new_version;
                Ok(())
            }
        }
    }

    /// Serializes the whole tree (for SNAP synchronization).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u32_le_wire(self.nodes.len() as u32);
        for (path, node) in &self.nodes {
            buf.put_str_wire(path);
            buf.put_bytes_wire(&node.data);
            buf.put_u64_le_wire(node.version);
            buf.put_u64_le_wire(node.cversion);
        }
        buf
    }

    /// Deserializes a snapshot produced by [`DataTree::snapshot`].
    ///
    /// # Errors
    /// Returns a string description on malformed input.
    pub fn from_snapshot(mut data: &[u8]) -> Result<DataTree, String> {
        let cur = &mut data;
        let n = cur.get_u32_le_wire().map_err(|e| e.to_string())? as usize;
        let mut nodes = BTreeMap::new();
        for _ in 0..n {
            let path = cur.get_str_wire().map_err(|e| e.to_string())?.to_string();
            let data = cur.get_bytes_wire().map_err(|e| e.to_string())?.to_vec();
            let version = cur.get_u64_le_wire().map_err(|e| e.to_string())?;
            let cversion = cur.get_u64_le_wire().map_err(|e| e.to_string())?;
            nodes.insert(path, Znode { data, version, cversion });
        }
        if !cur.is_empty() {
            return Err("trailing bytes in snapshot".to_string());
        }
        if !nodes.contains_key("/") {
            return Err("snapshot lacks root".to_string());
        }
        Ok(DataTree { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create(path: &str, cv: u64) -> Delta {
        Delta::CreateNode { path: path.into(), data: b"d".to_vec(), parent_cversion: cv }
    }

    #[test]
    fn split_path_accepts_well_formed_paths() {
        assert_eq!(split_path("/a").unwrap(), ("/", "a"));
        assert_eq!(split_path("/a/b/c").unwrap(), ("/a/b", "c"));
        // Single-character and multi-byte segment names are ordinary.
        assert_eq!(split_path("/x/y").unwrap(), ("/x", "y"));
        assert_eq!(split_path("/héllo/wörld").unwrap(), ("/héllo", "wörld"));
        // Deep nesting: the parent is everything up to the last slash.
        assert_eq!(split_path("/a/b/c/d/e/f").unwrap(), ("/a/b/c/d/e", "f"));
    }

    #[test]
    fn split_path_rejections_carry_the_offending_path() {
        // The error pins the contract: BadPath always embeds the exact
        // input, so callers can report it verbatim.
        let bad = |p: &str| assert_eq!(split_path(p), Err(KvError::BadPath(p.to_string())), "{p}");
        bad(""); // empty
        bad("/"); // the root has no parent/leaf split
        bad("a"); // missing leading slash
        bad("a/b"); // relative path
        bad("/a/"); // trailing slash
        bad("/a/b/"); // trailing slash, nested
        bad("//"); // empty leading segment with trailing slash
        bad("//a"); // empty leading segment
        bad("/a//b"); // empty middle segment
        bad("/a/b//"); // empty + trailing
    }

    #[test]
    fn split_path_rfind_invariant_holds_for_all_accepted_inputs() {
        // `split_path` unwraps `path.rfind('/')` (tree.rs): every path
        // that survives validation must contain a '/', and rejoining
        // parent + leaf must reproduce the input. Sweep a generated
        // corpus to pin that invariant.
        let segs = ["a", "bb", "ccc"];
        for s1 in segs {
            let p1 = format!("/{s1}");
            let (parent, leaf) = split_path(&p1).expect("depth-1 path accepted");
            assert_eq!(parent, "/");
            assert_eq!(format!("/{leaf}"), p1);
            for s2 in segs {
                let p2 = format!("/{s1}/{s2}");
                let (parent, leaf) = split_path(&p2).expect("depth-2 path accepted");
                assert_eq!(format!("{parent}/{leaf}"), p2);
                assert_eq!(parent, p1, "parent of {p2}");
            }
        }
    }

    #[test]
    fn bad_paths_surface_through_apply() {
        // The validation error propagates untouched through delta
        // application — a malformed create can never mutate the tree.
        let mut t = DataTree::new();
        let before = t.clone();
        assert_eq!(t.apply(&create("relative", 1)), Err(KvError::BadPath("relative".to_string())));
        assert_eq!(t.apply(&create("/a/", 1)), Err(KvError::BadPath("/a/".to_string())));
        assert_eq!(t, before, "failed create mutated the tree");
    }

    #[test]
    fn create_and_read() {
        let mut t = DataTree::new();
        t.apply(&create("/a", 1)).unwrap();
        assert!(t.exists("/a"));
        assert_eq!(t.get("/a").unwrap().data, b"d");
        assert_eq!(t.get("/").unwrap().cversion, 1);
    }

    #[test]
    fn create_requires_parent() {
        let mut t = DataTree::new();
        assert_eq!(t.apply(&create("/a/b", 1)), Err(KvError::NoNode("/a".to_string())));
    }

    #[test]
    fn duplicate_create_fails() {
        let mut t = DataTree::new();
        t.apply(&create("/a", 1)).unwrap();
        assert_eq!(t.apply(&create("/a", 2)), Err(KvError::NodeExists("/a".to_string())));
    }

    #[test]
    fn delete_leaf_only() {
        let mut t = DataTree::new();
        t.apply(&create("/a", 1)).unwrap();
        t.apply(&create("/a/b", 1)).unwrap();
        assert_eq!(
            t.apply(&Delta::DeleteNode { path: "/a".into() }),
            Err(KvError::NotEmpty("/a".to_string()))
        );
        t.apply(&Delta::DeleteNode { path: "/a/b".into() }).unwrap();
        t.apply(&Delta::DeleteNode { path: "/a".into() }).unwrap();
        assert!(!t.exists("/a"));
    }

    #[test]
    fn set_data_updates_version() {
        let mut t = DataTree::new();
        t.apply(&create("/a", 1)).unwrap();
        t.apply(&Delta::SetData { path: "/a".into(), data: b"x".to_vec(), new_version: 1 })
            .unwrap();
        let n = t.get("/a").unwrap();
        assert_eq!(n.data, b"x");
        assert_eq!(n.version, 1);
    }

    #[test]
    fn children_are_ordered_and_direct_only() {
        let mut t = DataTree::new();
        for p in ["/b", "/a", "/a/x", "/a/y", "/c"] {
            t.apply(&create(p, 1)).unwrap();
        }
        assert_eq!(t.children("/").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(t.children("/a").unwrap(), vec!["x", "y"]);
        assert_eq!(t.children("/b").unwrap(), Vec::<String>::new());
        assert!(t.children("/zzz").is_err());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut t = DataTree::new();
        for p in ["/a", "/a/x", "/b"] {
            t.apply(&create(p, 1)).unwrap();
        }
        t.apply(&Delta::SetData { path: "/b".into(), data: vec![9; 100], new_version: 3 }).unwrap();
        let snap = t.snapshot();
        let back = DataTree::from_snapshot(&snap).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn malformed_snapshot_rejected() {
        assert!(DataTree::from_snapshot(&[1, 2, 3]).is_err());
        let mut good = DataTree::new().snapshot();
        good.push(0xFF);
        assert!(DataTree::from_snapshot(&good).is_err());
    }
}
