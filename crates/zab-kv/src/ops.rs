//! Client operations, primary-computed deltas, and their wire formats.

use zab_wire::codec::{WireError, WireRead, WireWrite};

/// A client operation submitted to the primary.
///
/// Reads (`exists`, `get`, `children`) are served from local state and are
/// not represented here; only state-changing operations are broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Create a znode. With `sequential`, a zero-padded per-parent counter
    /// is appended to the path by the primary.
    Create {
        /// Absolute path (parent must exist); for sequential creates, the
        /// prefix the counter is appended to.
        path: String,
        /// Initial data.
        data: Vec<u8>,
        /// ZooKeeper `-s` flag.
        sequential: bool,
    },
    /// Delete a znode (must have no children).
    Delete {
        /// Absolute path.
        path: String,
        /// Expected version, or `None` for unconditional.
        expected_version: Option<u64>,
    },
    /// Replace a znode's data.
    SetData {
        /// Absolute path.
        path: String,
        /// New data.
        data: Vec<u8>,
        /// Expected version, or `None` for unconditional.
        expected_version: Option<u64>,
    },
}

impl Op {
    /// Convenience: plain create.
    pub fn create(path: impl Into<String>, data: Vec<u8>) -> Op {
        Op::Create { path: path.into(), data, sequential: false }
    }

    /// Convenience: sequential create (`create -s`).
    pub fn create_sequential(prefix: impl Into<String>, data: Vec<u8>) -> Op {
        Op::Create { path: prefix.into(), data, sequential: true }
    }

    /// Convenience: unconditional set.
    pub fn set(path: impl Into<String>, data: Vec<u8>) -> Op {
        Op::SetData { path: path.into(), data, expected_version: None }
    }

    /// Convenience: compare-and-set on the version.
    pub fn set_if_version(path: impl Into<String>, data: Vec<u8>, version: u64) -> Op {
        Op::SetData { path: path.into(), data, expected_version: Some(version) }
    }

    /// Convenience: unconditional delete.
    pub fn delete(path: impl Into<String>) -> Op {
        Op::Delete { path: path.into(), expected_version: None }
    }

    /// Encodes the operation.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Op::Create { path, data, sequential } => {
                buf.put_u8_wire(1);
                buf.put_str_wire(path);
                buf.put_bytes_wire(data);
                buf.put_bool_wire(*sequential);
            }
            Op::Delete { path, expected_version } => {
                buf.put_u8_wire(2);
                buf.put_str_wire(path);
                encode_opt_version(&mut buf, expected_version);
            }
            Op::SetData { path, data, expected_version } => {
                buf.put_u8_wire(3);
                buf.put_str_wire(path);
                buf.put_bytes_wire(data);
                encode_opt_version(&mut buf, expected_version);
            }
        }
        buf
    }

    /// Decodes an operation.
    ///
    /// # Errors
    /// [`WireError`] on truncation or unknown tag.
    pub fn decode(mut data: &[u8]) -> Result<Op, WireError> {
        let cur = &mut data;
        match cur.get_u8_wire()? {
            1 => Ok(Op::Create {
                path: cur.get_str_wire()?.to_string(),
                data: cur.get_bytes_wire()?.to_vec(),
                sequential: cur.get_bool_wire()?,
            }),
            2 => Ok(Op::Delete {
                path: cur.get_str_wire()?.to_string(),
                expected_version: decode_opt_version(cur)?,
            }),
            3 => Ok(Op::SetData {
                path: cur.get_str_wire()?.to_string(),
                data: cur.get_bytes_wire()?.to_vec(),
                expected_version: decode_opt_version(cur)?,
            }),
            tag => Err(WireError::InvalidTag { tag, context: "Op" }),
        }
    }
}

fn encode_opt_version(buf: &mut Vec<u8>, v: &Option<u64>) {
    match v {
        Some(v) => {
            buf.put_bool_wire(true);
            buf.put_u64_le_wire(*v);
        }
        None => buf.put_bool_wire(false),
    }
}

fn decode_opt_version(cur: &mut &[u8]) -> Result<Option<u64>, WireError> {
    if cur.get_bool_wire()? {
        Ok(Some(cur.get_u64_le_wire()?))
    } else {
        Ok(None)
    }
}

/// The deterministic incremental state change the primary broadcasts.
///
/// All non-determinism (sequence numbers, version checks) was resolved by
/// the primary; applying a delta either succeeds deterministically or
/// reveals divergence (a bug or a primary-order violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delta {
    /// Create a znode at the *final* (sequence-resolved) path.
    CreateNode {
        /// Final absolute path.
        path: String,
        /// Initial data.
        data: Vec<u8>,
        /// The parent's sequential counter after this create (keeps backup
        /// counters in lockstep for future sequential creates).
        parent_cversion: u64,
    },
    /// Delete a znode.
    DeleteNode {
        /// Absolute path.
        path: String,
    },
    /// Replace a znode's data and bump its version to `new_version`.
    SetData {
        /// Absolute path.
        path: String,
        /// New data.
        data: Vec<u8>,
        /// Version after the write.
        new_version: u64,
    },
}

impl Delta {
    /// Encodes the delta (this is what rides inside a Zab transaction).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Delta::CreateNode { path, data, parent_cversion } => {
                buf.put_u8_wire(1);
                buf.put_str_wire(path);
                buf.put_bytes_wire(data);
                buf.put_u64_le_wire(*parent_cversion);
            }
            Delta::DeleteNode { path } => {
                buf.put_u8_wire(2);
                buf.put_str_wire(path);
            }
            Delta::SetData { path, data, new_version } => {
                buf.put_u8_wire(3);
                buf.put_str_wire(path);
                buf.put_bytes_wire(data);
                buf.put_u64_le_wire(*new_version);
            }
        }
        buf
    }

    /// Decodes a delta.
    ///
    /// # Errors
    /// [`WireError`] on truncation or unknown tag.
    pub fn decode(mut data: &[u8]) -> Result<Delta, WireError> {
        let cur = &mut data;
        match cur.get_u8_wire()? {
            1 => Ok(Delta::CreateNode {
                path: cur.get_str_wire()?.to_string(),
                data: cur.get_bytes_wire()?.to_vec(),
                parent_cversion: cur.get_u64_le_wire()?,
            }),
            2 => Ok(Delta::DeleteNode { path: cur.get_str_wire()?.to_string() }),
            3 => Ok(Delta::SetData {
                path: cur.get_str_wire()?.to_string(),
                data: cur.get_bytes_wire()?.to_vec(),
                new_version: cur.get_u64_le_wire()?,
            }),
            tag => Err(WireError::InvalidTag { tag, context: "Delta" }),
        }
    }
}

/// What the primary reports back to the client.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpResult {
    /// For creates: the final path (sequence-resolved).
    pub created_path: Option<String>,
    /// For set-data: the new version.
    pub new_version: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_round_trips() {
        let ops = vec![
            Op::create("/a", b"x".to_vec()),
            Op::create_sequential("/q/item-", vec![]),
            Op::delete("/a"),
            Op::Delete { path: "/b".into(), expected_version: Some(4) },
            Op::set("/a", b"y".to_vec()),
            Op::set_if_version("/a", b"z".to_vec(), 9),
        ];
        for op in ops {
            assert_eq!(Op::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn delta_round_trips() {
        let deltas = vec![
            Delta::CreateNode {
                path: "/a-0000000003".into(),
                data: b"d".to_vec(),
                parent_cversion: 4,
            },
            Delta::DeleteNode { path: "/a".into() },
            Delta::SetData { path: "/a".into(), data: vec![], new_version: 7 },
        ];
        for d in deltas {
            assert_eq!(Delta::decode(&d.encode()).unwrap(), d);
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Op::decode(&[99]).is_err());
        assert!(Delta::decode(&[99]).is_err());
    }

    #[test]
    fn truncated_encodings_rejected() {
        let wire = Op::create("/abc", b"data".to_vec()).encode();
        for cut in 0..wire.len() {
            assert!(Op::decode(&wire[..cut]).is_err());
        }
    }
}
