//! Exhaustive bit-rot sweep: flip one byte at *every* position of a
//! synced log and reopen. Recovery must either truncate safely (damage
//! confined to the final record — a torn tail) or refuse with a hard
//! error (mid-file corruption) — it must never deliver a payload, zxid,
//! or ordering that differs from what was written.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use zab_core::{Epoch, Txn, Zxid};
use zab_log::fault::flip_byte_in_file;
use zab_log::{FileStorage, Storage, StorageError};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tempdir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("zab-log-corrupt-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Copies every file of `src` into a fresh `dst`.
fn clone_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy");
    }
}

#[test]
fn every_single_byte_flip_truncates_safely_or_errors() {
    // Golden log: varying payload sizes so flips land in every field kind
    // (len, crc, zxid, dlen, payload — including a zero-length payload).
    let golden_dir = tempdir();
    let txns: Vec<Txn> = (1..=8u32)
        .map(|c| Txn::new(Zxid::new(Epoch(1), c), vec![c as u8; (c as usize * 7) % 23]))
        .collect();
    {
        let mut s = FileStorage::open(&golden_dir).expect("open");
        s.append_txns(&txns).expect("append");
        s.flush().expect("flush");
    }
    let log_len = std::fs::metadata(golden_dir.join("log")).expect("meta").len();
    let last_record_start =
        log_len - (zab_log::record::log_record_len(txns.last().expect("nonempty")));

    let work_dir = tempdir();
    let mut truncated = 0u64;
    let mut refused = 0u64;
    for offset in 0..log_len {
        clone_dir(&golden_dir, &work_dir);
        flip_byte_in_file(work_dir.join("log"), offset).expect("flip");

        match FileStorage::open(&work_dir) {
            Ok(s) => {
                // Recovery accepted the log: whatever it kept must be an
                // exact prefix of what was written — same zxids, same
                // payloads, nothing reordered or altered.
                let r = s.recover().expect("recover after open");
                let got = r.history.txns();
                assert!(got.len() < txns.len(), "offset {offset}: flip went undetected");
                assert_eq!(
                    got,
                    &txns[..got.len()],
                    "offset {offset}: recovered log is not an exact prefix"
                );
                // Only damage in the final record is truncatable.
                assert!(
                    offset >= last_record_start,
                    "offset {offset}: truncated mid-file damage (data loss!)"
                );
                assert_eq!(got.len(), txns.len() - 1);
                truncated += 1;
            }
            Err(StorageError::MidFileCorrupt { offset: reported }) => {
                // Refused: correct for any flip before the final record.
                assert!(
                    offset < last_record_start,
                    "offset {offset}: final-record damage misreported as mid-file"
                );
                assert!(
                    reported <= offset,
                    "offset {offset}: damage reported at {reported}, after the flip"
                );
                refused += 1;
            }
            Err(e) => panic!("offset {offset}: unexpected error {e}"),
        }
    }

    // The sweep must have exercised both outcomes.
    assert_eq!(refused, last_record_start, "every pre-final-record flip must refuse");
    assert_eq!(truncated, log_len - last_record_start, "every final-record flip must truncate");

    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&work_dir);
}

/// Same sweep against a log that sits on top of a snapshot (a compacted
/// store): the snapshot must keep recovery anchored and the same
/// truncate-or-refuse guarantee must hold for the suffix log.
#[test]
fn byte_flips_after_compaction_still_truncate_or_error() {
    let golden_dir = tempdir();
    let txns: Vec<Txn> =
        (1..=6u32).map(|c| Txn::new(Zxid::new(Epoch(2), c), vec![0xA0 | c as u8; 11])).collect();
    {
        let mut s = FileStorage::open(&golden_dir).expect("open");
        s.append_txns(&txns).expect("append");
        s.compact(bytes::Bytes::from_static(b"snap"), txns[2].zxid).expect("compact");
        s.flush().expect("flush");
    }
    let suffix = &txns[3..];
    let log_len = std::fs::metadata(golden_dir.join("log")).expect("meta").len();
    let last_record_start =
        log_len - zab_log::record::log_record_len(suffix.last().expect("nonempty"));

    let work_dir = tempdir();
    for offset in 0..log_len {
        clone_dir(&golden_dir, &work_dir);
        flip_byte_in_file(work_dir.join("log"), offset).expect("flip");
        match FileStorage::open(&work_dir) {
            Ok(s) => {
                let r = s.recover().expect("recover after open");
                assert_eq!(r.history.base(), txns[2].zxid, "snapshot anchor lost");
                let got = r.history.txns();
                assert_eq!(got, &suffix[..got.len()], "offset {offset}: not a prefix");
                assert!(offset >= last_record_start, "offset {offset}: truncated mid-file");
            }
            Err(StorageError::MidFileCorrupt { .. }) => {
                assert!(offset < last_record_start, "offset {offset}: misreported tail");
            }
            Err(e) => panic!("offset {offset}: unexpected error {e}"),
        }
    }

    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&work_dir);
}
