//! Property tests: the in-memory and file-backed stores agree under every
//! operation sequence, and file recovery tolerates arbitrary tail damage.

use bytes::Bytes;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use zab_core::{Epoch, Txn, Zxid};
use zab_log::{FileStorage, MemStorage, Storage};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tempdir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("zab-log-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A storage operation with enough structure to stay legal.
#[derive(Debug, Clone)]
enum StoreOp {
    Append { count: u8, payload: u8 },
    Truncate { back: u8 },
    SetAccepted(u32),
    SetCurrent(u32),
    Flush,
    Compact { keep_tail: u8 },
    Reset { payload: u8 },
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (1u8..5, any::<u8>()).prop_map(|(count, payload)| StoreOp::Append { count, payload }),
        (0u8..4).prop_map(|back| StoreOp::Truncate { back }),
        (0u32..100).prop_map(StoreOp::SetAccepted),
        (0u32..100).prop_map(StoreOp::SetCurrent),
        Just(StoreOp::Flush),
        (0u8..4).prop_map(|keep_tail| StoreOp::Compact { keep_tail }),
        any::<u8>().prop_map(|payload| StoreOp::Reset { payload }),
    ]
}

/// Applies one op identically to both stores; returns updated txn counter.
fn apply_both(op: &StoreOp, mem: &mut MemStorage, file: &mut FileStorage, counter: &mut u32) {
    match op {
        StoreOp::Append { count, payload } => {
            for _ in 0..*count {
                *counter += 1;
                let txn = Txn::new(Zxid::new(Epoch(1), *counter), vec![*payload; 16]);
                mem.append_txns(std::slice::from_ref(&txn)).expect("mem append");
                file.append_txns(std::slice::from_ref(&txn)).expect("file append");
            }
        }
        StoreOp::Truncate { back } => {
            let to = counter.saturating_sub(*back as u32);
            let base_counter = mem.recover().expect("recover").history.base().counter();
            let to = to.max(base_counter);
            if to == 0 {
                return; // would truncate into a ZERO base with epoch 0
            }
            let z = Zxid::new(Epoch(1), to);
            if z < mem.recover().expect("recover").history.base() {
                return;
            }
            mem.truncate(z).expect("mem truncate");
            file.truncate(z).expect("file truncate");
            *counter = to;
        }
        StoreOp::SetAccepted(e) => {
            mem.set_accepted_epoch(Epoch(*e)).expect("mem epoch");
            file.set_accepted_epoch(Epoch(*e)).expect("file epoch");
        }
        StoreOp::SetCurrent(e) => {
            mem.set_current_epoch(Epoch(*e)).expect("mem epoch");
            file.set_current_epoch(Epoch(*e)).expect("file epoch");
        }
        StoreOp::Flush => {
            mem.flush().expect("mem flush");
            file.flush().expect("file flush");
        }
        StoreOp::Compact { keep_tail } => {
            let through = counter.saturating_sub(*keep_tail as u32);
            if through == 0 {
                return;
            }
            let z = Zxid::new(Epoch(1), through);
            if z <= mem.recover().expect("recover").history.base() {
                return;
            }
            mem.compact(Bytes::from_static(b"snapshot"), z).expect("mem compact");
            file.compact(Bytes::from_static(b"snapshot"), z).expect("file compact");
        }
        StoreOp::Reset { payload } => {
            *counter += 10;
            let z = Zxid::new(Epoch(1), *counter);
            mem.reset_to_snapshot(Bytes::copy_from_slice(&[*payload; 8]), z).expect("mem reset");
            file.reset_to_snapshot(Bytes::copy_from_slice(&[*payload; 8]), z).expect("file reset");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// MemStorage and FileStorage recover identical state after any legal
    /// operation sequence, both live and after reopen.
    #[test]
    fn mem_and_file_storage_agree(ops in prop::collection::vec(store_op(), 0..25)) {
        let dir = tempdir();
        let mut mem = MemStorage::new();
        let mut file = FileStorage::open(&dir).expect("open");
        let mut counter = 0u32;
        for op in &ops {
            apply_both(op, &mut mem, &mut file, &mut counter);
        }
        let m = mem.recover().expect("mem recover");
        let f = file.recover().expect("file recover");
        prop_assert_eq!(m.accepted_epoch, f.accepted_epoch);
        prop_assert_eq!(m.current_epoch, f.current_epoch);
        prop_assert_eq!(m.history.base(), f.history.base());
        prop_assert_eq!(m.history.txns(), f.history.txns());

        // Reopen the file store: identical again (everything was written,
        // and recovery reads through the OS cache even without fsync).
        drop(file);
        let reopened = FileStorage::open(&dir).expect("reopen");
        let r = reopened.recover().expect("recover");
        prop_assert_eq!(m.history.txns(), r.history.txns());
        prop_assert_eq!(m.accepted_epoch, r.accepted_epoch);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Chopping arbitrary bytes off the log tail never breaks recovery:
    /// the intact prefix is recovered, in order.
    #[test]
    fn torn_log_tail_recovers_prefix(
        txn_count in 1u32..20,
        chop in 1usize..64,
    ) {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).expect("open");
            for c in 1..=txn_count {
                s.append_txns(&[Txn::new(Zxid::new(Epoch(1), c), vec![c as u8; 20])])
                    .expect("append");
            }
            s.flush().expect("flush");
        }
        // Damage the tail.
        let log_path = dir.join("log");
        let data = std::fs::read(&log_path).expect("read");
        let keep = data.len().saturating_sub(chop);
        std::fs::write(&log_path, &data[..keep]).expect("write");

        let s = FileStorage::open(&dir).expect("open after damage");
        let r = s.recover().expect("recover");
        // The recovered log is a prefix: contiguous from 1.
        let zxids: Vec<u32> = r.history.txns().iter().map(|t| t.zxid.counter()).collect();
        let expect: Vec<u32> = (1..=zxids.len() as u32).collect();
        prop_assert_eq!(zxids, expect);
        prop_assert!(r.history.len() < txn_count as usize, "chop removed at least the tail record");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Fault-injected appends and flushes: an injected I/O error may fail
    /// the operation, but it never corrupts state — both stores fail
    /// identically (same seeded plan), stay in agreement, and once the
    /// faults clear, recovery yields exactly the successfully-appended
    /// prefix, in order.
    #[test]
    fn injected_append_flush_faults_never_corrupt_state(
        seed in any::<u64>(),
        append_permille in 0u32..500,
        flush_permille in 0u32..500,
        rounds in 1u32..40,
    ) {
        use zab_log::{FaultOp, FaultPlan, StorageError};
        let dir = tempdir();
        let mut mem = MemStorage::new();
        let mut file = FileStorage::open(&dir).expect("open");
        let plan = |s: u64| {
            FaultPlan::seeded(s)
                .with_prob(FaultOp::Append, f64::from(append_permille) / 1000.0)
                .with_prob(FaultOp::Flush, f64::from(flush_permille) / 1000.0)
        };
        mem.set_faults(Some(plan(seed)));
        file.set_faults(Some(plan(seed)));

        let mut highest_ok = 0u32;
        let mut next = 1u32;
        for _ in 0..rounds {
            let txn = Txn::new(Zxid::new(Epoch(1), next), vec![next as u8; 8]);
            let m = mem.append_txns(std::slice::from_ref(&txn));
            let f = file.append_txns(std::slice::from_ref(&txn));
            prop_assert_eq!(m.is_ok(), f.is_ok(), "stores diverged on an injected append fault");
            match m {
                Ok(()) => {
                    highest_ok = next;
                    next += 1;
                }
                // Injected faults are I/O errors, never silent corruption.
                Err(e) => prop_assert!(matches!(e, StorageError::Io(_)), "unexpected: {}", e),
            }
            let (mf, ff) = (mem.flush(), file.flush());
            prop_assert_eq!(mf.is_ok(), ff.is_ok(), "stores diverged on an injected flush fault");
        }

        // Clear the faults: everything that was accepted must be there.
        mem.set_faults(None);
        file.set_faults(None);
        mem.flush().expect("mem flush after clearing faults");
        file.flush().expect("file flush after clearing faults");
        for r in [mem.recover().expect("mem recover"), file.recover().expect("file recover")] {
            let zxids: Vec<u32> = r.history.txns().iter().map(|t| t.zxid.counter()).collect();
            let expect: Vec<u32> = (1..=highest_ok).collect();
            prop_assert_eq!(zxids, expect);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash simulation: anything after the last flush may vanish, but
    /// recovered state is always a legal prefix of what was applied.
    #[test]
    fn mem_crash_yields_flushed_prefix(
        flush_at in 0u32..20,
        extra in 0u32..10,
    ) {
        let mut s = MemStorage::new();
        for c in 1..=flush_at {
            s.append_txns(&[Txn::new(Zxid::new(Epoch(1), c), vec![1])]).expect("append");
        }
        s.flush().expect("flush");
        for c in flush_at + 1..=flush_at + extra {
            s.append_txns(&[Txn::new(Zxid::new(Epoch(1), c), vec![1])]).expect("append");
        }
        s.crash();
        let r = s.recover().expect("recover");
        prop_assert_eq!(r.history.len() as u32, flush_at);
    }
}
