//! Storage-layer metrics (DESIGN.md §9).
//!
//! [`LogMetrics`] bundles the instruments both storage implementations
//! record into: append/flush latency histograms (wall microseconds by
//! default — a [`zab_metrics::ManualClock`] can be injected for
//! deterministic tests), fsync and append counters, recovery truncations,
//! and injected-fault counts from the [`crate::fault`] plan.
//!
//! Storage objects default to a standalone bundle; drivers surface the
//! numbers by building one with [`LogMetrics::registered`] and injecting
//! it via [`crate::Storage::set_metrics`].

use std::fmt;
use std::sync::Arc;
use zab_metrics::{Clock, Counter, Histogram, Registry, WallClock};
use zab_trace::Tracer;

/// Instrument bundle recorded by [`crate::MemStorage`] and
/// [`crate::FileStorage`].
#[derive(Clone)]
pub struct LogMetrics {
    /// `append_txns` calls that succeeded.
    pub appends: Arc<Counter>,
    /// Latency of successful appends, in clock microseconds.
    pub append_latency_us: Arc<Histogram>,
    /// Durability barriers performed (`sync_data` for the file store,
    /// journal migration for the memory store).
    pub fsyncs: Arc<Counter>,
    /// Latency of successful flushes, in clock microseconds.
    pub flush_latency_us: Arc<Histogram>,
    /// Torn log tails discarded during recovery.
    pub recovery_truncations: Arc<Counter>,
    /// Faults fired by an installed [`crate::FaultPlan`].
    pub injected_faults: Arc<Counter>,
    /// Time source for the latency histograms.
    pub clock: Arc<dyn Clock>,
    /// Flight-recorder handle: append/fsync spans attributed to the zxid
    /// range they cover (disabled by default).
    pub tracer: Tracer,
}

impl fmt::Debug for LogMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogMetrics")
            .field("appends", &self.appends.get())
            .field("fsyncs", &self.fsyncs.get())
            .field("recovery_truncations", &self.recovery_truncations.get())
            .field("injected_faults", &self.injected_faults.get())
            .finish_non_exhaustive()
    }
}

impl LogMetrics {
    /// Fresh instruments not attached to any registry, timed by a wall
    /// clock. The storage implementations default to this.
    pub fn standalone() -> LogMetrics {
        LogMetrics {
            appends: Arc::new(Counter::default()),
            append_latency_us: Arc::new(Histogram::default()),
            fsyncs: Arc::new(Counter::default()),
            flush_latency_us: Arc::new(Histogram::default()),
            recovery_truncations: Arc::new(Counter::default()),
            injected_faults: Arc::new(Counter::default()),
            clock: Arc::new(WallClock::new()),
            tracer: Tracer::disabled(),
        }
    }

    /// Instruments registered under the `log.` namespace of `reg`.
    pub fn registered(reg: &Registry) -> LogMetrics {
        LogMetrics {
            appends: reg.counter("log.appends"),
            append_latency_us: reg.histogram("log.append_latency_us"),
            fsyncs: reg.counter("log.fsyncs"),
            flush_latency_us: reg.histogram("log.flush_latency_us"),
            recovery_truncations: reg.counter("log.recovery_truncations"),
            injected_faults: reg.counter("log.injected_faults"),
            clock: Arc::new(WallClock::new()),
            tracer: Tracer::disabled(),
        }
    }

    /// Replaces the latency clock (deterministic tests inject a
    /// [`zab_metrics::ManualClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> LogMetrics {
        self.clock = clock;
        self
    }

    /// Attaches a flight-recorder handle; storage then records
    /// append/fsync spans attributed to the zxid range of each batch.
    /// The tracer should share the bundle's clock so span timestamps and
    /// lifecycle events live on one timeline.
    pub fn with_tracer(mut self, tracer: Tracer) -> LogMetrics {
        self.tracer = tracer;
        self
    }
}

impl Default for LogMetrics {
    fn default() -> LogMetrics {
        LogMetrics::standalone()
    }
}
