//! File-backed storage.
//!
//! Layout inside the storage directory:
//!
//! - `log` — append-only transaction records (see [`crate::record`]);
//!   truncation uses `set_len` on the intact prefix, exactly like
//!   ZooKeeper's `Zxid`-indexed log truncation.
//! - `epochs` — 12-byte checksummed record holding `acceptedEpoch` and
//!   `currentEpoch`; replaced atomically (write temp file, fsync, rename).
//! - `snapshot` — checksummed application snapshot; replaced atomically.
//!
//! Durability: writes are buffered in userspace and pushed down with
//! `sync_data` on [`Storage::flush`]. Epoch and snapshot replacements are
//! synchronous (they are rare and ordering-critical); log appends are the
//! hot path and honor the flush boundary so drivers can group-commit.

use crate::fault::{check_fault, FaultOp, FaultPlan};
use crate::metrics::LogMetrics;
use crate::record::{
    decode_epochs, decode_snapshot, encode_epochs, encode_log_record, encode_snapshot,
    log_record_len, log_record_prefix, scan_log, RECORD_PREFIX_LEN,
};
use crate::{Recovered, Storage, StorageError};
use bytes::Bytes;
use std::fs::{self, File, OpenOptions};
use std::io::{self, IoSlice, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use zab_core::{Epoch, History, Txn, Zxid};

/// File-backed [`Storage`] rooted at a directory.
///
/// # Example
///
/// ```no_run
/// use zab_log::{FileStorage, Storage};
/// use zab_core::{Epoch, Txn, Zxid};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = FileStorage::open("/var/lib/zab/node1")?;
/// store.append_txns(&[Txn::new(Zxid::new(Epoch(1), 1), &b"delta"[..])])?;
/// store.flush()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    log: File,
    /// In-memory index: (zxid, end offset in file) per record, ascending.
    index: Vec<(Zxid, u64)>,
    accepted_epoch: Epoch,
    current_epoch: Epoch,
    snapshot: Option<(Bytes, Zxid)>,
    /// True when the log file has appends not yet `sync_data`'d.
    dirty: bool,
    /// Injected-fault schedule, if any (see [`crate::fault`]).
    faults: Option<FaultPlan>,
    /// Instrument bundle (standalone by default; see
    /// [`Storage::set_metrics`]).
    metrics: LogMetrics,
    /// Torn tails discarded during [`FileStorage::open`], latched so the
    /// count reaches whatever bundle is injected afterwards.
    recovery_truncations: u64,
    /// Zxid range appended since the last flush, for fsync span
    /// attribution in the flight recorder.
    pending_flush_range: Option<(Zxid, Zxid)>,
}

impl FileStorage {
    /// Opens (creating if needed) storage in `dir`, recovering any existing
    /// state. A torn log tail is truncated away; mid-file corruption is a
    /// hard error.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StorageError::Corrupt`] for unrecoverable
    /// corruption (bad epoch record, bad snapshot, log disorder).
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStorage, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let (accepted_epoch, current_epoch) = match fs::read(dir.join("epochs")) {
            Ok(data) => decode_epochs(&data)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Epoch::ZERO, Epoch::ZERO),
            Err(e) => return Err(e.into()),
        };

        let snapshot = match fs::read(dir.join("snapshot")) {
            Ok(data) => {
                let (zxid, payload) = decode_snapshot(data)?;
                Some((payload, zxid))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };

        let log_path = dir.join("log");
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        let mut data = Vec::new();
        log.read_to_end(&mut data)?;
        let scan = scan_log(data);
        if scan.resume_after_damage.is_some() {
            // Intact records continue past the damage: bit-rot, not a torn
            // write. Truncating here would drop committed transactions, so
            // recovery refuses and leaves the file for forensics.
            return Err(StorageError::MidFileCorrupt { offset: scan.valid_len });
        }
        let recovery_truncations = u64::from(scan.torn_tail);
        if scan.torn_tail {
            // Discard the torn tail, as ZooKeeper does on recovery.
            log.set_len(scan.valid_len)?;
            log.sync_data()?;
        }
        log.seek(SeekFrom::End(0))?;

        let base = snapshot.as_ref().map_or(Zxid::ZERO, |&(_, z)| z);
        let mut index = Vec::with_capacity(scan.txns.len());
        let mut offset = 0u64;
        let mut prev = Zxid::ZERO;
        for txn in &scan.txns {
            if txn.zxid <= prev {
                return Err(StorageError::Corrupt(format!(
                    "log out of order: {} after {}",
                    txn.zxid, prev
                )));
            }
            prev = txn.zxid;
            offset += log_record_len(txn);
            index.push((txn.zxid, offset));
        }
        // Entries at or below the snapshot base are compacted leftovers;
        // they are ignored by recover() but harmless in the file.
        let _ = base;

        Ok(FileStorage {
            dir,
            log,
            index,
            accepted_epoch,
            current_epoch,
            snapshot,
            dirty: false,
            faults: None,
            metrics: LogMetrics::standalone(),
            recovery_truncations,
            pending_flush_range: None,
        })
    }

    /// Installs (or clears) an injected-fault schedule. Subsequent storage
    /// operations consult the plan and fail with the injected error when it
    /// fires, before mutating anything.
    pub fn set_faults(&mut self, faults: Option<FaultPlan>) {
        self.faults = faults;
    }

    /// The installed fault plan, if any.
    pub fn faults_mut(&mut self) -> Option<&mut FaultPlan> {
        self.faults.as_mut()
    }

    /// The storage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of records currently in the log file.
    pub fn log_records(&self) -> usize {
        self.index.len()
    }

    /// Fault check that accounts fired faults in the metrics bundle.
    fn check(&mut self, op: FaultOp) -> Result<(), StorageError> {
        check_fault(&mut self.faults, op).inspect_err(|_| self.metrics.injected_faults.inc())
    }

    fn write_epochs(&mut self) -> Result<(), StorageError> {
        let data = encode_epochs(self.accepted_epoch, self.current_epoch);
        atomic_replace(&self.dir, "epochs", &data)
    }

    fn write_snapshot_file(&mut self) -> Result<(), StorageError> {
        if let Some((payload, zxid)) = &self.snapshot {
            let data = encode_snapshot(*zxid, payload);
            atomic_replace(&self.dir, "snapshot", &data)?;
        }
        Ok(())
    }

    fn last_zxid(&self) -> Zxid {
        self.index
            .last()
            .map(|&(z, _)| z)
            .unwrap_or_else(|| self.snapshot.as_ref().map_or(Zxid::ZERO, |&(_, z)| z))
    }

    /// Rewrites the log with only the given transactions (used by compact).
    fn rewrite_log(&mut self, txns: &[Txn]) -> Result<(), StorageError> {
        let tmp = self.dir.join("log.tmp");
        let mut f = File::create(&tmp)?;
        let mut index = Vec::with_capacity(txns.len());
        let mut offset = 0u64;
        for txn in txns {
            let rec = encode_log_record(txn);
            f.write_all(&rec)?;
            offset += rec.len() as u64;
            index.push((txn.zxid, offset));
        }
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, self.dir.join("log"))?;
        sync_dir(&self.dir)?;
        self.log = OpenOptions::new().read(true).append(true).open(self.dir.join("log"))?;
        self.index = index;
        self.dirty = false;
        Ok(())
    }
}

/// Writes every buffer in `bufs` fully, preferring a single vectored
/// syscall. Partial writes resume from the exact buffer/offset reached.
fn write_all_vectored(f: &mut File, bufs: &[&[u8]]) -> io::Result<()> {
    let mut idx = 0; // first buffer not fully written
    let mut off = 0; // bytes of bufs[idx] already written
    while idx < bufs.len() {
        if off == bufs[idx].len() {
            // Skip empty buffers (and exactly-finished ones).
            idx += 1;
            off = 0;
            continue;
        }
        let mut iov = Vec::with_capacity(bufs.len() - idx);
        iov.push(IoSlice::new(&bufs[idx][off..]));
        iov.extend(bufs[idx + 1..].iter().map(|b| IoSlice::new(b)));
        let mut n = match f.write_vectored(&iov) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while idx < bufs.len() {
            let rem = bufs[idx].len() - off;
            if n < rem {
                off += n;
                break;
            }
            n -= rem;
            idx += 1;
            off = 0;
        }
    }
    Ok(())
}

/// Atomically replaces `name` in `dir` with `data` (tmp + fsync + rename).
fn atomic_replace(dir: &Path, name: &str, data: &[u8]) -> Result<(), StorageError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut f = File::create(&tmp)?;
    f.write_all(data)?;
    f.sync_data()?;
    drop(f);
    fs::rename(&tmp, dir.join(name))?;
    sync_dir(dir)?;
    Ok(())
}

/// Fsyncs the directory so renames are durable.
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)?.sync_data()?;
    Ok(())
}

impl Storage for FileStorage {
    fn set_accepted_epoch(&mut self, epoch: Epoch) -> Result<(), StorageError> {
        self.check(FaultOp::EpochWrite)?;
        self.accepted_epoch = epoch;
        self.write_epochs()
    }

    fn set_current_epoch(&mut self, epoch: Epoch) -> Result<(), StorageError> {
        self.check(FaultOp::EpochWrite)?;
        self.current_epoch = epoch;
        self.write_epochs()
    }

    fn append_txns(&mut self, txns: &[Txn]) -> Result<(), StorageError> {
        self.check(FaultOp::Append)?;
        if txns.is_empty() {
            return Ok(());
        }
        let mut last = self.last_zxid();
        for txn in txns {
            if txn.zxid <= last {
                return Err(StorageError::Corrupt(format!(
                    "append out of order: {} after {}",
                    txn.zxid, last
                )));
            }
            last = txn.zxid;
        }
        // Group commit without concatenation: the whole batch goes down as
        // one vectored write chaining [prefix, payload] per record, so the
        // refcounted payloads are never copied into a staging buffer.
        let start_us = self.metrics.clock.now_micros();
        let prefixes: Vec<[u8; RECORD_PREFIX_LEN]> = txns.iter().map(log_record_prefix).collect();
        let mut bufs: Vec<&[u8]> = Vec::with_capacity(txns.len() * 2);
        for (prefix, txn) in prefixes.iter().zip(txns) {
            bufs.push(prefix);
            bufs.push(&txn.data);
        }
        write_all_vectored(&mut self.log, &bufs)?;
        let mut end = self.index.last().map_or(0, |&(_, o)| o);
        for txn in txns {
            end += log_record_len(txn);
            self.index.push((txn.zxid, end));
        }
        self.dirty = true;
        self.metrics.appends.inc();
        let end_us = self.metrics.clock.now_micros();
        self.metrics.append_latency_us.record(end_us.saturating_sub(start_us));
        if let (Some(first), Some(last_txn)) = (txns.first(), txns.last()) {
            self.metrics.tracer.span(
                zab_trace::Stage::LogAppend,
                first.zxid.0,
                last_txn.zxid.0,
                start_us,
                end_us,
            );
            self.pending_flush_range = Some(match self.pending_flush_range {
                None => (first.zxid, last_txn.zxid),
                Some((lo, hi)) => (lo.min(first.zxid), hi.max(last_txn.zxid)),
            });
        }
        Ok(())
    }

    fn truncate(&mut self, to: Zxid) -> Result<(), StorageError> {
        self.check(FaultOp::Truncate)?;
        let keep = self.index.partition_point(|&(z, _)| z <= to);
        let new_len = if keep == 0 { 0 } else { self.index[keep - 1].1 };
        self.index.truncate(keep);
        self.log.set_len(new_len)?;
        self.log.seek(SeekFrom::End(0))?;
        self.dirty = true;
        Ok(())
    }

    fn reset_to_snapshot(&mut self, snapshot: Bytes, zxid: Zxid) -> Result<(), StorageError> {
        self.check(FaultOp::SnapshotReplace)?;
        self.snapshot = Some((snapshot, zxid));
        self.write_snapshot_file()?;
        self.rewrite_log(&[])
    }

    fn compact(&mut self, snapshot: Bytes, zxid: Zxid) -> Result<(), StorageError> {
        self.check(FaultOp::Compact)?;
        // Collect the suffix beyond the compaction point before rewriting.
        let recovered = self.recover()?;
        let suffix: Vec<Txn> = recovered.history.txns_after(zxid).to_vec();
        self.snapshot = Some((snapshot, zxid));
        self.write_snapshot_file()?;
        self.rewrite_log(&suffix)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.check(FaultOp::Flush)?;
        if self.dirty {
            // Span: the fsync is the hot durability barrier group commit
            // amortizes; its latency distribution is the paper's disk cost.
            let start_us = self.metrics.clock.now_micros();
            let span = zab_metrics::Span::start(
                std::sync::Arc::clone(&self.metrics.flush_latency_us),
                std::sync::Arc::clone(&self.metrics.clock),
            );
            self.log.sync_data()?;
            self.dirty = false;
            self.metrics.fsyncs.inc();
            span.finish();
            if let Some((lo, hi)) = self.pending_flush_range.take() {
                self.metrics.tracer.span(
                    zab_trace::Stage::LogFsync,
                    lo.0,
                    hi.0,
                    start_us,
                    self.metrics.clock.now_micros(),
                );
            }
        }
        Ok(())
    }

    fn recover(&self) -> Result<Recovered, StorageError> {
        let base = self.snapshot.as_ref().map_or(Zxid::ZERO, |&(_, z)| z);
        // Re-scan from the in-memory index's view: read the file content.
        // The scan hands back payloads as views of this one read buffer.
        let mut data = Vec::new();
        let mut f = File::open(self.dir.join("log"))?;
        f.read_to_end(&mut data)?;
        let scan = scan_log(data);
        if scan.resume_after_damage.is_some() {
            return Err(StorageError::MidFileCorrupt { offset: scan.valid_len });
        }
        let txns: Vec<Txn> = scan.txns.into_iter().filter(|t| t.zxid > base).collect();
        let history = History::from_recovered(base, txns, base);
        Ok(Recovered {
            accepted_epoch: self.accepted_epoch,
            current_epoch: self.current_epoch,
            history,
            snapshot: self.snapshot.as_ref().map(|(b, _)| b.clone()),
        })
    }

    fn set_metrics(&mut self, metrics: LogMetrics) {
        // Torn-tail truncations happened in open(), before any bundle
        // could be injected; surface them now.
        metrics.recovery_truncations.add(self.recovery_truncations);
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tempdir() -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("zab-log-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn txn(e: u32, c: u32) -> Txn {
        Txn::new(Zxid::new(Epoch(e), c), vec![e as u8, c as u8])
    }

    #[test]
    fn fresh_open_is_empty() {
        let dir = tempdir();
        let s = FileStorage::open(&dir).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.accepted_epoch, Epoch::ZERO);
        assert!(r.history.is_empty());
        assert!(r.snapshot.is_none());
    }

    #[test]
    fn reopen_recovers_everything() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.set_accepted_epoch(Epoch(2)).unwrap();
            s.set_current_epoch(Epoch(2)).unwrap();
            s.append_txns(&[txn(1, 1), txn(1, 2), txn(2, 1)]).unwrap();
            s.flush().unwrap();
        }
        let s = FileStorage::open(&dir).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.accepted_epoch, Epoch(2));
        assert_eq!(r.current_epoch, Epoch(2));
        assert_eq!(r.history.len(), 3);
        assert_eq!(r.history.last_zxid(), Zxid::new(Epoch(2), 1));
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_txns(&[txn(1, 1), txn(1, 2)]).unwrap();
            s.flush().unwrap();
        }
        // Simulate a torn write: append half a record.
        let mut partial = encode_log_record(&txn(1, 3));
        partial.truncate(partial.len() / 2);
        let mut f = OpenOptions::new().append(true).open(dir.join("log")).unwrap();
        f.write_all(&partial).unwrap();
        drop(f);

        let s = FileStorage::open(&dir).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.history.len(), 2);
        assert_eq!(r.history.last_zxid(), Zxid::new(Epoch(1), 2));
    }

    #[test]
    fn torn_tail_truncation_reaches_injected_metrics() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_txns(&[txn(1, 1)]).unwrap();
            s.flush().unwrap();
        }
        let mut partial = encode_log_record(&txn(1, 2));
        partial.truncate(partial.len() / 2);
        let mut f = OpenOptions::new().append(true).open(dir.join("log")).unwrap();
        f.write_all(&partial).unwrap();
        drop(f);

        let reg = zab_metrics::Registry::new();
        let mut s = FileStorage::open(&dir).unwrap();
        // The truncation happened in open(); injection latches it.
        s.set_metrics(LogMetrics::registered(&reg));
        assert_eq!(reg.snapshot().counter("log.recovery_truncations"), 1);
        s.append_txns(&[txn(1, 2)]).unwrap();
        s.flush().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("log.appends"), 1);
        assert_eq!(snap.counter("log.fsyncs"), 1);
        assert_eq!(snap.histogram("log.flush_latency_us").map(|h| h.count), Some(1));
    }

    #[test]
    fn torn_write_recovery_payloads_byte_identical() {
        // Payloads spanning the interesting sizes: empty, sub-block, and
        // larger than the 64 KiB read granularity.
        let payloads: Vec<Vec<u8>> =
            vec![Vec::new(), vec![0x5A; 1024], (0..64 * 1024).map(|i| (i % 251) as u8).collect()];
        let txns: Vec<Txn> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| Txn::new(Zxid::new(Epoch(1), i as u32 + 1), p.clone()))
            .collect();

        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_txns(&txns).unwrap();
            s.flush().unwrap();
        }
        // Tear a fourth record mid-payload.
        let mut partial = encode_log_record(&Txn::new(Zxid::new(Epoch(1), 4), vec![0xEE; 4096]));
        partial.truncate(partial.len() - 1000);
        let mut f = OpenOptions::new().append(true).open(dir.join("log")).unwrap();
        f.write_all(&partial).unwrap();
        drop(f);

        let s = FileStorage::open(&dir).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.history.len(), txns.len());
        for (recovered, original) in r.history.txns().iter().zip(&txns) {
            assert_eq!(recovered.zxid, original.zxid);
            assert_eq!(recovered.data, original.data, "payload differs at {}", original.zxid);
        }
    }

    #[test]
    fn truncate_then_reopen() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_txns(&[txn(1, 1), txn(1, 2), txn(1, 3)]).unwrap();
            s.truncate(Zxid::new(Epoch(1), 1)).unwrap();
            s.append_txns(&[txn(2, 1)]).unwrap();
            s.flush().unwrap();
        }
        let s = FileStorage::open(&dir).unwrap();
        let r = s.recover().unwrap();
        let zxids: Vec<Zxid> = r.history.txns().iter().map(|t| t.zxid).collect();
        assert_eq!(zxids, vec![Zxid::new(Epoch(1), 1), Zxid::new(Epoch(2), 1)]);
    }

    #[test]
    fn snapshot_reset_then_reopen() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_txns(&[txn(1, 1)]).unwrap();
            s.flush().unwrap();
            s.reset_to_snapshot(Bytes::from_static(b"full state"), Zxid::new(Epoch(1), 40))
                .unwrap();
            s.append_txns(&[txn(1, 41)]).unwrap();
            s.flush().unwrap();
        }
        let s = FileStorage::open(&dir).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.history.base(), Zxid::new(Epoch(1), 40));
        assert_eq!(r.history.len(), 1);
        assert_eq!(r.snapshot.unwrap().as_ref(), b"full state");
    }

    #[test]
    fn compact_retains_suffix_across_reopen() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_txns(&[txn(1, 1), txn(1, 2), txn(1, 3)]).unwrap();
            s.flush().unwrap();
            s.compact(Bytes::from_static(b"state@2"), Zxid::new(Epoch(1), 2)).unwrap();
        }
        let s = FileStorage::open(&dir).unwrap();
        assert_eq!(s.log_records(), 1);
        let r = s.recover().unwrap();
        assert_eq!(r.history.base(), Zxid::new(Epoch(1), 2));
        assert_eq!(r.history.last_zxid(), Zxid::new(Epoch(1), 3));
    }

    #[test]
    fn out_of_order_append_rejected() {
        let dir = tempdir();
        let mut s = FileStorage::open(&dir).unwrap();
        s.append_txns(&[txn(1, 5)]).unwrap();
        assert!(matches!(s.append_txns(&[txn(1, 4)]), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_txns(&[txn(1, 1), txn(1, 2), txn(1, 3)]).unwrap();
            s.flush().unwrap();
        }
        // Rot one payload byte of the *middle* record: records resume
        // after the damage, so recovery must refuse, not truncate.
        let first_len = encode_log_record(&txn(1, 1)).len() as u64;
        crate::fault::flip_byte_in_file(dir.join("log"), first_len + RECORD_PREFIX_LEN as u64)
            .unwrap();
        match FileStorage::open(&dir) {
            Err(StorageError::MidFileCorrupt { offset }) => assert_eq!(offset, first_len),
            other => panic!("expected MidFileCorrupt, got {other:?}"),
        }
        // The file was left untouched for forensics.
        let len = fs::metadata(dir.join("log")).unwrap().len();
        assert_eq!(len, 3 * first_len);
    }

    #[test]
    fn rot_in_final_record_truncates_like_a_torn_tail() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_txns(&[txn(1, 1), txn(1, 2)]).unwrap();
            s.flush().unwrap();
        }
        let record_len = encode_log_record(&txn(1, 1)).len() as u64;
        crate::fault::flip_byte_in_file(dir.join("log"), record_len + RECORD_PREFIX_LEN as u64)
            .unwrap();
        // Nothing intact follows the damage: indistinguishable from a torn
        // write, so the safe recovery is to drop it.
        let s = FileStorage::open(&dir).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.history.len(), 1);
        assert_eq!(r.history.last_zxid(), Zxid::new(Epoch(1), 1));
    }

    #[test]
    fn injected_faults_fire_on_file_storage() {
        let dir = tempdir();
        let mut s = FileStorage::open(&dir).unwrap();
        let mut plan = crate::fault::FaultPlan::new();
        plan.arm(FaultOp::Append);
        plan.arm(FaultOp::Flush);
        s.set_faults(Some(plan));
        assert!(matches!(s.append_txns(&[txn(1, 1)]), Err(StorageError::Io(_))));
        // Injection happens before any mutation: the log is still empty.
        assert_eq!(s.log_records(), 0);
        assert!(matches!(s.flush(), Err(StorageError::Io(_))));
        // One-shot arms consumed: retries succeed.
        s.append_txns(&[txn(1, 1)]).unwrap();
        s.flush().unwrap();
        assert!(!s.faults_mut().unwrap().armed());
    }

    #[test]
    fn corrupt_epoch_file_is_detected() {
        let dir = tempdir();
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.set_accepted_epoch(Epoch(3)).unwrap();
        }
        let mut data = fs::read(dir.join("epochs")).unwrap();
        data[0] ^= 0xFF;
        fs::write(dir.join("epochs"), &data).unwrap();
        assert!(matches!(FileStorage::open(&dir), Err(StorageError::Corrupt(_))));
    }
}
