//! Deterministic storage fault injection.
//!
//! Real disks fail in ways a torn tail does not cover: `fsync` returns
//! `EIO`, an append hits a full or failing device, a snapshot replace is
//! interrupted, and at-rest bits rot under an intact file length. This
//! module gives every [`crate::Storage`] implementation a seeded,
//! replayable way to produce those failures on demand:
//!
//! - [`FaultPlan`] decides, per storage operation, whether to fail it with
//!   an injected [`std::io::Error`]. Decisions come from one-shot arms
//!   (exactly the next matching operation fails) and/or seeded per-op
//!   probabilities driven by a splitmix64 stream, so a `(seed, plan)` pair
//!   replays the same fault sequence forever.
//! - [`flip_byte_in_file`] implements bit-rot for the file-backed store:
//!   flip one byte in place, leaving length and mtime-visible structure
//!   untouched, exactly what a latent media error looks like to recovery.
//!
//! A fired fault leaves the store *consistent*: injection happens before
//! the operation mutates anything, so a failed append never half-applies
//! and a failed flush simply leaves the dirty window open (its writes are
//! then lost on a simulated crash, as with a real failed `fsync`).

use crate::StorageError;
use std::io;
use std::path::Path;

/// The storage operations a [`FaultPlan`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A transaction append ([`crate::Storage::append_txns`]).
    Append,
    /// A durability barrier ([`crate::Storage::flush`]).
    Flush,
    /// An epoch record replacement (`set_accepted_epoch` / `set_current_epoch`).
    EpochWrite,
    /// A log truncation ([`crate::Storage::truncate`]).
    Truncate,
    /// A snapshot replacement ([`crate::Storage::reset_to_snapshot`]).
    SnapshotReplace,
    /// A log compaction ([`crate::Storage::compact`]).
    Compact,
}

impl FaultOp {
    /// All operations, for sweeps that arm every kind.
    pub const ALL: [FaultOp; 6] = [
        FaultOp::Append,
        FaultOp::Flush,
        FaultOp::EpochWrite,
        FaultOp::Truncate,
        FaultOp::SnapshotReplace,
        FaultOp::Compact,
    ];

    fn name(self) -> &'static str {
        match self {
            FaultOp::Append => "append",
            FaultOp::Flush => "flush",
            FaultOp::EpochWrite => "epoch-write",
            FaultOp::Truncate => "truncate",
            FaultOp::SnapshotReplace => "snapshot-replace",
            FaultOp::Compact => "compact",
        }
    }
}

/// The [`StorageError`] a fired fault produces: an `io::Error` of kind
/// `Other`, tagged so tests and logs can tell injected faults from real
/// ones.
pub fn injected_error(op: FaultOp) -> StorageError {
    StorageError::Io(io::Error::other(format!("injected fault: {} failed", op.name())))
}

/// splitmix64: tiny, dependency-free, and plenty for fault scheduling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic schedule of storage faults.
///
/// # Example
///
/// ```
/// use zab_log::fault::{FaultOp, FaultPlan};
/// use zab_log::{MemStorage, Storage, StorageError};
/// use zab_core::{Epoch, Txn, Zxid};
///
/// let mut s = MemStorage::new();
/// let mut plan = FaultPlan::new();
/// plan.arm(FaultOp::Append);
/// s.set_faults(Some(plan));
/// let txn = Txn::new(Zxid::new(Epoch(1), 1), &b"x"[..]);
/// assert!(matches!(
///     s.append_txns(std::slice::from_ref(&txn)),
///     Err(StorageError::Io(_))
/// ));
/// // One-shot: the retry goes through.
/// s.append_txns(&[txn]).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// One-shot arms: the next operation matching an entry fails, consuming
    /// the entry.
    one_shot: Vec<FaultOp>,
    /// Per-operation failure probabilities, in [0, 1].
    probs: Vec<(FaultOp, f64)>,
    /// splitmix64 state for probability draws.
    rng_state: u64,
    /// Faults fired so far.
    fired: u64,
}

impl FaultPlan {
    /// An empty plan (never fails anything until armed).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan whose probabilistic draws replay deterministically from
    /// `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { rng_state: seed ^ 0xD6E8_FEB8_6659_FD93, ..FaultPlan::default() }
    }

    /// Arms a one-shot fault: the next operation of kind `op` fails.
    pub fn arm(&mut self, op: FaultOp) {
        self.one_shot.push(op);
    }

    /// Sets (replacing any previous value) the probability that each
    /// operation of kind `op` fails.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_prob(mut self, op: FaultOp, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "fault probability out of range: {p}");
        self.probs.retain(|&(o, _)| o != op);
        self.probs.push((op, p));
        self
    }

    /// Number of faults fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// True if any one-shot arm is still pending.
    pub fn armed(&self) -> bool {
        !self.one_shot.is_empty()
    }

    /// Decides whether the operation `op` should fail now. One-shot arms
    /// take precedence (and are consumed); otherwise the seeded stream
    /// draws against the configured probability.
    pub fn should_fail(&mut self, op: FaultOp) -> bool {
        if let Some(i) = self.one_shot.iter().position(|&o| o == op) {
            self.one_shot.remove(i);
            self.fired += 1;
            return true;
        }
        let p = self.probs.iter().find_map(|&(o, p)| (o == op).then_some(p)).unwrap_or(0.0);
        if p <= 0.0 {
            return false;
        }
        // 53 mantissa bits → uniform in [0, 1).
        let unit = (splitmix64(&mut self.rng_state) >> 11) as f64 / (1u64 << 53) as f64;
        if unit < p {
            self.fired += 1;
            true
        } else {
            false
        }
    }

    /// [`FaultPlan::should_fail`] shaped as a `Result`, for use at the top
    /// of storage methods.
    ///
    /// # Errors
    ///
    /// Returns the injected [`StorageError::Io`] when the fault fires.
    pub fn check(&mut self, op: FaultOp) -> Result<(), StorageError> {
        if self.should_fail(op) {
            Err(injected_error(op))
        } else {
            Ok(())
        }
    }
}

/// Consults an optional plan: the hook the storage implementations call.
///
/// # Errors
///
/// Returns the injected error when the plan fires for `op`.
pub(crate) fn check_fault(plan: &mut Option<FaultPlan>, op: FaultOp) -> Result<(), StorageError> {
    match plan {
        Some(p) => p.check(op),
        None => Ok(()),
    }
}

/// Bit-rot: flips one bit of the byte at `offset` in `path`, in place.
/// Returns the new byte value.
///
/// # Errors
///
/// I/O failures, or `InvalidInput` if `offset` is beyond the file end.
pub fn flip_byte_in_file(path: impl AsRef<Path>, offset: u64) -> io::Result<u8> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if offset >= len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("offset {offset} beyond file length {len}"),
        ));
    }
    f.seek(SeekFrom::Start(offset))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= 0x40;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)?;
    f.sync_data()?;
    Ok(b[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_exactly_once() {
        let mut plan = FaultPlan::new();
        plan.arm(FaultOp::Flush);
        assert!(!plan.should_fail(FaultOp::Append));
        assert!(plan.should_fail(FaultOp::Flush));
        assert!(!plan.should_fail(FaultOp::Flush));
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn seeded_draws_replay() {
        let draws = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(seed).with_prob(FaultOp::Append, 0.3);
            (0..64).map(|_| plan.should_fail(FaultOp::Append)).collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn zero_probability_never_fires_and_draws_nothing() {
        let mut plan = FaultPlan::seeded(1);
        let before = plan.rng_state;
        for _ in 0..100 {
            assert!(!plan.should_fail(FaultOp::Append));
        }
        assert_eq!(plan.rng_state, before, "p=0 must not consume the stream");
    }

    #[test]
    fn probability_one_always_fires() {
        let mut plan = FaultPlan::seeded(1).with_prob(FaultOp::Flush, 1.0);
        for _ in 0..16 {
            assert!(plan.should_fail(FaultOp::Flush));
        }
        assert_eq!(plan.fired(), 16);
    }

    #[test]
    fn injected_error_is_io() {
        assert!(matches!(injected_error(FaultOp::Append), StorageError::Io(_)));
    }
}
