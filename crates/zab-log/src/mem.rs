//! In-memory storage with explicit durability boundaries.
//!
//! [`MemStorage`] separates *applied* state from *durable* state: writes go
//! to the applied copy and migrate to the durable copy only on
//! [`Storage::flush`]. [`MemStorage::crash`] discards everything applied
//! since the last flush — exactly what a power failure does to a page
//! cache — which lets the deterministic simulator exercise real
//! crash-recovery schedules without a filesystem.
//!
//! Durability is tracked with a **journal**: mutations are applied to the
//! live image and recorded; a flush replays only the journal onto the
//! durable image (O(delta), not O(state)), so simulations with large logs
//! and frequent group commits stay linear. Only a crash pays an O(state)
//! copy, and crashes are rare events in any schedule.

use crate::fault::{check_fault, FaultOp, FaultPlan};
use crate::metrics::LogMetrics;
use crate::{Recovered, Storage, StorageError};
use bytes::Bytes;
use zab_core::{Epoch, History, Txn, Zxid};

/// One copy of the stored state.
#[derive(Debug, Clone, Default)]
struct Image {
    accepted_epoch: Epoch,
    current_epoch: Epoch,
    /// Snapshot payload and the zxid it covers.
    snapshot: Option<(Bytes, Zxid)>,
    /// Log suffix beyond the snapshot, ascending by zxid.
    log: Vec<Txn>,
}

impl Image {
    fn base(&self) -> Zxid {
        self.snapshot.as_ref().map_or(Zxid::ZERO, |&(_, z)| z)
    }

    fn last_zxid(&self) -> Zxid {
        self.log.last().map_or(self.base(), |t| t.zxid)
    }

    fn apply(&mut self, op: &JournalOp) {
        match op {
            JournalOp::Append(txns) => self.log.extend(txns.iter().cloned()),
            JournalOp::Truncate(to) => self.log.retain(|t| t.zxid <= *to),
            JournalOp::SetAccepted(e) => self.accepted_epoch = *e,
            JournalOp::SetCurrent(e) => self.current_epoch = *e,
            JournalOp::Reset { snapshot, zxid } => {
                self.snapshot = Some((snapshot.clone(), *zxid));
                self.log.clear();
            }
            JournalOp::Compact { snapshot, zxid } => {
                self.snapshot = Some((snapshot.clone(), *zxid));
                self.log.retain(|t| t.zxid > *zxid);
            }
        }
    }
}

/// A buffered mutation awaiting flush.
#[derive(Debug, Clone)]
enum JournalOp {
    Append(Vec<Txn>),
    Truncate(Zxid),
    SetAccepted(Epoch),
    SetCurrent(Epoch),
    Reset { snapshot: Bytes, zxid: Zxid },
    Compact { snapshot: Bytes, zxid: Zxid },
}

/// In-memory [`Storage`] with crash simulation.
///
/// # Example
///
/// ```
/// use zab_core::{Epoch, Txn, Zxid};
/// use zab_log::{MemStorage, Storage};
///
/// let mut s = MemStorage::new();
/// s.append_txns(&[Txn::new(Zxid::new(Epoch(1), 1), &b"a"[..])]).unwrap();
/// // Not yet flushed: a crash loses it.
/// s.crash();
/// assert_eq!(s.recover().unwrap().history.len(), 0);
/// ```
#[derive(Debug, Default)]
pub struct MemStorage {
    durable: Image,
    applied: Image,
    journal: Vec<JournalOp>,
    /// Count of flushes performed (observability for flush-policy tests).
    flush_count: u64,
    /// Injected-fault schedule, if any (see [`crate::fault`]).
    faults: Option<FaultPlan>,
    /// Instrument bundle (standalone by default; see
    /// [`Storage::set_metrics`]).
    metrics: LogMetrics,
    /// Zxid range appended since the last flush, for fsync span
    /// attribution in the flight recorder.
    pending_flush_range: Option<(Zxid, Zxid)>,
}

impl MemStorage {
    /// Creates empty storage.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Installs (or clears) a deterministic fault-injection plan. Faults
    /// fire *before* the operation mutates anything, so a failed operation
    /// never half-applies.
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// Mutable access to the installed fault plan (to arm one-shots).
    pub fn faults_mut(&mut self) -> Option<&mut FaultPlan> {
        self.faults.as_mut()
    }

    /// Simulates a crash: applied-but-unflushed writes are lost.
    pub fn crash(&mut self) {
        self.applied = self.durable.clone();
        self.journal.clear();
    }

    /// Number of flushes performed.
    pub fn flush_count(&self) -> u64 {
        self.flush_count
    }

    /// Number of log entries currently applied (durable or not).
    pub fn log_len(&self) -> usize {
        self.applied.log.len()
    }

    fn record(&mut self, op: JournalOp) {
        self.applied.apply(&op);
        self.journal.push(op);
    }

    /// Fault check that accounts fired faults in the metrics bundle.
    fn check(&mut self, op: FaultOp) -> Result<(), StorageError> {
        check_fault(&mut self.faults, op).inspect_err(|_| self.metrics.injected_faults.inc())
    }
}

impl Storage for MemStorage {
    fn set_accepted_epoch(&mut self, epoch: Epoch) -> Result<(), StorageError> {
        self.check(FaultOp::EpochWrite)?;
        self.record(JournalOp::SetAccepted(epoch));
        Ok(())
    }

    fn set_current_epoch(&mut self, epoch: Epoch) -> Result<(), StorageError> {
        self.check(FaultOp::EpochWrite)?;
        self.record(JournalOp::SetCurrent(epoch));
        Ok(())
    }

    fn append_txns(&mut self, txns: &[Txn]) -> Result<(), StorageError> {
        self.check(FaultOp::Append)?;
        let start_us = self.metrics.clock.now_micros();
        let mut last = self.applied.last_zxid();
        for txn in txns {
            if txn.zxid <= last {
                return Err(StorageError::Corrupt(format!(
                    "append out of order: {} after {}",
                    txn.zxid, last
                )));
            }
            last = txn.zxid;
        }
        self.record(JournalOp::Append(txns.to_vec()));
        self.metrics.appends.inc();
        let end_us = self.metrics.clock.now_micros();
        self.metrics.append_latency_us.record(end_us.saturating_sub(start_us));
        if let (Some(first), Some(txn_last)) = (txns.first(), txns.last()) {
            self.metrics.tracer.span(
                zab_trace::Stage::LogAppend,
                first.zxid.0,
                txn_last.zxid.0,
                start_us,
                end_us,
            );
            self.pending_flush_range = Some(match self.pending_flush_range {
                None => (first.zxid, txn_last.zxid),
                Some((lo, hi)) => (lo.min(first.zxid), hi.max(txn_last.zxid)),
            });
        }
        Ok(())
    }

    fn truncate(&mut self, to: Zxid) -> Result<(), StorageError> {
        self.check(FaultOp::Truncate)?;
        self.record(JournalOp::Truncate(to));
        Ok(())
    }

    fn reset_to_snapshot(&mut self, snapshot: Bytes, zxid: Zxid) -> Result<(), StorageError> {
        self.check(FaultOp::SnapshotReplace)?;
        self.record(JournalOp::Reset { snapshot, zxid });
        self.flush()
    }

    fn compact(&mut self, snapshot: Bytes, zxid: Zxid) -> Result<(), StorageError> {
        self.check(FaultOp::Compact)?;
        self.record(JournalOp::Compact { snapshot, zxid });
        self.flush()
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        self.check(FaultOp::Flush)?;
        let start_us = self.metrics.clock.now_micros();
        for op in self.journal.drain(..) {
            self.durable.apply(&op);
        }
        self.flush_count += 1;
        self.metrics.fsyncs.inc();
        let end_us = self.metrics.clock.now_micros();
        self.metrics.flush_latency_us.record(end_us.saturating_sub(start_us));
        if let Some((lo, hi)) = self.pending_flush_range.take() {
            self.metrics.tracer.span(zab_trace::Stage::LogFsync, lo.0, hi.0, start_us, end_us);
        }
        Ok(())
    }

    fn recover(&self) -> Result<Recovered, StorageError> {
        let img = &self.applied;
        let history = History::from_recovered(img.base(), img.log.clone(), img.base());
        Ok(Recovered {
            accepted_epoch: img.accepted_epoch,
            current_epoch: img.current_epoch,
            history,
            snapshot: img.snapshot.as_ref().map(|(b, _)| b.clone()),
        })
    }

    fn set_metrics(&mut self, metrics: LogMetrics) {
        self.metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(e: u32, c: u32) -> Txn {
        Txn::new(Zxid::new(Epoch(e), c), vec![1])
    }

    #[test]
    fn flushed_data_survives_crash() {
        let mut s = MemStorage::new();
        s.set_accepted_epoch(Epoch(2)).unwrap();
        s.append_txns(&[txn(1, 1), txn(1, 2)]).unwrap();
        s.flush().unwrap();
        s.append_txns(&[txn(1, 3)]).unwrap();
        s.crash();
        let r = s.recover().unwrap();
        assert_eq!(r.accepted_epoch, Epoch(2));
        assert_eq!(r.history.last_zxid(), Zxid::new(Epoch(1), 2));
    }

    #[test]
    fn unflushed_epoch_lost_on_crash() {
        let mut s = MemStorage::new();
        s.set_current_epoch(Epoch(5)).unwrap();
        s.crash();
        assert_eq!(s.recover().unwrap().current_epoch, Epoch::ZERO);
    }

    #[test]
    fn out_of_order_append_rejected() {
        let mut s = MemStorage::new();
        s.append_txns(&[txn(1, 2)]).unwrap();
        assert!(matches!(s.append_txns(&[txn(1, 1)]), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn out_of_order_within_one_batch_rejected() {
        let mut s = MemStorage::new();
        assert!(matches!(s.append_txns(&[txn(1, 2), txn(1, 1)]), Err(StorageError::Corrupt(_))));
        // The failed batch must not have been half-applied.
        assert_eq!(s.log_len(), 0);
    }

    #[test]
    fn truncate_then_append_different_branch() {
        let mut s = MemStorage::new();
        s.append_txns(&[txn(1, 1), txn(1, 2)]).unwrap();
        s.truncate(Zxid::new(Epoch(1), 1)).unwrap();
        s.append_txns(&[txn(2, 1)]).unwrap();
        s.flush().unwrap();
        let r = s.recover().unwrap();
        let zxids: Vec<Zxid> = r.history.txns().iter().map(|t| t.zxid).collect();
        assert_eq!(zxids, vec![Zxid::new(Epoch(1), 1), Zxid::new(Epoch(2), 1)]);
    }

    #[test]
    fn unflushed_truncate_lost_on_crash() {
        let mut s = MemStorage::new();
        s.append_txns(&[txn(1, 1), txn(1, 2)]).unwrap();
        s.flush().unwrap();
        s.truncate(Zxid::new(Epoch(1), 1)).unwrap();
        s.crash();
        // The truncate never became durable: both entries survive.
        assert_eq!(s.recover().unwrap().history.len(), 2);
    }

    #[test]
    fn reset_to_snapshot_is_durable_immediately() {
        let mut s = MemStorage::new();
        s.append_txns(&[txn(1, 1)]).unwrap();
        s.reset_to_snapshot(Bytes::from_static(b"snap"), Zxid::new(Epoch(1), 50)).unwrap();
        s.crash();
        let r = s.recover().unwrap();
        assert_eq!(r.history.base(), Zxid::new(Epoch(1), 50));
        assert_eq!(r.snapshot.unwrap().as_ref(), b"snap");
        assert!(r.history.is_empty());
    }

    #[test]
    fn compact_keeps_suffix() {
        let mut s = MemStorage::new();
        s.append_txns(&[txn(1, 1), txn(1, 2), txn(1, 3)]).unwrap();
        s.compact(Bytes::from_static(b"snap@2"), Zxid::new(Epoch(1), 2)).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.history.base(), Zxid::new(Epoch(1), 2));
        assert_eq!(r.history.len(), 1);
        assert_eq!(r.history.last_zxid(), Zxid::new(Epoch(1), 3));
    }

    #[test]
    fn apply_maps_all_persist_requests() {
        use zab_core::PersistRequest as PR;
        let mut s = MemStorage::new();
        s.apply(&PR::AcceptedEpoch(Epoch(3))).unwrap();
        s.apply(&PR::CurrentEpoch(Epoch(3))).unwrap();
        s.apply(&PR::AppendTxns(vec![txn(3, 1)])).unwrap();
        s.apply(&PR::TruncateLog(Zxid::new(Epoch(3), 1))).unwrap();
        s.apply(&PR::ResetToSnapshot {
            snapshot: Bytes::from_static(b"s"),
            zxid: Zxid::new(Epoch(3), 10),
        })
        .unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.accepted_epoch, Epoch(3));
        assert_eq!(r.history.base(), Zxid::new(Epoch(3), 10));
    }

    #[test]
    fn injected_flush_failure_keeps_writes_volatile() {
        let mut s = MemStorage::new();
        s.append_txns(&[txn(1, 1)]).unwrap();
        s.flush().unwrap();
        let mut plan = FaultPlan::new();
        plan.arm(FaultOp::Flush);
        s.set_faults(Some(plan));
        s.append_txns(&[txn(1, 2)]).unwrap();
        assert!(matches!(s.flush(), Err(StorageError::Io(_))));
        // The failed fsync left the write volatile: a crash loses it, the
        // flushed prefix survives.
        s.crash();
        assert_eq!(s.recover().unwrap().history.last_zxid(), Zxid::new(Epoch(1), 1));
        // A retried flush (fault was one-shot) makes progress again.
        s.append_txns(&[txn(1, 2)]).unwrap();
        s.flush().unwrap();
        s.crash();
        assert_eq!(s.recover().unwrap().history.len(), 2);
    }

    #[test]
    fn injected_append_failure_leaves_state_consistent() {
        let mut s = MemStorage::new();
        let mut plan = FaultPlan::new();
        plan.arm(FaultOp::Append);
        s.set_faults(Some(plan));
        assert!(matches!(s.append_txns(&[txn(1, 1)]), Err(StorageError::Io(_))));
        assert_eq!(s.log_len(), 0);
        s.append_txns(&[txn(1, 1)]).unwrap();
        assert_eq!(s.log_len(), 1);
    }

    #[test]
    fn metrics_count_appends_flushes_and_injected_faults() {
        let reg = zab_metrics::Registry::new();
        let mut s = MemStorage::new();
        s.set_metrics(LogMetrics::registered(&reg));
        s.append_txns(&[txn(1, 1)]).unwrap();
        s.flush().unwrap();
        let mut plan = FaultPlan::new();
        plan.arm(FaultOp::Flush);
        s.set_faults(Some(plan));
        assert!(s.flush().is_err());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("log.appends"), 1);
        assert_eq!(snap.counter("log.fsyncs"), 1);
        assert_eq!(snap.counter("log.injected_faults"), 1);
        assert_eq!(snap.histogram("log.append_latency_us").map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("log.flush_latency_us").map(|h| h.count), Some(1));
    }

    #[test]
    fn repeated_flushes_are_cheap_and_correct() {
        // Many flushes over a growing log: durability tracks exactly.
        let mut s = MemStorage::new();
        for c in 1..=100u32 {
            s.append_txns(&[txn(1, c)]).unwrap();
            if c % 3 == 0 {
                s.flush().unwrap();
            }
        }
        s.crash();
        // Last flush covered c = 99.
        assert_eq!(s.recover().unwrap().history.len(), 99);
    }
}
