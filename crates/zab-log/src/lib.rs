//! # zab-log — durable state for crash-recovery atomic broadcast
//!
//! Zab's safety across crashes rests on three durable pieces of state per
//! process (the paper's persistent variables):
//!
//! - `acceptedEpoch` (`f.p`) — last epoch acknowledged via `NEWEPOCH`,
//! - `currentEpoch` (`f.a`) — last epoch acknowledged via `NEWLEADER`,
//! - the **accepted transaction history**, plus the application snapshot it
//!   is compacted against.
//!
//! This crate provides the [`Storage`] trait capturing exactly the
//! operations the protocol automata request via
//! [`zab_core::PersistRequest`], with two implementations:
//!
//! - [`MemStorage`] — in-memory, with *explicit* flush boundaries so the
//!   deterministic simulator can model durability loss on crash (anything
//!   not flushed disappears),
//! - [`FileStorage`] — file-backed: an append-only, CRC-checksummed
//!   transaction log, an atomically-replaced epoch record, and an
//!   atomically-replaced snapshot file. Recovery tolerates torn tails
//!   (a partially written final record is discarded, like ZooKeeper's log
//!   recovery).
//!
//! # Example
//!
//! ```
//! use zab_core::{Epoch, Txn, Zxid};
//! use zab_log::{MemStorage, Storage};
//!
//! let mut store = MemStorage::new();
//! store.set_accepted_epoch(Epoch(1)).unwrap();
//! store.append_txns(&[Txn::new(Zxid::new(Epoch(1), 1), &b"delta"[..])]).unwrap();
//! store.flush().unwrap();
//! let recovered = store.recover().unwrap();
//! assert_eq!(recovered.accepted_epoch, Epoch(1));
//! assert_eq!(recovered.history.len(), 1);
//! ```

pub mod fault;
pub mod file;
pub mod mem;
pub mod metrics;
pub mod record;

use bytes::Bytes;
use std::error::Error;
use std::fmt;
use zab_core::{Epoch, History, PersistRequest, PersistentState, Zxid};

pub use fault::{FaultOp, FaultPlan};
pub use file::FileStorage;
pub use mem::MemStorage;
pub use metrics::LogMetrics;

/// Storage failure.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// Stored data failed validation (checksum, ordering, truncation).
    Corrupt(String),
    /// Intact log records resume *after* a damaged region: the damage is
    /// bit-rot / media corruption inside the file body, not a torn tail,
    /// and truncating at the damage would silently drop committed
    /// transactions. Recovery must refuse rather than repair.
    MidFileCorrupt {
        /// Byte offset of the first damaged record.
        offset: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt(why) => write!(f, "storage corrupt: {why}"),
            StorageError::MidFileCorrupt { offset } => {
                write!(
                    f,
                    "storage corrupt mid-file at byte {offset}: intact records follow the \
                     damaged region (bit-rot, not a torn tail)"
                )
            }
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt(_) | StorageError::MidFileCorrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Everything recovered from stable storage at process start.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Durable `acceptedEpoch`.
    pub accepted_epoch: Epoch,
    /// Durable `currentEpoch`.
    pub current_epoch: Epoch,
    /// The accepted history (base = snapshot point, suffix = log).
    pub history: History,
    /// The application snapshot the history is based on, if any.
    pub snapshot: Option<Bytes>,
}

impl Recovered {
    /// Converts to the protocol automata's initial state.
    pub fn into_persistent_state(self) -> PersistentState {
        PersistentState {
            accepted_epoch: self.accepted_epoch,
            current_epoch: self.current_epoch,
            history: self.history,
        }
    }
}

/// Durable storage operations required by the Zab automata.
///
/// Writes are *buffered*: they become durable only at [`Storage::flush`].
/// Drivers map [`zab_core::Action::Persist`] onto these methods and answer
/// [`zab_core::Input::Persisted`] only after a flush covering the request —
/// batching several requests into one flush is the group-commit
/// optimization the paper's pipelining enables.
pub trait Storage {
    /// Buffers an update of `acceptedEpoch`.
    ///
    /// # Errors
    /// Propagates underlying I/O failures.
    fn set_accepted_epoch(&mut self, epoch: Epoch) -> Result<(), StorageError>;

    /// Buffers an update of `currentEpoch`.
    ///
    /// # Errors
    /// Propagates underlying I/O failures.
    fn set_current_epoch(&mut self, epoch: Epoch) -> Result<(), StorageError>;

    /// Buffers an ordered append of transactions to the log.
    ///
    /// # Errors
    /// Propagates underlying I/O failures; implementations may also reject
    /// out-of-order appends as [`StorageError::Corrupt`].
    fn append_txns(&mut self, txns: &[zab_core::Txn]) -> Result<(), StorageError>;

    /// Buffers a truncation: discard log entries with zxid greater than
    /// `to`.
    ///
    /// # Errors
    /// Propagates underlying I/O failures.
    fn truncate(&mut self, to: Zxid) -> Result<(), StorageError>;

    /// Replaces log and snapshot: the snapshot covers everything up to
    /// `zxid`; the log restarts empty after it. Implies a flush.
    ///
    /// The snapshot arrives as refcounted [`bytes::Bytes`] so a snapshot
    /// received off the wire (SNAP sync) is stored without another copy.
    ///
    /// # Errors
    /// Propagates underlying I/O failures.
    fn reset_to_snapshot(&mut self, snapshot: Bytes, zxid: Zxid) -> Result<(), StorageError>;

    /// Compacts the log: stores `snapshot` covering up to `zxid` and drops
    /// log entries at or below it. Unlike [`Storage::reset_to_snapshot`]
    /// the suffix beyond `zxid` is retained. Implies a flush.
    ///
    /// # Errors
    /// Propagates underlying I/O failures.
    fn compact(&mut self, snapshot: Bytes, zxid: Zxid) -> Result<(), StorageError>;

    /// Makes all buffered writes durable.
    ///
    /// # Errors
    /// Propagates underlying I/O failures.
    fn flush(&mut self) -> Result<(), StorageError>;

    /// Reads back the durable state (buffered-but-unflushed writes are
    /// *included*; they are lost only on crash).
    ///
    /// # Errors
    /// Returns [`StorageError::Corrupt`] when validation fails beyond what
    /// torn-tail recovery can repair.
    fn recover(&self) -> Result<Recovered, StorageError>;

    /// Injects the instrument bundle this storage records into (see
    /// [`LogMetrics`]). Default: ignored, for implementations that do not
    /// report metrics.
    fn set_metrics(&mut self, metrics: LogMetrics) {
        let _ = metrics;
    }

    /// Applies a protocol persist request (convenience for drivers).
    ///
    /// # Errors
    /// As per the underlying operations.
    fn apply(&mut self, req: &PersistRequest) -> Result<(), StorageError> {
        match req {
            PersistRequest::AcceptedEpoch(e) => self.set_accepted_epoch(*e),
            PersistRequest::CurrentEpoch(e) => self.set_current_epoch(*e),
            PersistRequest::AppendTxns(txns) => self.append_txns(txns),
            PersistRequest::TruncateLog(to) => self.truncate(*to),
            PersistRequest::ResetToSnapshot { snapshot, zxid } => {
                self.reset_to_snapshot(snapshot.clone(), *zxid)
            }
        }
    }
}
