//! On-disk record formats shared by the file-backed stores.
//!
//! **Log record** (append-only `log` file):
//!
//! ```text
//! +-----------+-------------+----------------------------+
//! | len: u32  | crc32c: u32 | body: zxid u64 + payload   |
//! +-----------+-------------+----------------------------+
//! ```
//!
//! identical to a `zab-wire` frame whose payload is an encoded
//! [`zab_core::Txn`]. A torn tail (partial final record, or a final record
//! failing its checksum) is detected and discarded during the recovery
//! scan, matching ZooKeeper's transaction-log recovery semantics.
//!
//! **Epoch record** (atomically replaced `epochs` file):
//!
//! ```text
//! +-------------------+------------------+-------------+
//! | accepted: u32 LE  | current: u32 LE  | crc32c: u32 |
//! +-------------------+------------------+-------------+
//! ```
//!
//! **Snapshot file** (atomically replaced `snapshot` file):
//!
//! ```text
//! +--------------+--------------------+-------------+
//! | zxid: u64 LE | payload (to EOF-4) | crc32c: u32 |
//! +--------------+--------------------+-------------+
//! ```

use bytes::Bytes;
use zab_core::{Epoch, Txn, Zxid};
use zab_wire::codec::{BytesCursor, WireRead, WireWrite};
use zab_wire::crc32c::crc32c;

use crate::StorageError;

/// Fixed-size prefix of a log record: the frame header (len + crc)
/// followed by the body's zxid and payload-length fields. A record on
/// disk is this prefix immediately followed by the raw payload bytes, so
/// an append can hand `[prefix, payload]` to a vectored write without
/// assembling the record in a contiguous buffer first.
pub const RECORD_PREFIX_LEN: usize = zab_wire::frame::HEADER_LEN + 12;

/// Computes the 20-byte record prefix for `txn`. The full record is this
/// prefix followed by `txn.data` verbatim.
pub fn log_record_prefix(txn: &Txn) -> [u8; RECORD_PREFIX_LEN] {
    let zxid = txn.zxid.0.to_le_bytes();
    let dlen = (txn.data.len() as u32).to_le_bytes();
    let header = zab_wire::frame::frame_header(&[&zxid, &dlen, &txn.data]);
    let mut out = [0u8; RECORD_PREFIX_LEN];
    out[..8].copy_from_slice(&header);
    out[8..16].copy_from_slice(&zxid);
    out[16..].copy_from_slice(&dlen);
    out
}

/// On-disk size of the record for `txn`.
pub fn log_record_len(txn: &Txn) -> u64 {
    (RECORD_PREFIX_LEN + txn.data.len()) as u64
}

/// Encodes one transaction as a contiguous checksummed log record (the
/// payload is copied exactly once, into the returned buffer).
pub fn encode_log_record(txn: &Txn) -> Vec<u8> {
    let prefix = log_record_prefix(txn);
    let mut out = Vec::with_capacity(RECORD_PREFIX_LEN + txn.data.len());
    out.extend_from_slice(&prefix);
    out.extend_from_slice(&txn.data);
    out
}

/// Result of scanning a log byte stream.
#[derive(Debug, PartialEq, Eq)]
pub struct LogScan {
    /// Intact transactions, in file order.
    pub txns: Vec<Txn>,
    /// Bytes of the intact prefix; everything after is damaged.
    pub valid_len: u64,
    /// True if damage (torn or corrupt bytes) follows the intact prefix.
    pub torn_tail: bool,
    /// When damage was found *and* at least one intact record resumes
    /// after it: the byte offset of that record. `Some` means the damage
    /// is mid-file corruption (bit-rot) — truncating at `valid_len` would
    /// drop committed transactions — so recovery must refuse. `None` with
    /// `torn_tail` means an ordinary torn tail, safe to truncate.
    pub resume_after_damage: Option<u64>,
}

/// Scans raw log bytes, returning every intact record and the length of
/// the valid prefix. When the scan stops before end-of-file it probes the
/// remaining bytes for an intact record, distinguishing a **torn tail**
/// (nothing valid follows; truncation is safe) from **mid-file
/// corruption** (valid records resume; truncation would lose data) — see
/// [`LogScan::resume_after_damage`].
///
/// The scan is CRC-verified but copy-free: `data` becomes one refcounted
/// buffer and every recovered `Txn` payload is a [`Bytes`] view into it,
/// so replaying a large log allocates nothing per record.
pub fn scan_log(data: impl Into<Bytes>) -> LogScan {
    let data: Bytes = data.into();
    let raw = data.clone();
    let total = data.len() as u64;
    let mut dec = zab_wire::frame::FrameDecoder::new();
    dec.extend_bytes(data);
    let mut txns = Vec::new();
    let mut valid_len = 0u64;
    let damaged = loop {
        match dec.next_frame() {
            Ok(Some(payload)) => {
                let record_len = (zab_wire::frame::HEADER_LEN + payload.len()) as u64;
                let mut cur = BytesCursor::new(payload);
                match Txn::decode(&mut cur) {
                    Ok(txn) if cur.wire_is_empty() => {
                        valid_len += record_len;
                        txns.push(txn);
                    }
                    // Record framed correctly but body malformed: stop.
                    _ => break true,
                }
            }
            Ok(None) => break valid_len != total,
            Err(_) => break true,
        }
    };
    let resume_after_damage = if damaged {
        let last = txns.last().map_or(Zxid::ZERO, |t| t.zxid);
        probe_resume(&raw, valid_len + 1, last)
    } else {
        None
    };
    LogScan { txns, valid_len, torn_tail: damaged, resume_after_damage }
}

/// Searches `raw[from..]` for an intact log record (valid frame, body a
/// well-formed [`Txn`] with zxid above `last`). Returns its offset — the
/// signature of mid-file corruption, since a torn tail has nothing valid
/// after the damage. Only runs on the (rare) damaged-recovery path.
fn probe_resume(raw: &Bytes, from: u64, last: Zxid) -> Option<u64> {
    const HEADER: usize = zab_wire::frame::HEADER_LEN;
    let total = raw.len();
    let mut o = from as usize;
    while o + RECORD_PREFIX_LEN <= total {
        let len = u32::from_le_bytes([raw[o], raw[o + 1], raw[o + 2], raw[o + 3]]) as usize;
        let end = o + HEADER + len;
        if (12..=zab_wire::frame::MAX_FRAME_LEN).contains(&len) && end <= total {
            let stored = u32::from_le_bytes([raw[o + 4], raw[o + 5], raw[o + 6], raw[o + 7]]);
            if crc32c(&raw[o + HEADER..end]) == stored {
                let mut cur = BytesCursor::new(raw.slice(o + HEADER..end));
                if let Ok(txn) = Txn::decode(&mut cur) {
                    if cur.wire_is_empty() && txn.zxid > last {
                        return Some(o as u64);
                    }
                }
            }
        }
        o += 1;
    }
    None
}

/// Encodes the epoch pair record.
pub fn encode_epochs(accepted: Epoch, current: Epoch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12);
    buf.put_u32_le_wire(accepted.0);
    buf.put_u32_le_wire(current.0);
    let crc = crc32c(&buf);
    buf.put_u32_le_wire(crc);
    buf
}

/// Decodes the epoch pair record.
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on bad length or checksum.
pub fn decode_epochs(data: &[u8]) -> Result<(Epoch, Epoch), StorageError> {
    if data.len() != 12 {
        return Err(StorageError::Corrupt(format!(
            "epoch record has {} bytes, expected 12",
            data.len()
        )));
    }
    let mut cur = data;
    let accepted = Epoch(cur.get_u32_le_wire().expect("length checked"));
    let current = Epoch(cur.get_u32_le_wire().expect("length checked"));
    let stored = cur.get_u32_le_wire().expect("length checked");
    if crc32c(&data[..8]) != stored {
        return Err(StorageError::Corrupt("epoch record checksum mismatch".into()));
    }
    Ok((accepted, current))
}

/// Encodes a snapshot file: zxid header, payload, trailing checksum over
/// header + payload.
pub fn encode_snapshot(zxid: Zxid, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.put_u64_le_wire(zxid.0);
    buf.extend_from_slice(payload);
    let crc = crc32c(&buf);
    buf.put_u32_le_wire(crc);
    buf
}

/// Decodes a snapshot file. The returned payload is a zero-copy view of
/// `data` (CRC verification is a read pass, not a copy).
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on bad length or checksum.
pub fn decode_snapshot(data: impl Into<Bytes>) -> Result<(Zxid, Bytes), StorageError> {
    let data: Bytes = data.into();
    if data.len() < 12 {
        return Err(StorageError::Corrupt("snapshot file too short".into()));
    }
    let body_len = data.len() - 4;
    let stored = u32::from_le_bytes([
        data[body_len],
        data[body_len + 1],
        data[body_len + 2],
        data[body_len + 3],
    ]);
    if crc32c(&data[..body_len]) != stored {
        return Err(StorageError::Corrupt("snapshot checksum mismatch".into()));
    }
    let zxid = Zxid(u64::from_le_bytes([
        data[0], data[1], data[2], data[3], data[4], data[5], data[6], data[7],
    ]));
    Ok((zxid, data.slice(8..body_len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(c: u32) -> Txn {
        Txn::new(Zxid::new(Epoch(1), c), vec![c as u8; 5])
    }

    #[test]
    fn log_round_trip() {
        let mut data = Vec::new();
        for c in 1..=5 {
            data.extend(encode_log_record(&txn(c)));
        }
        let total = data.len() as u64;
        let scan = scan_log(data);
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, total);
        assert_eq!(scan.txns.len(), 5);
        assert_eq!(scan.txns[4].zxid, Zxid::new(Epoch(1), 5));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut data = Vec::new();
        data.extend(encode_log_record(&txn(1)));
        let good_len = data.len() as u64;
        let mut partial = encode_log_record(&txn(2));
        partial.truncate(partial.len() - 3);
        data.extend(partial);
        let scan = scan_log(data);
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.resume_after_damage, None, "a torn tail has no resume point");
    }

    #[test]
    fn corrupt_record_stops_scan() {
        let mut data = Vec::new();
        data.extend(encode_log_record(&txn(1)));
        let good_len = data.len() as u64;
        let mut bad = encode_log_record(&txn(2));
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        data.extend(bad);
        let resume_at = data.len() as u64;
        data.extend(encode_log_record(&txn(3)));
        let scan = scan_log(data);
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.txns.len(), 1);
        // An intact record follows the damage: mid-file corruption.
        assert_eq!(scan.resume_after_damage, Some(resume_at));
    }

    #[test]
    fn corrupt_final_record_is_a_tail_not_mid_file() {
        let mut data = Vec::new();
        data.extend(encode_log_record(&txn(1)));
        let mut bad = encode_log_record(&txn(2));
        bad[10] ^= 0x40; // zxid byte: CRC fails
        data.extend(bad);
        let scan = scan_log(data);
        assert!(scan.torn_tail);
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.resume_after_damage, None);
    }

    #[test]
    fn damaged_length_prefix_still_finds_resume() {
        // Flip a byte in the length field of record 2's header so the
        // frame decoder mis-frames; record 3 must still be found intact.
        let mut data = Vec::new();
        data.extend(encode_log_record(&txn(1)));
        let good_len = data.len() as u64;
        let mut bad = encode_log_record(&txn(2));
        bad[0] ^= 0x04;
        data.extend(bad);
        let resume_at = data.len() as u64;
        data.extend(encode_log_record(&txn(3)));
        let scan = scan_log(data);
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.resume_after_damage, Some(resume_at));
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = scan_log(Vec::new());
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.txns.is_empty());
    }

    #[test]
    fn epochs_round_trip() {
        let data = encode_epochs(Epoch(7), Epoch(6));
        assert_eq!(decode_epochs(&data).unwrap(), (Epoch(7), Epoch(6)));
    }

    #[test]
    fn epochs_detect_corruption() {
        let mut data = encode_epochs(Epoch(7), Epoch(6));
        data[0] ^= 1;
        assert!(decode_epochs(&data).is_err());
        assert!(decode_epochs(&data[..8]).is_err());
    }

    #[test]
    fn snapshot_round_trip() {
        let data = encode_snapshot(Zxid::new(Epoch(3), 9), b"app state");
        let (zxid, payload) = decode_snapshot(data).unwrap();
        assert_eq!(zxid, Zxid::new(Epoch(3), 9));
        assert_eq!(payload, b"app state");
    }

    #[test]
    fn snapshot_detects_corruption() {
        let mut data = encode_snapshot(Zxid::new(Epoch(3), 9), b"app state");
        data[9] ^= 0x10;
        assert!(decode_snapshot(data).is_err());
    }

    #[test]
    fn empty_snapshot_payload_allowed() {
        let data = encode_snapshot(Zxid::ZERO, b"");
        let (zxid, payload) = decode_snapshot(data).unwrap();
        assert_eq!(zxid, Zxid::ZERO);
        assert!(payload.is_empty());
    }
}
