//! On-disk record formats shared by the file-backed stores.
//!
//! **Log record** (append-only `log` file):
//!
//! ```text
//! +-----------+-------------+----------------------------+
//! | len: u32  | crc32c: u32 | body: zxid u64 + payload   |
//! +-----------+-------------+----------------------------+
//! ```
//!
//! identical to a `zab-wire` frame whose payload is an encoded
//! [`zab_core::Txn`]. A torn tail (partial final record, or a final record
//! failing its checksum) is detected and discarded during the recovery
//! scan, matching ZooKeeper's transaction-log recovery semantics.
//!
//! **Epoch record** (atomically replaced `epochs` file):
//!
//! ```text
//! +-------------------+------------------+-------------+
//! | accepted: u32 LE  | current: u32 LE  | crc32c: u32 |
//! +-------------------+------------------+-------------+
//! ```
//!
//! **Snapshot file** (atomically replaced `snapshot` file):
//!
//! ```text
//! +--------------+--------------------+-------------+
//! | zxid: u64 LE | payload (to EOF-4) | crc32c: u32 |
//! +--------------+--------------------+-------------+
//! ```

use bytes::Bytes;
use zab_core::{Epoch, Txn, Zxid};
use zab_wire::codec::{BytesCursor, WireRead, WireWrite};
use zab_wire::crc32c::crc32c;

use crate::StorageError;

/// Fixed-size prefix of a log record: the frame header (len + crc)
/// followed by the body's zxid and payload-length fields. A record on
/// disk is this prefix immediately followed by the raw payload bytes, so
/// an append can hand `[prefix, payload]` to a vectored write without
/// assembling the record in a contiguous buffer first.
pub const RECORD_PREFIX_LEN: usize = zab_wire::frame::HEADER_LEN + 12;

/// Computes the 20-byte record prefix for `txn`. The full record is this
/// prefix followed by `txn.data` verbatim.
pub fn log_record_prefix(txn: &Txn) -> [u8; RECORD_PREFIX_LEN] {
    let zxid = txn.zxid.0.to_le_bytes();
    let dlen = (txn.data.len() as u32).to_le_bytes();
    let header = zab_wire::frame::frame_header(&[&zxid, &dlen, &txn.data]);
    let mut out = [0u8; RECORD_PREFIX_LEN];
    out[..8].copy_from_slice(&header);
    out[8..16].copy_from_slice(&zxid);
    out[16..].copy_from_slice(&dlen);
    out
}

/// On-disk size of the record for `txn`.
pub fn log_record_len(txn: &Txn) -> u64 {
    (RECORD_PREFIX_LEN + txn.data.len()) as u64
}

/// Encodes one transaction as a contiguous checksummed log record (the
/// payload is copied exactly once, into the returned buffer).
pub fn encode_log_record(txn: &Txn) -> Vec<u8> {
    let prefix = log_record_prefix(txn);
    let mut out = Vec::with_capacity(RECORD_PREFIX_LEN + txn.data.len());
    out.extend_from_slice(&prefix);
    out.extend_from_slice(&txn.data);
    out
}

/// Result of scanning a log byte stream.
#[derive(Debug, PartialEq, Eq)]
pub struct LogScan {
    /// Intact transactions, in file order.
    pub txns: Vec<Txn>,
    /// Bytes of the intact prefix; everything after is a torn tail.
    pub valid_len: u64,
    /// True if a torn/corrupt tail was discarded.
    pub torn_tail: bool,
}

/// Scans raw log bytes, returning every intact record and the length of
/// the valid prefix. Corruption mid-file (not at the tail) still stops the
/// scan — the caller decides whether truncating there is acceptable.
///
/// The scan is CRC-verified but copy-free: `data` becomes one refcounted
/// buffer and every recovered `Txn` payload is a [`Bytes`] view into it,
/// so replaying a large log allocates nothing per record.
pub fn scan_log(data: impl Into<Bytes>) -> LogScan {
    let data: Bytes = data.into();
    let total = data.len() as u64;
    let mut dec = zab_wire::frame::FrameDecoder::new();
    dec.extend_bytes(data);
    let mut txns = Vec::new();
    let mut valid_len = 0u64;
    loop {
        match dec.next_frame() {
            Ok(Some(payload)) => {
                let record_len = (zab_wire::frame::HEADER_LEN + payload.len()) as u64;
                let mut cur = BytesCursor::new(payload);
                match Txn::decode(&mut cur) {
                    Ok(txn) if cur.wire_is_empty() => {
                        valid_len += record_len;
                        txns.push(txn);
                    }
                    _ => {
                        // Record framed correctly but body malformed: stop.
                        return LogScan { txns, valid_len, torn_tail: true };
                    }
                }
            }
            Ok(None) => {
                let torn = valid_len != total;
                return LogScan { txns, valid_len, torn_tail: torn };
            }
            Err(_) => {
                return LogScan { txns, valid_len, torn_tail: true };
            }
        }
    }
}

/// Encodes the epoch pair record.
pub fn encode_epochs(accepted: Epoch, current: Epoch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12);
    buf.put_u32_le_wire(accepted.0);
    buf.put_u32_le_wire(current.0);
    let crc = crc32c(&buf);
    buf.put_u32_le_wire(crc);
    buf
}

/// Decodes the epoch pair record.
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on bad length or checksum.
pub fn decode_epochs(data: &[u8]) -> Result<(Epoch, Epoch), StorageError> {
    if data.len() != 12 {
        return Err(StorageError::Corrupt(format!(
            "epoch record has {} bytes, expected 12",
            data.len()
        )));
    }
    let mut cur = data;
    let accepted = Epoch(cur.get_u32_le_wire().expect("length checked"));
    let current = Epoch(cur.get_u32_le_wire().expect("length checked"));
    let stored = cur.get_u32_le_wire().expect("length checked");
    if crc32c(&data[..8]) != stored {
        return Err(StorageError::Corrupt("epoch record checksum mismatch".into()));
    }
    Ok((accepted, current))
}

/// Encodes a snapshot file: zxid header, payload, trailing checksum over
/// header + payload.
pub fn encode_snapshot(zxid: Zxid, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.put_u64_le_wire(zxid.0);
    buf.extend_from_slice(payload);
    let crc = crc32c(&buf);
    buf.put_u32_le_wire(crc);
    buf
}

/// Decodes a snapshot file. The returned payload is a zero-copy view of
/// `data` (CRC verification is a read pass, not a copy).
///
/// # Errors
///
/// Returns [`StorageError::Corrupt`] on bad length or checksum.
pub fn decode_snapshot(data: impl Into<Bytes>) -> Result<(Zxid, Bytes), StorageError> {
    let data: Bytes = data.into();
    if data.len() < 12 {
        return Err(StorageError::Corrupt("snapshot file too short".into()));
    }
    let body_len = data.len() - 4;
    let stored = u32::from_le_bytes([
        data[body_len],
        data[body_len + 1],
        data[body_len + 2],
        data[body_len + 3],
    ]);
    if crc32c(&data[..body_len]) != stored {
        return Err(StorageError::Corrupt("snapshot checksum mismatch".into()));
    }
    let zxid = Zxid(u64::from_le_bytes([
        data[0], data[1], data[2], data[3], data[4], data[5], data[6], data[7],
    ]));
    Ok((zxid, data.slice(8..body_len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(c: u32) -> Txn {
        Txn::new(Zxid::new(Epoch(1), c), vec![c as u8; 5])
    }

    #[test]
    fn log_round_trip() {
        let mut data = Vec::new();
        for c in 1..=5 {
            data.extend(encode_log_record(&txn(c)));
        }
        let total = data.len() as u64;
        let scan = scan_log(data);
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, total);
        assert_eq!(scan.txns.len(), 5);
        assert_eq!(scan.txns[4].zxid, Zxid::new(Epoch(1), 5));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut data = Vec::new();
        data.extend(encode_log_record(&txn(1)));
        let good_len = data.len() as u64;
        let mut partial = encode_log_record(&txn(2));
        partial.truncate(partial.len() - 3);
        data.extend(partial);
        let scan = scan_log(data);
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.txns.len(), 1);
    }

    #[test]
    fn corrupt_record_stops_scan() {
        let mut data = Vec::new();
        data.extend(encode_log_record(&txn(1)));
        let good_len = data.len() as u64;
        let mut bad = encode_log_record(&txn(2));
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        data.extend(bad);
        data.extend(encode_log_record(&txn(3)));
        let scan = scan_log(data);
        assert!(scan.torn_tail);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.txns.len(), 1);
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = scan_log(Vec::new());
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.txns.is_empty());
    }

    #[test]
    fn epochs_round_trip() {
        let data = encode_epochs(Epoch(7), Epoch(6));
        assert_eq!(decode_epochs(&data).unwrap(), (Epoch(7), Epoch(6)));
    }

    #[test]
    fn epochs_detect_corruption() {
        let mut data = encode_epochs(Epoch(7), Epoch(6));
        data[0] ^= 1;
        assert!(decode_epochs(&data).is_err());
        assert!(decode_epochs(&data[..8]).is_err());
    }

    #[test]
    fn snapshot_round_trip() {
        let data = encode_snapshot(Zxid::new(Epoch(3), 9), b"app state");
        let (zxid, payload) = decode_snapshot(data).unwrap();
        assert_eq!(zxid, Zxid::new(Epoch(3), 9));
        assert_eq!(payload, b"app state");
    }

    #[test]
    fn snapshot_detects_corruption() {
        let mut data = encode_snapshot(Zxid::new(Epoch(3), 9), b"app state");
        data[9] ^= 0x10;
        assert!(decode_snapshot(data).is_err());
    }

    #[test]
    fn empty_snapshot_payload_allowed() {
        let data = encode_snapshot(Zxid::ZERO, b"");
        let (zxid, payload) = decode_snapshot(data).unwrap();
        assert_eq!(zxid, Zxid::ZERO);
        assert!(payload.is_empty());
    }
}
