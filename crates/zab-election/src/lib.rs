//! # zab-election — Fast Leader Election (Phase 0)
//!
//! Zab assumes a leader oracle that eventually nominates a single live,
//! well-connected process — and for *performance* (not safety) the nominee
//! should hold the freshest history, so that synchronization never has to
//! pull history into the leader. This crate implements the oracle ZooKeeper
//! ships: **Fast Leader Election** (FLE).
//!
//! Every process gossips *notifications* carrying its current [`Vote`] —
//! `(peer_epoch, last_zxid, server_id)` of the process it currently backs —
//! tagged with a logical *round* and the sender's [`NodeState`]. A looking
//! process adopts any strictly better vote it hears, and decides once a
//! quorum of the latest round backs its vote and a short *finalize window*
//! passes without a better vote appearing. Processes that already lead or
//! follow answer lookers with their decided vote, so a rebooting process
//! converges onto an established leader without disturbing it.
//!
//! The automaton is sans-io like `zab-core`: feed [`ElectionInput`]s, act on
//! [`ElectionAction`]s. The decision is reported as
//! [`ElectionAction::Decided`]; afterwards the automaton keeps answering
//! lookers until [`Election::restart`] re-enters a new round.
//!
//! # Example
//!
//! ```
//! use zab_core::{Epoch, ServerId, Zxid};
//! use zab_election::{Election, ElectionConfig, Vote};
//!
//! // A single-server ensemble elects itself immediately.
//! let cfg = ElectionConfig::new([ServerId(1)]);
//! let (mut el, actions) = Election::new(
//!     ServerId(1),
//!     cfg,
//!     Vote { peer_epoch: Epoch(0), last_zxid: Zxid::ZERO, leader: ServerId(1) },
//!     0,
//! );
//! assert!(actions.iter().any(|a| matches!(
//!     a,
//!     zab_election::ElectionAction::Decided { leader } if *leader == ServerId(1)
//! )));
//! # let _ = el.handle(zab_election::ElectionInput::Tick { now_ms: 1 });
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use zab_core::{Epoch, MajorityQuorum, QuorumSystem, ServerId, Zxid};
use zab_wire::codec::{WireError, WireRead, WireWrite};

/// A vote: the process this sender currently backs for leadership,
/// qualified by that process's history freshness.
///
/// Votes are totally ordered by `(peer_epoch, last_zxid, leader)`; FLE
/// converges on the maximum, which is the process with the freshest
/// history (ties broken by id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Vote {
    /// `currentEpoch` of the backed process.
    pub peer_epoch: Epoch,
    /// Last logged zxid of the backed process.
    pub last_zxid: Zxid,
    /// The backed process.
    pub leader: ServerId,
}

/// The sender's protocol state attached to a notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Still electing.
    Looking,
    /// Decided: leads.
    Leading,
    /// Decided: follows the vote's leader.
    Following,
}

/// A gossip message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// Logical election round of the sender.
    pub round: u64,
    /// Sender's state.
    pub state: NodeState,
    /// Sender's current vote.
    pub vote: Vote,
}

impl Notification {
    /// Encodes to the stable wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(22);
        buf.put_u64_le_wire(self.round);
        buf.put_u8_wire(match self.state {
            NodeState::Looking => 0,
            NodeState::Leading => 1,
            NodeState::Following => 2,
        });
        buf.put_u32_le_wire(self.vote.peer_epoch.0);
        buf.put_u64_le_wire(self.vote.last_zxid.0);
        buf.put_u64_le_wire(self.vote.leader.0);
        buf
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or an unknown state tag.
    pub fn decode(mut data: &[u8]) -> Result<Notification, WireError> {
        let cur = &mut data;
        let round = cur.get_u64_le_wire()?;
        let state = match cur.get_u8_wire()? {
            0 => NodeState::Looking,
            1 => NodeState::Leading,
            2 => NodeState::Following,
            tag => return Err(WireError::InvalidTag { tag, context: "NodeState" }),
        };
        let peer_epoch = Epoch(cur.get_u32_le_wire()?);
        let last_zxid = Zxid(cur.get_u64_le_wire()?);
        let leader = ServerId(cur.get_u64_le_wire()?);
        Ok(Notification { round, state, vote: Vote { peer_epoch, last_zxid, leader } })
    }
}

/// Election parameters.
#[derive(Debug, Clone)]
pub struct ElectionConfig {
    /// Quorum system of the ensemble.
    pub quorum: Arc<dyn QuorumSystem>,
    /// How long to wait, after a quorum first backs our vote, for a better
    /// vote to surface before deciding (ZooKeeper's `finalizeWait`).
    pub finalize_wait_ms: u64,
    /// Period for re-gossiping our notification while looking.
    pub resend_interval_ms: u64,
}

impl ElectionConfig {
    /// Majority quorums with ZooKeeper-like timing defaults.
    pub fn new(members: impl IntoIterator<Item = ServerId>) -> ElectionConfig {
        ElectionConfig {
            quorum: Arc::new(MajorityQuorum::new(members)),
            finalize_wait_ms: 200,
            resend_interval_ms: 100,
        }
    }
}

/// Inputs to the election automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionInput {
    /// A notification arrived from `from`.
    Notification {
        /// Sender.
        from: ServerId,
        /// Its gossip.
        notification: Notification,
    },
    /// Monotone clock advance.
    Tick {
        /// Current driver time in milliseconds.
        now_ms: u64,
    },
}

/// Actions requested by the election automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionAction {
    /// Send a notification to a peer.
    Send {
        /// Destination.
        to: ServerId,
        /// The gossip.
        notification: Notification,
    },
    /// The election decided: `leader` is nominated. The driver should now
    /// construct the corresponding `zab-core` automaton.
    Decided {
        /// The nominee.
        leader: ServerId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Looking,
    Decided { leader: ServerId },
}

/// The Fast Leader Election automaton.
#[derive(Debug)]
pub struct Election {
    id: ServerId,
    config: ElectionConfig,
    /// Our own freshness credentials (constant per incarnation).
    self_epoch: Epoch,
    self_zxid: Zxid,
    round: u64,
    vote: Vote,
    phase: Phase,
    /// Same-round votes received while looking (sender → vote).
    recv: BTreeMap<ServerId, Vote>,
    /// Votes from decided (Leading/Following) peers: sender → (vote, state).
    out_of_election: BTreeMap<ServerId, (Vote, NodeState)>,
    now_ms: u64,
    /// When the current quorum support window completes, if armed.
    finalize_deadline: Option<u64>,
    last_broadcast_ms: u64,
}

impl Election {
    /// Starts an election. `initial_vote` carries this process's own
    /// credentials (`peer_epoch` = its `currentEpoch`, `last_zxid` = its
    /// log tail, `leader` = itself).
    ///
    /// Returns the automaton and initial actions (gossip to all peers; in a
    /// single-server ensemble, an immediate decision).
    pub fn new(
        id: ServerId,
        config: ElectionConfig,
        initial_vote: Vote,
        now_ms: u64,
    ) -> (Election, Vec<ElectionAction>) {
        let mut e = Election {
            id,
            config,
            self_epoch: initial_vote.peer_epoch,
            self_zxid: initial_vote.last_zxid,
            round: 1,
            vote: initial_vote,
            phase: Phase::Looking,
            recv: BTreeMap::new(),
            out_of_election: BTreeMap::new(),
            now_ms,
            finalize_deadline: None,
            last_broadcast_ms: now_ms,
        };
        let mut out = Vec::new();
        e.recv.insert(id, e.vote);
        e.broadcast(&mut out);
        e.check_quorum(&mut out);
        // Deadline of zero width for n = 1: decide immediately.
        e.maybe_finalize(&mut out);
        (e, out)
    }

    /// This process's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Current logical round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The decided leader, if any.
    pub fn decided_leader(&self) -> Option<ServerId> {
        match self.phase {
            Phase::Decided { leader } => Some(leader),
            Phase::Looking => None,
        }
    }

    /// True while still looking.
    pub fn is_looking(&self) -> bool {
        self.phase == Phase::Looking
    }

    /// Re-enters the election (after the Zab automaton requested one),
    /// with possibly updated credentials, bumping the round.
    pub fn restart(&mut self, epoch: Epoch, last_zxid: Zxid, now_ms: u64) -> Vec<ElectionAction> {
        self.self_epoch = epoch;
        self.self_zxid = last_zxid;
        self.round += 1;
        self.vote = Vote { peer_epoch: epoch, last_zxid, leader: self.id };
        self.phase = Phase::Looking;
        self.recv.clear();
        self.recv.insert(self.id, self.vote);
        self.out_of_election.clear();
        self.now_ms = now_ms;
        self.finalize_deadline = None;
        let mut out = Vec::new();
        self.broadcast(&mut out);
        self.check_quorum(&mut out);
        self.maybe_finalize(&mut out);
        out
    }

    fn my_state(&self) -> NodeState {
        match self.phase {
            Phase::Looking => NodeState::Looking,
            Phase::Decided { leader } if leader == self.id => NodeState::Leading,
            Phase::Decided { .. } => NodeState::Following,
        }
    }

    fn notification(&self) -> Notification {
        Notification { round: self.round, state: self.my_state(), vote: self.vote }
    }

    fn broadcast(&mut self, out: &mut Vec<ElectionAction>) {
        self.last_broadcast_ms = self.now_ms;
        let n = self.notification();
        for &peer in self.config.quorum.members().iter() {
            if peer != self.id {
                out.push(ElectionAction::Send { to: peer, notification: n });
            }
        }
    }

    /// Feeds one input, returning requested actions.
    pub fn handle(&mut self, input: ElectionInput) -> Vec<ElectionAction> {
        let mut out = Vec::new();
        match input {
            ElectionInput::Tick { now_ms } => {
                self.now_ms = now_ms;
                if self.phase == Phase::Looking {
                    if now_ms.saturating_sub(self.last_broadcast_ms)
                        >= self.config.resend_interval_ms
                    {
                        self.broadcast(&mut out);
                    }
                    self.maybe_finalize(&mut out);
                }
            }
            ElectionInput::Notification { from, notification } => {
                if from == self.id || !self.config.quorum.members().contains(&from) {
                    return out;
                }
                self.on_notification(from, notification, &mut out);
            }
        }
        out
    }

    fn on_notification(&mut self, from: ServerId, n: Notification, out: &mut Vec<ElectionAction>) {
        match self.phase {
            Phase::Looking => match n.state {
                NodeState::Looking => self.on_looking_notification(from, n, out),
                NodeState::Leading | NodeState::Following => {
                    self.on_decided_notification(from, n, out)
                }
            },
            Phase::Decided { .. } => {
                // Help lagging lookers converge onto the decision.
                if n.state == NodeState::Looking {
                    out.push(ElectionAction::Send { to: from, notification: self.notification() });
                }
            }
        }
    }

    fn on_looking_notification(
        &mut self,
        from: ServerId,
        n: Notification,
        out: &mut Vec<ElectionAction>,
    ) {
        use std::cmp::Ordering;
        match n.round.cmp(&self.round) {
            Ordering::Greater => {
                // Join the newer round; restart vote accounting.
                self.round = n.round;
                self.recv.clear();
                let self_vote = Vote {
                    peer_epoch: self.self_epoch,
                    last_zxid: self.self_zxid,
                    leader: self.id,
                };
                self.vote = self_vote.max(n.vote);
                self.finalize_deadline = None;
                self.recv.insert(self.id, self.vote);
                self.recv.insert(from, n.vote);
                self.broadcast(out);
            }
            Ordering::Less => {
                // Stale round: help the sender catch up; ignore its vote.
                out.push(ElectionAction::Send { to: from, notification: self.notification() });
                return;
            }
            Ordering::Equal => {
                self.recv.insert(from, n.vote);
                if n.vote > self.vote {
                    self.vote = n.vote;
                    self.finalize_deadline = None;
                    self.recv.insert(self.id, self.vote);
                    self.broadcast(out);
                }
            }
        }
        self.check_quorum(out);
        self.maybe_finalize(out);
    }

    fn on_decided_notification(
        &mut self,
        from: ServerId,
        n: Notification,
        out: &mut Vec<ElectionAction>,
    ) {
        // A decided peer in our round: if a quorum of our round backs its
        // leader, adopt immediately (we were part of that election).
        if n.round == self.round {
            self.recv.insert(from, n.vote);
            let supporters: BTreeSet<ServerId> = self
                .recv
                .iter()
                .filter(|(_, v)| v.leader == n.vote.leader)
                .map(|(&s, _)| s)
                .collect();
            if self.config.quorum.is_quorum(&supporters)
                && self.leader_attests(n.vote.leader, from, n.state)
            {
                self.decide(n.vote, out);
                return;
            }
        }
        // Otherwise: track out-of-election votes; an established ensemble
        // answers a rebooted process this way.
        self.out_of_election.insert(from, (n.vote, n.state));
        let supporters: BTreeSet<ServerId> = self
            .out_of_election
            .iter()
            .filter(|(_, (v, _))| v.leader == n.vote.leader)
            .map(|(&s, _)| s)
            .collect();
        if self.config.quorum.is_quorum(&supporters)
            && self.leader_attests(n.vote.leader, from, n.state)
        {
            self.round = n.round;
            self.decide(n.vote, out);
        }
    }

    /// ZooKeeper's `checkLeader`: only follow a leader that itself attests
    /// to leading (directly, or via this very notification).
    fn leader_attests(&self, leader: ServerId, from: ServerId, state: NodeState) -> bool {
        if leader == self.id {
            return true;
        }
        if from == leader && state == NodeState::Leading {
            return true;
        }
        matches!(self.out_of_election.get(&leader), Some((_, NodeState::Leading)))
    }

    fn check_quorum(&mut self, _out: &mut Vec<ElectionAction>) {
        if self.phase != Phase::Looking || self.finalize_deadline.is_some() {
            return;
        }
        let supporters: BTreeSet<ServerId> =
            self.recv.iter().filter(|(_, v)| **v == self.vote).map(|(&s, _)| s).collect();
        if self.config.quorum.is_quorum(&supporters) {
            // Quorum reached: arm the finalize window. A better vote
            // arriving before the deadline disarms it.
            let wait = if self.config.quorum.members().len() == 1 {
                0
            } else {
                self.config.finalize_wait_ms
            };
            self.finalize_deadline = Some(self.now_ms + wait);
        }
    }

    fn maybe_finalize(&mut self, out: &mut Vec<ElectionAction>) {
        if self.phase != Phase::Looking {
            return;
        }
        if let Some(deadline) = self.finalize_deadline {
            if self.now_ms >= deadline {
                let vote = self.vote;
                self.decide(vote, out);
            }
        }
    }

    fn decide(&mut self, vote: Vote, out: &mut Vec<ElectionAction>) {
        self.vote = vote;
        self.phase = Phase::Decided { leader: vote.leader };
        self.finalize_deadline = None;
        out.push(ElectionAction::Decided { leader: vote.leader });
        // Tell everyone, so lagging peers converge fast.
        self.broadcast(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u64) -> ElectionConfig {
        ElectionConfig::new((1..=n).map(ServerId))
    }

    fn vote(epoch: u32, zxid: u64, id: u64) -> Vote {
        Vote { peer_epoch: Epoch(epoch), last_zxid: Zxid(zxid), leader: ServerId(id) }
    }

    #[test]
    fn vote_ordering_epoch_then_zxid_then_id() {
        assert!(vote(2, 0, 1) > vote(1, 99, 9));
        assert!(vote(1, 5, 1) > vote(1, 4, 9));
        assert!(vote(1, 5, 3) > vote(1, 5, 2));
    }

    #[test]
    fn notification_round_trips() {
        let n = Notification { round: 7, state: NodeState::Following, vote: vote(3, 77, 2) };
        assert_eq!(Notification::decode(&n.encode()).unwrap(), n);
    }

    #[test]
    fn notification_rejects_bad_state_tag() {
        let mut data =
            Notification { round: 1, state: NodeState::Looking, vote: vote(0, 0, 1) }.encode();
        data[8] = 9;
        assert!(Notification::decode(&data).is_err());
    }

    #[test]
    fn single_node_decides_immediately() {
        let (e, acts) = Election::new(ServerId(1), cfg(1), vote(0, 0, 1), 0);
        assert_eq!(e.decided_leader(), Some(ServerId(1)));
        assert!(acts
            .iter()
            .any(|a| matches!(a, ElectionAction::Decided { leader } if *leader == ServerId(1))));
    }

    /// Fully-connected synchronous gossip: all notifications delivered
    /// instantly; ticks advance together.
    fn converge(mut nodes: Vec<Election>) -> Vec<Election> {
        let mut queue: Vec<(ServerId, ElectionAction)> = Vec::new();
        for node in &mut nodes {
            let id = node.id();
            let acts = node.restart(node.self_epoch, node.self_zxid, 0);
            queue.extend(acts.into_iter().map(|a| (id, a)));
        }
        let mut now = 0;
        for _ in 0..200 {
            // Drain sends.
            while let Some((from, act)) = queue.pop() {
                if let ElectionAction::Send { to, notification } = act {
                    if let Some(n) = nodes.iter_mut().find(|n| n.id() == to) {
                        let acts = n.handle(ElectionInput::Notification { from, notification });
                        let id = n.id();
                        queue.extend(acts.into_iter().map(|a| (id, a)));
                    }
                }
            }
            if nodes.iter().all(|n| !n.is_looking()) {
                break;
            }
            now += 100;
            for n in &mut nodes {
                let acts = n.handle(ElectionInput::Tick { now_ms: now });
                let id = n.id();
                queue.extend(acts.into_iter().map(|a| (id, a)));
            }
        }
        nodes
    }

    fn make(id: u64, epoch: u32, zxid: u64, n: u64) -> Election {
        Election::new(ServerId(id), cfg(n), vote(epoch, zxid, id), 0).0
    }

    #[test]
    fn equal_credentials_elect_highest_id() {
        let nodes = converge(vec![make(1, 0, 0, 3), make(2, 0, 0, 3), make(3, 0, 0, 3)]);
        for n in &nodes {
            assert_eq!(n.decided_leader(), Some(ServerId(3)), "node {} diverged", n.id());
        }
    }

    #[test]
    fn freshest_history_wins_regardless_of_id() {
        let nodes = converge(vec![make(1, 1, 50, 3), make(2, 1, 10, 3), make(3, 0, 99, 3)]);
        for n in &nodes {
            assert_eq!(n.decided_leader(), Some(ServerId(1)));
        }
    }

    #[test]
    fn higher_epoch_beats_longer_log() {
        let nodes = converge(vec![make(1, 2, 1, 3), make(2, 1, 999, 3), make(3, 1, 999, 3)]);
        for n in &nodes {
            assert_eq!(n.decided_leader(), Some(ServerId(1)));
        }
    }

    #[test]
    fn five_nodes_converge() {
        let nodes = converge((1..=5).map(|i| make(i, 0, i, 5)).collect());
        for n in &nodes {
            assert_eq!(n.decided_leader(), Some(ServerId(5)));
        }
    }

    #[test]
    fn late_joiner_adopts_established_leader() {
        let mut nodes = converge(vec![make(1, 0, 0, 3), make(2, 0, 0, 3)]);
        assert_eq!(nodes[0].decided_leader(), Some(ServerId(2)));
        // Node 3 starts fresh with better credentials — but the ensemble
        // has decided; it must join, not destabilize.
        let (mut joiner, acts) = Election::new(ServerId(3), cfg(3), vote(5, 5, 3), 0);
        let mut queue: Vec<(ServerId, ElectionAction)> =
            acts.into_iter().map(|a| (ServerId(3), a)).collect();
        for _ in 0..50 {
            let Some((from, act)) = queue.pop() else { break };
            if let ElectionAction::Send { to, notification } = act {
                if to == ServerId(3) {
                    let acts = joiner.handle(ElectionInput::Notification { from, notification });
                    queue.extend(acts.into_iter().map(|a| (ServerId(3), a)));
                } else if let Some(n) = nodes.iter_mut().find(|n| n.id() == to) {
                    let acts = n.handle(ElectionInput::Notification { from, notification });
                    let id = n.id();
                    queue.extend(acts.into_iter().map(|a| (id, a)));
                }
            }
        }
        assert_eq!(joiner.decided_leader(), Some(ServerId(2)));
        // The established nodes were not destabilized.
        assert_eq!(nodes[0].decided_leader(), Some(ServerId(2)));
        assert_eq!(nodes[1].decided_leader(), Some(ServerId(2)));
    }

    #[test]
    fn restart_bumps_round_and_relooks() {
        let (mut e, _) = Election::new(ServerId(1), cfg(3), vote(0, 0, 1), 0);
        assert!(e.is_looking());
        let r1 = e.round();
        let acts = e.restart(Epoch(1), Zxid(5), 100);
        assert_eq!(e.round(), r1 + 1);
        assert!(e.is_looking());
        // Gossips to both peers.
        let sends = acts.iter().filter(|a| matches!(a, ElectionAction::Send { .. })).count();
        assert_eq!(sends, 2);
    }

    #[test]
    fn looking_peer_with_stale_round_is_helped() {
        let (mut e, _) = Election::new(ServerId(1), cfg(3), vote(0, 0, 1), 0);
        e.restart(Epoch(0), Zxid(0), 0); // round 2
        let acts = e.handle(ElectionInput::Notification {
            from: ServerId(2),
            notification: Notification { round: 1, state: NodeState::Looking, vote: vote(9, 9, 2) },
        });
        // Our reply carries our (newer) round; the stale better vote is NOT
        // adopted — the peer will re-vote in our round.
        assert!(acts.iter().any(|a| matches!(
            a,
            ElectionAction::Send { to, notification } if *to == ServerId(2) && notification.round == 2
        )));
        assert_eq!(e.decided_leader(), None);
    }

    #[test]
    fn joining_higher_round_resets_votes() {
        let (mut e, _) = Election::new(ServerId(1), cfg(3), vote(1, 10, 1), 0);
        let acts = e.handle(ElectionInput::Notification {
            from: ServerId(2),
            notification: Notification { round: 5, state: NodeState::Looking, vote: vote(0, 0, 2) },
        });
        assert_eq!(e.round(), 5);
        // Our own credentials beat the peer's vote, so we still back
        // ourselves — in the new round.
        assert!(acts.iter().any(|a| matches!(
            a,
            ElectionAction::Send { notification, .. }
                if notification.round == 5 && notification.vote.leader == ServerId(1)
        )));
    }

    #[test]
    fn no_decision_without_quorum() {
        let (mut e, _) = Election::new(ServerId(1), cfg(5), vote(0, 0, 1), 0);
        let _ = e.handle(ElectionInput::Notification {
            from: ServerId(2),
            notification: Notification { round: 1, state: NodeState::Looking, vote: vote(0, 0, 1) },
        });
        // 2 of 5 back server 1: not a quorum, even after a long wait.
        let acts = e.handle(ElectionInput::Tick { now_ms: 60_000 });
        assert!(!acts.iter().any(|a| matches!(a, ElectionAction::Decided { .. })));
        assert!(e.is_looking());
    }

    #[test]
    fn follower_claim_alone_does_not_elect_unattested_leader() {
        // Two followers claim server 9 leads, but server 9 never says so
        // itself; `leader_attests` must block the decision.
        let (mut e, _) = Election::new(ServerId(1), cfg(3), vote(0, 0, 1), 0);
        for from in [ServerId(2), ServerId(3)] {
            let acts = e.handle(ElectionInput::Notification {
                from,
                notification: Notification {
                    round: 9,
                    state: NodeState::Following,
                    vote: vote(3, 3, 9),
                },
            });
            assert!(!acts.iter().any(|a| matches!(a, ElectionAction::Decided { .. })));
        }
        assert!(e.is_looking());
    }

    #[test]
    fn quorum_of_decided_peers_with_attesting_leader_elects() {
        let (mut e, _) = Election::new(ServerId(1), cfg(3), vote(0, 0, 1), 0);
        let _ = e.handle(ElectionInput::Notification {
            from: ServerId(3),
            notification: Notification { round: 4, state: NodeState::Leading, vote: vote(2, 8, 3) },
        });
        let acts = e.handle(ElectionInput::Notification {
            from: ServerId(2),
            notification: Notification {
                round: 4,
                state: NodeState::Following,
                vote: vote(2, 8, 3),
            },
        });
        assert!(acts.iter().any(|a| matches!(
            a,
            ElectionAction::Decided { leader } if *leader == ServerId(3)
        )));
    }
}
