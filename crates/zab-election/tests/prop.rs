//! Property tests for Fast Leader Election: convergence to the freshest
//! process under synchronous gossip, for arbitrary credentials and
//! ensemble sizes, plus codec totality.

use proptest::prelude::*;
use zab_core::{Epoch, ServerId, Zxid};
use zab_election::{Election, ElectionAction, ElectionConfig, ElectionInput, Notification, Vote};

/// Synchronous full-mesh gossip until everyone decides (or step budget).
fn converge(credentials: &[(u32, u64)]) -> Vec<(ServerId, Option<ServerId>)> {
    let n = credentials.len() as u64;
    let cfg = ElectionConfig::new((1..=n).map(ServerId));
    let mut nodes: Vec<Election> = Vec::new();
    let mut queue: Vec<(ServerId, ElectionAction)> = Vec::new();
    for (i, &(epoch, zxid)) in credentials.iter().enumerate() {
        let id = ServerId(i as u64 + 1);
        let vote = Vote { peer_epoch: Epoch(epoch), last_zxid: Zxid(zxid), leader: id };
        let (e, acts) = Election::new(id, cfg.clone(), vote, 0);
        queue.extend(acts.into_iter().map(|a| (id, a)));
        nodes.push(e);
    }
    let mut now = 0u64;
    for _ in 0..500 {
        while let Some((from, act)) = queue.pop() {
            if let ElectionAction::Send { to, notification } = act {
                if let Some(node) = nodes.iter_mut().find(|x| x.id() == to) {
                    let acts = node.handle(ElectionInput::Notification { from, notification });
                    let id = node.id();
                    queue.extend(acts.into_iter().map(|a| (id, a)));
                }
            }
        }
        if nodes.iter().all(|x| !x.is_looking()) {
            break;
        }
        now += 100;
        for node in &mut nodes {
            let acts = node.handle(ElectionInput::Tick { now_ms: now });
            let id = node.id();
            queue.extend(acts.into_iter().map(|a| (id, a)));
        }
    }
    nodes.iter().map(|x| (x.id(), x.decided_leader())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Everyone decides, everyone agrees, and the winner is the maximum by
    /// `(epoch, zxid, id)` — the freshest history.
    #[test]
    fn fle_converges_to_freshest(
        credentials in prop::collection::vec((0u32..5, 0u64..20), 1..9),
    ) {
        let outcomes = converge(&credentials);
        let expected = credentials
            .iter()
            .enumerate()
            .map(|(i, &(e, z))| (e, z, i as u64 + 1))
            .max()
            .map(|(_, _, id)| ServerId(id))
            .expect("nonempty");
        for (id, decided) in outcomes {
            prop_assert_eq!(decided, Some(expected), "node {} diverged", id);
        }
    }

    /// Notification decoding is total (never panics) and round-trips.
    #[test]
    fn notification_codec_total(
        round in any::<u64>(),
        state_tag in 0u8..3,
        epoch in any::<u32>(),
        zxid in any::<u64>(),
        leader in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let state = match state_tag {
            0 => zab_election::NodeState::Looking,
            1 => zab_election::NodeState::Leading,
            _ => zab_election::NodeState::Following,
        };
        let n = Notification {
            round,
            state,
            vote: Vote { peer_epoch: Epoch(epoch), last_zxid: Zxid(zxid), leader: ServerId(leader) },
        };
        prop_assert_eq!(Notification::decode(&n.encode()).unwrap(), n);
        let _ = Notification::decode(&garbage);
    }

    /// A decided ensemble absorbs any sequence of late lookers without
    /// changing its decision.
    #[test]
    fn late_lookers_never_destabilize(
        base in prop::collection::vec((0u32..3, 0u64..10), 2..5),
        joiner_cred in (0u32..10, 0u64..100),
    ) {
        let n = base.len() as u64 + 1;
        let cfg = ElectionConfig::new((1..=n).map(ServerId));
        // Converge the base ensemble (joiner absent).
        let mut nodes: Vec<Election> = Vec::new();
        let mut queue: Vec<(ServerId, ElectionAction)> = Vec::new();
        for (i, &(epoch, zxid)) in base.iter().enumerate() {
            let id = ServerId(i as u64 + 1);
            let vote = Vote { peer_epoch: Epoch(epoch), last_zxid: Zxid(zxid), leader: id };
            let (e, acts) = Election::new(id, cfg.clone(), vote, 0);
            queue.extend(acts.into_iter().map(|a| (id, a)));
            nodes.push(e);
        }
        let mut now = 0u64;
        for _ in 0..200 {
            while let Some((from, act)) = queue.pop() {
                if let ElectionAction::Send { to, notification } = act {
                    if let Some(node) = nodes.iter_mut().find(|x| x.id() == to) {
                        let acts =
                            node.handle(ElectionInput::Notification { from, notification });
                        let id = node.id();
                        queue.extend(acts.into_iter().map(|a| (id, a)));
                    }
                }
            }
            if nodes.iter().all(|x| !x.is_looking()) {
                break;
            }
            now += 100;
            for node in &mut nodes {
                let acts = node.handle(ElectionInput::Tick { now_ms: now });
                let id = node.id();
                queue.extend(acts.into_iter().map(|a| (id, a)));
            }
        }
        let decided: Vec<Option<ServerId>> =
            nodes.iter().map(|x| x.decided_leader()).collect();
        prop_assume!(decided.iter().all(|d| d.is_some()));
        let settled = decided[0];

        // The joiner arrives with arbitrary (possibly superior) credentials.
        let joiner_id = ServerId(n);
        let (epoch, zxid) = joiner_cred;
        let vote = Vote { peer_epoch: Epoch(epoch), last_zxid: Zxid(zxid), leader: joiner_id };
        let (mut joiner, acts) = Election::new(joiner_id, cfg, vote, 0);
        let mut queue: Vec<(ServerId, ElectionAction)> =
            acts.into_iter().map(|a| (joiner_id, a)).collect();
        for _ in 0..200 {
            let Some((from, act)) = queue.pop() else { break };
            if let ElectionAction::Send { to, notification } = act {
                if to == joiner_id {
                    let acts = joiner.handle(ElectionInput::Notification { from, notification });
                    queue.extend(acts.into_iter().map(|a| (joiner_id, a)));
                } else if let Some(node) = nodes.iter_mut().find(|x| x.id() == to) {
                    let acts = node.handle(ElectionInput::Notification { from, notification });
                    let id = node.id();
                    queue.extend(acts.into_iter().map(|a| (id, a)));
                }
            }
        }
        // The ensemble's decision is unchanged; the joiner adopted it.
        for node in &nodes {
            prop_assert_eq!(node.decided_leader(), settled);
        }
        prop_assert_eq!(joiner.decided_leader(), settled);
    }
}
