//! Lock-light metrics and structured-tracing primitives for the Zab
//! reproduction.
//!
//! The DSN'11 evaluation is built around measured quantities — throughput
//! vs. ensemble size, latency vs. offered load, the win from multiple
//! outstanding transactions — so every layer of this workspace reports
//! into the same small vocabulary:
//!
//! - [`Counter`]: monotone `u64`, one atomic add on the hot path.
//! - [`Gauge`]: signed instantaneous level (queue depths, window sizes).
//! - [`Histogram`]: fixed log2-bucket latency/size distribution. Recording
//!   is three relaxed atomic ops; no allocation, no locking, no floats.
//! - [`Registry`]: name → instrument table. Registration takes a mutex;
//!   recorded values never do — callers hold `Arc` handles to the atomics.
//! - [`Snapshot`]: a point-in-time copy of everything, with a dependency-free
//!   JSON encoder ([`Snapshot::to_json`]) for dump files and CI artifacts.
//! - [`Clock`] / [`Span`]: the tracing seam. A [`Span`] is a scoped timer
//!   that records its lifetime into a histogram on drop, so the hot path
//!   (request → propose → quorum ack → commit → deliver) reads as nested
//!   spans while costing two clock reads.
//!
//! Deterministic simulations plug in a [`ManualClock`] driven by virtual
//! time; real nodes use [`WallClock`] (monotonic `Instant`-based). Either
//! way the histograms are comparable and, crucially, *assertable*: the
//! chaos harness treats metric convergence across survivors as a
//! correctness oracle, not just an ops dashboard.
//!
//! No external dependencies, consistent with the vendored-offline policy
//! (DESIGN.md §5): everything here is `std`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing counter.
///
/// ```
/// let c = zab_metrics::Counter::default();
/// c.inc();
/// c.add(2);
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, window size, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets. Bucket `i` (for `i >= 1`) covers values in
/// `[2^(i-1), 2^i)`; bucket 0 holds exact zeros. 64 buckets cover the
/// full `u64` range, so no value is ever clamped.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2-scale histogram.
///
/// Values land in power-of-two buckets, giving ~2x resolution over the
/// whole `u64` range with a constant 65-slot footprint. Recording is
/// wait-free: one `fetch_add` into the bucket, one into `count`, one into
/// `sum`, plus a CAS loop for `max` (uncontended in practice).
///
/// ```
/// let h = zab_metrics::Histogram::default();
/// h.record(0);
/// h.record(1);
/// h.record(1000);
/// let s = h.snapshot();
/// assert_eq!(s.count, 3);
/// assert_eq!(s.sum, 1001);
/// assert_eq!(s.max, 1000);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros` (so 1 → 1,
/// 2..4 → 2..3, etc.).
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i` (used as the percentile estimate).
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Interpolated `q`-quantile of the live histogram — a snapshot plus
    /// [`HistogramSnapshot::quantile`]. Convenience for one-off reads
    /// (health summaries); take one snapshot yourself to read several
    /// quantiles consistently.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Point-in-time copy. Concurrent recorders may land between field
    /// reads; the snapshot is internally *near*-consistent, which is all a
    /// monitoring read needs (deterministic tests snapshot quiesced state).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_lower_bound(i), n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen copy of a [`Histogram`]: `(bucket_lower_bound, count)` pairs for
/// the non-empty buckets, plus totals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 if empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Interpolated estimate of the `q`-quantile (`q` in `[0, 1]`).
    ///
    /// Finds the log₂ bucket holding the rank-`⌈q·count⌉` observation and
    /// linearly interpolates the rank's position across the bucket's
    /// `[lower, upper]` value range — the standard assumption that
    /// observations are uniformly spread within a bucket. The top bucket's
    /// upper edge is clamped to the observed `max`, so the estimate never
    /// exceeds a value actually recorded. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut cum = 0u64;
        for &(lo, n) in &self.buckets {
            if cum + n >= target {
                let hi = bucket_upper_bound(bucket_index(lo)).min(self.max);
                if hi <= lo {
                    return lo.min(self.max);
                }
                // Rank's fractional position within this bucket, in (0, 1].
                let frac = (target - cum) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est.round() as u64).clamp(lo, hi);
            }
            cum += n;
        }
        self.max
    }
}

/// A point-in-time copy of every instrument in a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, or 0 if absent (an instrument nobody touched is
    /// indistinguishable from one at zero, by design).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level, or 0 if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot, if the histogram exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of all counters whose name starts with `prefix` (per-peer
    /// rollups: `transport.bytes_out.` etc.).
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, v)| v).sum()
    }

    /// Serializes the snapshot as a stable, human-diffable JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {"count", "sum", "max", "mean", "buckets": [[lo, n], ...]}}}`.
    /// Keys are emitted in sorted (BTreeMap) order so dumps diff cleanly
    /// across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[",
                json_string(k),
                h.count,
                h.sum,
                h.max,
                h.mean()
            );
            for (j, (lo, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per metric, names mangled via
    /// [`mangle_name`] (`.` → `_`), histograms as cumulative
    /// `_bucket{le="..."}` series (monotone by construction) closed by
    /// `le="+Inf"` equal to `_count`, plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        for (k, v) in &self.counters {
            let name = mangle_name(k);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, v) in &self.gauges {
            let name = mangle_name(k);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, h) in &self.histograms {
            let name = mangle_name(k);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for &(lo, n) in &h.buckets {
                cum += n;
                let ub = bucket_upper_bound(bucket_index(lo));
                // The top bucket's upper edge is unbounded; it is covered
                // by the mandatory +Inf series below.
                if ub != u64::MAX {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{ub}\"}} {cum}");
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

/// Mangles an instrument name (`layer.metric[_unit][.peer]`) into a valid
/// Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other
/// character becomes `_`, and a leading digit gains a `_` prefix.
pub fn mangle_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Sanitizes one dotted-key *component* (a peer id in the
/// `layer.metric.peer` convention): anything outside `[A-Za-z0-9_-]` —
/// most importantly `.`, which would make the key ambiguous to split —
/// becomes `_`. An empty component becomes `_`.
pub fn sanitize_component(component: &str) -> String {
    if component.is_empty() {
        return "_".to_string();
    }
    component
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect()
}

/// Builds a per-peer metric key `base.peer` with the peer component
/// sanitized via [`sanitize_component`], so `layer.metric.peer` keys stay
/// unambiguous to parse no matter what the peer id contains.
pub fn peer_metric(base: &str, peer: impl std::fmt::Display) -> String {
    format!("{base}.{}", sanitize_component(&peer.to_string()))
}

/// Minimal JSON string encoder (instrument names are ASCII identifiers,
/// but escape defensively anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Interior tables of a [`Registry`].
#[derive(Debug, Default)]
struct Tables {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A name → instrument table.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a mutex and is
/// expected at setup time or on rare events (a new peer connecting);
/// recording through the returned `Arc` handles is lock-free. Naming
/// convention (see DESIGN.md §9): `layer.metric[_unit][.peer]`, e.g.
/// `core.quorum_ack_latency_us` or `transport.bytes_out.3`.
#[derive(Debug, Default)]
pub struct Registry {
    tables: Mutex<Tables>,
}

/// A locked registry table, recovered from poisoning: metrics must never
/// amplify a panic elsewhere into a second one.
fn lock_tables(tables: &Mutex<Tables>) -> std::sync::MutexGuard<'_, Tables> {
    match tables.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut t = lock_tables(&self.tables);
        match t.counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                t.counters.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut t = lock_tables(&self.tables);
        match t.gauges.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                t.gauges.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut t = lock_tables(&self.tables);
        match t.histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                t.histograms.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Copies every instrument into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let t = lock_tables(&self.tables);
        Snapshot {
            counters: t.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: t.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: t.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// The time source metrics timers read. Real nodes use [`WallClock`];
/// deterministic simulations drive a [`ManualClock`] from virtual time so
/// latency histograms are exactly reproducible.
pub trait Clock: Send + Sync {
    /// Monotonic microseconds since an arbitrary origin.
    fn now_micros(&self) -> u64;

    /// Monotonic milliseconds since the same origin.
    fn now_millis(&self) -> u64 {
        self.now_micros() / 1_000
    }

    /// When `now_micros` is exactly `(rdtsc() − origin) × mult >> 32`,
    /// returns `Some((origin, mult))` so hot paths (the flight recorder's
    /// record call) can inline the read and skip the virtual dispatch —
    /// the clock data then travels in the caller's own cache lines
    /// instead of forcing a cold load of the clock object per event.
    /// Default `None`: callers must fall back to [`Clock::now_micros`].
    fn raw_tsc_scale(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Monotonic wall clock: microseconds since construction, backed by
/// [`std::time::Instant`] (never goes backwards, unaffected by NTP steps —
/// the property `replica.rs` needs when comparing timestamps across an
/// election restart).
///
/// On Linux/x86-64 hosts whose kernel clocksource is already `tsc`, reads
/// come from a raw `rdtsc` scaled by a once-per-process calibration
/// instead of `clock_gettime`. The flight recorder stamps every pipeline
/// stage, so at saturation the clock read is the single largest per-event
/// cost; skipping the vdso's seqlock and ns conversion cuts it from
/// ~35 ns to ~10 ns. The kernel-clocksource gate matters: it is the
/// kernel's own attestation that the TSC is invariant and synchronized
/// across cores, exactly the property `clock_gettime` would have relied
/// on. Anywhere that doesn't hold, construction falls back to `Instant`.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    tsc: Option<TscScale>,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            tsc: TscScale::capture(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        if let Some(t) = self.tsc {
            return t.micros_since_origin();
        }
        // Saturating: a u64 of microseconds is ~584k years of uptime.
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn raw_tsc_scale(&self) -> Option<(u64, u64)> {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            self.tsc.map(|t| (t.origin, t.mult))
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            None
        }
    }
}

/// Scale factor mapping raw TSC ticks to microseconds:
/// `µs = (ticks × mult) >> 32` (32.32 fixed point, so quantization error
/// is sub-ppm). All
/// clocks in a process share one calibration, which keeps their *rates*
/// identical — cross-node trace stitching inside one bench process then
/// sees pure offsets, never skew.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[derive(Debug, Clone, Copy)]
struct TscScale {
    origin: u64,
    mult: u64,
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
impl TscScale {
    fn capture() -> Option<TscScale> {
        let mult = tsc_mult()?;
        // SAFETY: `_rdtsc` reads the time-stamp counter register; it
        // accesses no memory and is available on every x86-64 CPU.
        let origin = unsafe { core::arch::x86_64::_rdtsc() };
        Some(TscScale { origin, mult })
    }

    fn micros_since_origin(self) -> u64 {
        // SAFETY: as in `capture`.
        let now = unsafe { core::arch::x86_64::_rdtsc() };
        let ticks = now.wrapping_sub(self.origin);
        // u128 intermediate: ticks × mult can exceed 64 bits long before
        // the clock itself would overflow.
        ((u128::from(ticks) * u128::from(self.mult)) >> 32) as u64
    }
}

/// Once-per-process TSC calibration: `Some(mult)` when the kernel's
/// clocksource is `tsc` (its guarantee that the counter is invariant and
/// core-synchronized), `None` otherwise. Calibrates ticks-per-µs against
/// `Instant` over a ~5 ms sleep — sampling jitter of ~100 ns on a 5 ms
/// baseline bounds the rate error around 20 ppm, far below what µs
/// timestamps can express across a trace window.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn tsc_mult() -> Option<u64> {
    use std::sync::OnceLock;
    static MULT: OnceLock<Option<u64>> = OnceLock::new();
    *MULT.get_or_init(|| {
        let src = std::fs::read_to_string(
            "/sys/devices/system/clocksource/clocksource0/current_clocksource",
        )
        .ok()?;
        if src.trim() != "tsc" {
            return None;
        }
        let wall = Instant::now();
        // SAFETY: as in `TscScale::capture`.
        let t0 = unsafe { core::arch::x86_64::_rdtsc() };
        std::thread::sleep(std::time::Duration::from_millis(5));
        let elapsed = wall.elapsed();
        // SAFETY: as in `TscScale::capture`.
        let t1 = unsafe { core::arch::x86_64::_rdtsc() };
        let ticks = t1.wrapping_sub(t0);
        let us = u64::try_from(elapsed.as_micros()).ok()?;
        if ticks == 0 || us == 0 {
            return None;
        }
        u64::try_from((u128::from(us) << 32) / u128::from(ticks)).ok()
    })
}

/// Manually driven clock for deterministic tests and the simulator.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Sets the absolute time in microseconds.
    pub fn set_micros(&self, us: u64) {
        self.0.store(us, Ordering::Relaxed);
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_micros(&self, us: u64) {
        self.0.fetch_add(us, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A scoped timer: starts on construction, records elapsed microseconds
/// into its histogram when dropped (or explicitly via [`Span::finish`]).
/// This is the tracing primitive — nest spans to trace the
/// propose→ack→commit→deliver pipeline.
///
/// ```
/// use zab_metrics::{Clock, ManualClock, Registry, Span};
/// let reg = Registry::new();
/// let clock = std::sync::Arc::new(ManualClock::new());
/// {
///     let _span = Span::start(reg.histogram("demo.latency_us"), clock.clone());
///     clock.advance_micros(250);
/// } // drop records 250
/// assert_eq!(reg.snapshot().histogram("demo.latency_us").unwrap().sum, 250);
/// ```
pub struct Span {
    hist: Arc<Histogram>,
    clock: Arc<dyn Clock>,
    start_us: u64,
    done: bool,
}

impl Span {
    /// Starts timing now.
    pub fn start(hist: Arc<Histogram>, clock: Arc<dyn Clock>) -> Span {
        let start_us = clock.now_micros();
        Span { hist, clock, start_us, done: false }
    }

    /// Stops the timer, records the elapsed microseconds, and returns them.
    pub fn finish(mut self) -> u64 {
        self.done = true;
        let elapsed = self.clock.now_micros().saturating_sub(self.start_us);
        self.hist.record(elapsed);
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            let elapsed = self.clock.now_micros().saturating_sub(self.start_us);
            self.hist.record(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::default();
        g.set(5);
        g.add(3);
        g.sub(10);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Bounds agree with the index mapping at every power of two.
        for i in 1..64 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1004);
        assert_eq!(s.max, 1000);
        // 0 → bucket 0; 1 → [1,2); 3 → [2,4); 1000 → [512,1024).
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 1), (512, 1)]);
        assert!((s.mean() - 251.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(10); // bucket [8,15]
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [2^19, 2^20)
        }
        let s = h.snapshot();
        // Rank 50 of 90 in [8,15]: 8 + (50/90)·7 ≈ 11.9 → 12.
        assert_eq!(s.quantile(0.5), 12);
        // p99 (rank 99) is the 9th of 10 observations in the top bucket,
        // whose upper edge clamps to max = 1,000,000.
        let p99 = s.quantile(0.99);
        assert!((524_288..=1_000_000).contains(&p99), "p99 = {p99}");
        assert!(p99 > 900_000, "rank near bucket top: {p99}");
        // q=0 resolves to rank 1, the bottom of the first non-empty bucket.
        assert!((8..=15).contains(&s.quantile(0.0)));
        // q=1 never exceeds the observed max.
        assert_eq!(s.quantile(1.0), s.max);
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn histogram_quantile_is_monotone_and_bounded() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 5, 9, 17, 40, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for i in 0..=100 {
            let q = s.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at q={i}: {q} < {prev}");
            assert!(q <= s.max);
            prev = q;
        }
        // Convenience form on the live histogram matches the snapshot.
        assert_eq!(h.quantile(0.5), s.quantile(0.5));
    }

    #[test]
    fn histogram_quantile_exact_for_single_value_buckets() {
        // Values 0 and 1 live in width-1 buckets: interpolation must be
        // exact, not merely close.
        let h = Histogram::default();
        for _ in 0..4 {
            h.record(0);
        }
        for _ in 0..6 {
            h.record(1);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.25), 0);
        assert_eq!(s.quantile(0.9), 1);
    }

    #[test]
    fn registry_get_or_create_shares_instruments() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.counter("a").inc();
        reg.gauge("g").set(7);
        reg.histogram("h").record(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 2);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("g"), 7);
        assert_eq!(snap.histogram("h").map(|h| h.count), Some(1));
    }

    #[test]
    fn counter_sum_rolls_up_prefix() {
        let reg = Registry::new();
        reg.counter("transport.bytes_out.1").add(10);
        reg.counter("transport.bytes_out.2").add(20);
        reg.counter("transport.bytes_in.1").add(99);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("transport.bytes_out."), 30);
    }

    #[test]
    fn json_dump_shape() {
        let reg = Registry::new();
        reg.counter("c1").add(3);
        reg.gauge("g1").set(-4);
        reg.histogram("h1").record(5);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"c1\":3"));
        assert!(json.contains("\"g1\":-4"));
        assert!(json.contains("\"h1\":{\"count\":1,\"sum\":5,\"max\":5"));
        assert!(json.contains("\"buckets\":[[4,1]]"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn json_escapes_odd_names() {
        let reg = Registry::new();
        reg.counter("we\"ird\\name\n").inc();
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"we\\\"ird\\\\name\\n\":1"));
    }

    #[test]
    fn manual_clock_and_span() {
        let clock = Arc::new(ManualClock::new());
        clock.set_micros(100);
        assert_eq!(clock.now_micros(), 100);
        assert_eq!(clock.now_millis(), 0);
        clock.advance_micros(2_000);
        assert_eq!(clock.now_millis(), 2);

        let reg = Registry::new();
        let span = Span::start(reg.histogram("span_us"), clock.clone());
        clock.advance_micros(500);
        assert_eq!(span.finish(), 500);
        // Drop path records too.
        {
            let _s = Span::start(reg.histogram("span_us"), clock.clone());
            clock.advance_micros(7);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("span_us").cloned().unwrap_or_default();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 507);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("shared");
                let h = reg.histogram("shared_h");
                for i in 0..1000u64 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("shared"), 4000);
        assert_eq!(snap.histogram("shared_h").map(|h| h.count), Some(4000));
    }

    #[test]
    fn mangle_name_maps_dots_and_edge_cases() {
        assert_eq!(mangle_name("core.proposals_committed"), "core_proposals_committed");
        assert_eq!(mangle_name("transport.bytes_out.2"), "transport_bytes_out_2");
        assert_eq!(mangle_name("weird name-here"), "weird_name_here");
        assert_eq!(mangle_name("2fast"), "_2fast");
        assert_eq!(mangle_name(""), "_");
    }

    #[test]
    fn peer_component_with_dot_is_sanitized() {
        // The bug: "transport.bytes_out" + peer "10.0.0.1" used to yield
        // "transport.bytes_out.10.0.0.1" — ambiguous to split on '.'.
        assert_eq!(peer_metric("transport.bytes_out", "10.0.0.1"), "transport.bytes_out.10_0_0_1");
        assert_eq!(peer_metric("transport.frames_in", 3u64), "transport.frames_in.3");
        assert_eq!(sanitize_component("a.b"), "a_b");
        assert_eq!(sanitize_component("ok_name-7"), "ok_name-7");
        assert_eq!(sanitize_component("sp ace/slash"), "sp_ace_slash");
        assert_eq!(sanitize_component(""), "_");
        // Sanitized keys split unambiguously: exactly one extra component.
        let key = peer_metric("layer.metric", "evil.peer.name");
        assert_eq!(key.matches('.').count(), "layer.metric".matches('.').count() + 1);
    }

    #[test]
    fn peer_metric_collision_domain_is_understood() {
        // Sanitization is lossy by design: every rejected character maps to
        // `_`, so distinct raw peers CAN collide. Pin the collision classes
        // so a future "fix" that silently changes key shapes trips here.
        assert_eq!(peer_metric("t.b", "10.0.0.1"), peer_metric("t.b", "10 0 0 1"));
        assert_eq!(peer_metric("t.b", "a.b"), peer_metric("t.b", "a/b"));
        assert_eq!(sanitize_component("."), sanitize_component(" "));
        // The empty peer collides with a single rejected character…
        assert_eq!(peer_metric("t.b", ""), peer_metric("t.b", "."));
        // …but survivor characters never collide with each other: the map
        // is the identity on `[A-Za-z0-9_-]`, so the ids we actually use
        // (numeric ServerIds, hostnames without dots) stay injective.
        for a in 0u64..20 {
            for b in 0u64..20 {
                if a != b {
                    assert_ne!(
                        peer_metric("core.follower_lag", a),
                        peer_metric("core.follower_lag", b)
                    );
                }
            }
        }
        assert_eq!(sanitize_component("node-7_x"), "node-7_x");
        // A registry keyed by sanitized names merges colliding peers into
        // one instrument rather than corrupting anything.
        let reg = Registry::new();
        reg.counter(&peer_metric("t.c", "a.b")).inc();
        reg.counter(&peer_metric("t.c", "a_b")).inc();
        assert_eq!(reg.snapshot().counter("t.c.a_b"), 2);
    }

    /// Minimal Prometheus text-format parser for the round-trip test:
    /// returns `(metric_name, le_label_if_any, value)` per sample line.
    fn parse_prometheus(text: &str) -> Vec<(String, Option<String>, f64)> {
        let mut out = Vec::new();
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            let value: f64 = value.parse().expect("numeric value");
            let (name, le) = match name_part.split_once('{') {
                None => (name_part.to_string(), None),
                Some((n, rest)) => {
                    let labels = rest.strip_suffix('}').expect("closed label set");
                    let le = labels
                        .strip_prefix("le=\"")
                        .and_then(|s| s.strip_suffix('"'))
                        .map(|s| s.to_string());
                    assert!(le.is_some(), "only le labels are emitted: {line}");
                    (n.to_string(), le)
                }
            };
            out.push((name, le, value));
        }
        out
    }

    #[test]
    fn prometheus_renderer_round_trips() {
        let reg = Registry::new();
        reg.counter("core.proposals_committed").add(42);
        reg.gauge("node.commit_inflight").set(-3);
        let h = reg.histogram("node.commit_latency_ms");
        for v in [0, 1, 1, 3, 9, 200, 70_000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = snap.to_prometheus();

        let samples = parse_prometheus(&text);
        let get = |name: &str| -> f64 {
            samples
                .iter()
                .find(|(n, le, _)| n == name && le.is_none())
                .map(|(_, _, v)| *v)
                .unwrap_or_else(|| panic!("missing sample {name}"))
        };
        assert_eq!(get("core_proposals_committed"), 42.0);
        assert_eq!(get("node_commit_inflight"), -3.0);
        assert_eq!(get("node_commit_latency_ms_count"), 7.0);
        assert_eq!(get("node_commit_latency_ms_sum"), f64::from(1 + 1 + 3 + 9 + 200 + 70_000));

        // Bucket series: le edges strictly increasing, cumulative counts
        // monotone, and +Inf equals _count.
        let buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|(n, le, _)| n == "node_commit_latency_ms_bucket" && le.is_some())
            .map(|(_, le, v)| {
                let le = le.as_deref().expect("le present");
                let edge =
                    if le == "+Inf" { f64::INFINITY } else { le.parse().expect("numeric le") };
                (edge, *v)
            })
            .collect();
        assert!(buckets.len() >= 2, "expected several buckets, got {buckets:?}");
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "le edges not monotone");
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "cumulative counts not monotone");
        let (last_edge, last_cum) = buckets[buckets.len() - 1];
        assert_eq!(last_edge, f64::INFINITY, "bucket series must end at +Inf");
        assert_eq!(last_cum, 7.0, "+Inf bucket must equal _count");

        // Every non-comment line lints as `name[{le="..."}] value`.
        for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().expect("name");
            assert!(
                !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
                    && !name.starts_with(|c: char| c.is_ascii_digit()),
                "invalid exposition name in line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_types_precede_samples() {
        let reg = Registry::new();
        reg.counter("a.count").inc();
        reg.histogram("b.lat_us").record(5);
        let text = reg.snapshot().to_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let type_a = lines.iter().position(|l| *l == "# TYPE a_count counter").expect("TYPE a");
        let sample_a = lines.iter().position(|l| *l == "a_count 1").expect("sample a");
        assert!(type_a < sample_a);
        assert!(lines.contains(&"# TYPE b_lat_us histogram"));
    }

    #[test]
    fn wall_clock_is_monotone_and_tracks_real_time() {
        // Exercises whichever backend construction picked (calibrated TSC
        // on eligible hosts, `Instant` elsewhere): readings never go
        // backwards and a real 50 ms sleep registers as at least ~45 ms.
        // No tight upper bound — CI sleeps can overshoot arbitrarily.
        let clock = WallClock::new();
        let mut last = clock.now_micros();
        for _ in 0..10_000 {
            let now = clock.now_micros();
            assert!(now >= last, "clock went backwards: {now} < {last}");
            last = now;
        }
        let before = clock.now_micros();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let elapsed = clock.now_micros() - before;
        assert!(elapsed >= 45_000, "50 ms sleep measured as {elapsed} µs");
        assert!(clock.now_millis() >= elapsed / 1_000);
    }
}
