//! CRC-32C (Castagnoli) checksums.
//!
//! ZooKeeper checksums every transaction-log record; this reproduction does
//! the same for log records and network frames. We implement CRC-32C
//! (polynomial `0x1EDC6F41`, reflected form `0x82F63B78`) in software with a
//! slice-by-4 table so the hot path is a handful of table lookups per word.
//!
//! The implementation is self-contained (no external crate) and validated
//! against the published check value: `crc32c(b"123456789") == 0xE3069283`.

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Lookup tables for slice-by-4 processing, generated at first use.
struct Tables([[u32; 256]; 4]);

impl Tables {
    const fn generate() -> Tables {
        let mut t = [[0u32; 256]; 4];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
                bit += 1;
            }
            t[0][i] = crc;
            i += 1;
        }
        let mut k = 1usize;
        while k < 4 {
            let mut i = 0usize;
            while i < 256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
                i += 1;
            }
            k += 1;
        }
        Tables(t)
    }
}

static TABLES: Tables = Tables::generate();

/// Streaming CRC-32C state.
///
/// Feed bytes with [`Crc32c::update`]; obtain the checksum with
/// [`Crc32c::finish`]. The one-shot convenience [`crc32c`] covers the common
/// case.
///
/// # Example
///
/// ```
/// use zab_wire::crc32c::{crc32c, Crc32c};
///
/// let mut state = Crc32c::new();
/// state.update(b"123");
/// state.update(b"456789");
/// assert_eq!(state.finish(), crc32c(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Creates a fresh CRC state.
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Absorbs `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = &TABLES.0;
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(4);
        for w in &mut chunks {
            crc ^= u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
            crc = t[3][(crc & 0xFF) as usize]
                ^ t[2][((crc >> 8) & 0xFF) as usize]
                ^ t[1][((crc >> 16) & 0xFF) as usize]
                ^ t[0][(crc >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32C of `data`.
///
/// # Example
///
/// ```
/// assert_eq!(zab_wire::crc32c::crc32c(b"123456789"), 0xE306_9283);
/// ```
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_specification() {
        // Published CRC-32C check value for the nine-digit test vector.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn single_byte_inputs_differ() {
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
    }

    #[test]
    fn streaming_equals_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let expect = crc32c(&data);
        for split in [0, 1, 3, 4, 7, 512, 1023, 1024] {
            let mut s = Crc32c::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finish(), expect, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let base = crc32c(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32c(&data), base, "flip {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 appendix B.4 test vectors for CRC-32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFF; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32u8).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0..32u8).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }
}
