//! Wire-format primitives shared by every layer of the Zab reproduction.
//!
//! Zab assumes FIFO, loss-announcing byte channels between processes (the
//! paper runs over TCP). This crate provides the pieces needed to put
//! protocol messages and log records onto such channels:
//!
//! - [`crc32c`] — the Castagnoli CRC used to checksum log records and frames,
//! - [`codec`] — explicit little-endian primitive encoding ([`codec::WireWrite`]
//!   / [`codec::WireRead`]) so the byte layout is stable and documented,
//! - [`frame`] — length-prefixed, checksummed frames with an incremental
//!   decoder suitable for a streaming socket.
//!
//! The protocol wire format is hand-rolled rather than serde-derived so that
//! compatibility is a property of this crate alone and the hot path performs
//! no reflection-style dispatch.
//!
//! Payloads travel as refcounted [`bytes::Bytes`]: [`FrameDecoder`] yields
//! each frame as a zero-copy view of the receive buffer, and a
//! [`codec::BytesCursor`] over that view slices byte-string fields out of
//! it without copying. One allocation per received buffer serves decode,
//! log append, and fan-out.
//!
//! # Example
//!
//! ```
//! use zab_wire::codec::{BytesCursor, WireRead, WireWrite};
//! use zab_wire::frame::{FrameDecoder, encode_frame};
//!
//! // Encode a payload into a frame and decode it back, as a socket would.
//! let mut payload = Vec::new();
//! payload.put_u64_le_wire(42);
//! payload.put_str_wire("hello");
//!
//! let frame = encode_frame(&payload);
//! let mut decoder = FrameDecoder::new();
//! decoder.extend(&frame);
//! let decoded = decoder.next_frame().expect("no corruption").expect("complete");
//! let mut cursor = BytesCursor::new(decoded);
//! assert_eq!(cursor.get_u64_le_wire().unwrap(), 42);
//! assert_eq!(cursor.get_str_wire().unwrap(), "hello");
//! ```

pub mod codec;
pub mod crc32c;
pub mod frame;

pub use codec::{BytesCursor, WireError, WireRead, WireWrite};
pub use frame::{
    encode_frame, encode_frame_into, frame_header, FrameDecoder, FrameError, HEADER_LEN,
    MAX_FRAME_LEN,
};
