//! Explicit little-endian primitive encoding.
//!
//! All multi-byte integers on the wire and in the log are little-endian.
//! Variable-length byte strings are encoded as a `u32` length prefix followed
//! by the raw bytes. The traits extend `Vec<u8>` on the write side and, on
//! the read side, both `&[u8]` cursors and the refcounted [`BytesCursor`],
//! so encoding needs no intermediate buffers and decoding is bounds-checked
//! rather than panicking.
//!
//! The read side is where the zero-copy payload pipeline starts:
//! [`WireRead::get_bytes_wire`] returns [`Bytes`]. Decoding from a
//! [`BytesCursor`] (whose backing store is the refcounted receive buffer)
//! yields payloads that are *views* of that buffer — no copy — while
//! decoding from a plain `&[u8]` cursor pays one copy to take ownership.

use bytes::Bytes;
use std::error::Error;
use std::fmt;

/// Maximum length accepted for a length-prefixed byte string (16 MiB).
///
/// A corrupted or hostile length prefix must not cause an unbounded
/// allocation; anything above this limit is rejected as
/// [`WireError::LengthOverflow`].
pub const MAX_BYTES_LEN: usize = 16 * 1024 * 1024;

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated {
        /// How many bytes the decoder needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// A length prefix exceeded [`MAX_BYTES_LEN`].
    LengthOverflow {
        /// The length claimed by the prefix.
        claimed: usize,
    },
    /// A byte string that must be UTF-8 was not.
    InvalidUtf8,
    /// An enum discriminant had no corresponding variant.
    InvalidTag {
        /// The unrecognized discriminant.
        tag: u8,
        /// The type being decoded, for diagnostics.
        context: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "input truncated: needed {needed} bytes, had {available}")
            }
            WireError::LengthOverflow { claimed } => {
                write!(f, "length prefix {claimed} exceeds limit {MAX_BYTES_LEN}")
            }
            WireError::InvalidUtf8 => write!(f, "byte string is not valid utf-8"),
            WireError::InvalidTag { tag, context } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
        }
    }
}

impl Error for WireError {}

/// Write-side primitive encoding, implemented for `Vec<u8>`.
///
/// Method names carry a `_wire` suffix to avoid colliding with the
/// `bytes::BufMut` vocabulary when both are in scope.
pub trait WireWrite {
    /// Appends a single byte.
    fn put_u8_wire(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le_wire(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le_wire(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le_wire(&mut self, v: u64);
    /// Appends a little-endian `i64`.
    fn put_i64_le_wire(&mut self, v: i64);
    /// Appends a `u32` length prefix followed by the bytes.
    fn put_bytes_wire(&mut self, v: &[u8]);
    /// Appends a string as a length-prefixed UTF-8 byte string.
    fn put_str_wire(&mut self, v: &str);
    /// Appends a boolean as one byte (0 or 1).
    fn put_bool_wire(&mut self, v: bool);
}

impl WireWrite for Vec<u8> {
    fn put_u8_wire(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le_wire(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le_wire(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le_wire(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le_wire(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_bytes_wire(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= MAX_BYTES_LEN, "encoding oversized byte string");
        self.put_u32_le_wire(v.len() as u32);
        self.extend_from_slice(v);
    }

    fn put_str_wire(&mut self, v: &str) {
        self.put_bytes_wire(v.as_bytes());
    }

    fn put_bool_wire(&mut self, v: bool) {
        self.push(v as u8);
    }
}

/// Read-side primitive decoding, implemented for `&[u8]` cursors and
/// [`BytesCursor`].
///
/// Each call consumes from the front of the cursor. All methods return
/// [`WireError::Truncated`] instead of panicking on short input, and a
/// failed read consumes nothing.
///
/// Byte strings come back as [`Bytes`]: from a [`BytesCursor`] that is a
/// zero-copy view of the cursor's backing buffer; from a `&[u8]` cursor it
/// is one owning copy (the caller holds only a borrow, so a copy is the
/// cheapest way to produce an owned value).
pub trait WireRead {
    /// Reads a single byte.
    fn get_u8_wire(&mut self) -> Result<u8, WireError>;
    /// Reads a little-endian `u16`.
    fn get_u16_le_wire(&mut self) -> Result<u16, WireError>;
    /// Reads a little-endian `u32`.
    fn get_u32_le_wire(&mut self) -> Result<u32, WireError>;
    /// Reads a little-endian `u64`.
    fn get_u64_le_wire(&mut self) -> Result<u64, WireError>;
    /// Reads a little-endian `i64`.
    fn get_i64_le_wire(&mut self) -> Result<i64, WireError>;
    /// Reads a `u32` length prefix and returns that many bytes.
    fn get_bytes_wire(&mut self) -> Result<Bytes, WireError>;
    /// Reads a length-prefixed UTF-8 string.
    fn get_str_wire(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes_wire()?;
        String::from_utf8(bytes.into()).map_err(|_| WireError::InvalidUtf8)
    }
    /// Reads a boolean byte; any nonzero value is `true`.
    fn get_bool_wire(&mut self) -> Result<bool, WireError> {
        Ok(self.get_u8_wire()? != 0)
    }
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize;
    /// True when the cursor is exhausted.
    fn wire_is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

impl WireRead for &[u8] {
    fn get_u8_wire(&mut self) -> Result<u8, WireError> {
        let (&b, rest) =
            self.split_first().ok_or(WireError::Truncated { needed: 1, available: 0 })?;
        *self = rest;
        Ok(b)
    }

    fn get_u16_le_wire(&mut self) -> Result<u16, WireError> {
        let bytes = take(self, 2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    fn get_u32_le_wire(&mut self) -> Result<u32, WireError> {
        let bytes = take(self, 4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn get_u64_le_wire(&mut self) -> Result<u64, WireError> {
        let bytes = take(self, 8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    fn get_i64_le_wire(&mut self) -> Result<i64, WireError> {
        Ok(self.get_u64_le_wire()? as i64)
    }

    fn get_bytes_wire(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_u32_le_wire()? as usize;
        if len > MAX_BYTES_LEN {
            return Err(WireError::LengthOverflow { claimed: len });
        }
        take(self, len).map(Bytes::copy_from_slice)
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

/// Splits `n` bytes off the front of the cursor.
fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if cursor.len() < n {
        return Err(WireError::Truncated { needed: n, available: cursor.len() });
    }
    let (head, rest) = cursor.split_at(n);
    *cursor = rest;
    Ok(head)
}

/// Consuming cursor over an owned, refcounted [`Bytes`] buffer.
///
/// The payoff over a `&[u8]` cursor is [`WireRead::get_bytes_wire`]: the
/// returned [`Bytes`] is a slice *view* of the backing buffer (refcount
/// bump, no copy). A frame received from the network is decoded once and
/// its payload flows to the log and to every follower without being
/// copied again.
///
/// # Example
///
/// ```
/// use bytes::Bytes;
/// use zab_wire::codec::{BytesCursor, WireRead, WireWrite};
///
/// let mut buf = Vec::new();
/// buf.put_u64_le_wire(7);
/// buf.put_bytes_wire(b"payload");
/// let mut cur = BytesCursor::new(Bytes::from(buf));
/// assert_eq!(cur.get_u64_le_wire().unwrap(), 7);
/// let payload = cur.get_bytes_wire().unwrap(); // zero-copy view
/// assert_eq!(payload, b"payload");
/// assert!(cur.wire_is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BytesCursor {
    buf: Bytes,
    pos: usize,
}

impl BytesCursor {
    /// Wraps `buf` in a cursor positioned at its start.
    pub fn new(buf: Bytes) -> BytesCursor {
        BytesCursor { buf, pos: 0 }
    }

    /// The unconsumed tail as a zero-copy view.
    pub fn rest(&self) -> Bytes {
        self.buf.slice(self.pos..)
    }

    /// Reserves `n` bytes, returning the start offset of the reservation.
    fn advance(&mut self, n: usize) -> Result<usize, WireError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(WireError::Truncated { needed: n, available });
        }
        let start = self.pos;
        self.pos += n;
        Ok(start)
    }

    /// Copies the next `N` bytes into an array.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let start = self.advance(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[start..start + N]);
        Ok(out)
    }
}

impl WireRead for BytesCursor {
    fn get_u8_wire(&mut self) -> Result<u8, WireError> {
        let start = self.advance(1)?;
        Ok(self.buf[start])
    }

    fn get_u16_le_wire(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    fn get_u32_le_wire(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    fn get_u64_le_wire(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    fn get_i64_le_wire(&mut self) -> Result<i64, WireError> {
        Ok(self.get_u64_le_wire()? as i64)
    }

    fn get_bytes_wire(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_u32_le_wire()? as usize;
        if len > MAX_BYTES_LEN {
            return Err(WireError::LengthOverflow { claimed: len });
        }
        match self.advance(len) {
            Ok(start) => Ok(self.buf.slice(start..start + len)),
            Err(e) => {
                // Roll back the length prefix so a failed read is atomic.
                self.pos -= 4;
                Err(e)
            }
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut buf = Vec::new();
        buf.put_u8_wire(0xAB);
        buf.put_u16_le_wire(0xBEEF);
        buf.put_u32_le_wire(0xDEAD_BEEF);
        buf.put_u64_le_wire(u64::MAX - 7);
        buf.put_i64_le_wire(-42);
        buf.put_bytes_wire(b"payload");
        buf.put_str_wire("zab");
        buf.put_bool_wire(true);
        buf.put_bool_wire(false);

        let mut cur = buf.as_slice();
        assert_eq!(cur.get_u8_wire().unwrap(), 0xAB);
        assert_eq!(cur.get_u16_le_wire().unwrap(), 0xBEEF);
        assert_eq!(cur.get_u32_le_wire().unwrap(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le_wire().unwrap(), u64::MAX - 7);
        assert_eq!(cur.get_i64_le_wire().unwrap(), -42);
        assert_eq!(cur.get_bytes_wire().unwrap(), b"payload");
        assert_eq!(cur.get_str_wire().unwrap(), "zab");
        assert!(cur.get_bool_wire().unwrap());
        assert!(!cur.get_bool_wire().unwrap());
        assert!(cur.is_empty());
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut cur: &[u8] = &[1, 2, 3];
        assert_eq!(cur.get_u64_le_wire(), Err(WireError::Truncated { needed: 8, available: 3 }));
        // A failed read must not consume input.
        assert_eq!(cur.len(), 3);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.put_u32_le_wire((MAX_BYTES_LEN + 1) as u32);
        let mut cur = buf.as_slice();
        assert_eq!(
            cur.get_bytes_wire(),
            Err(WireError::LengthOverflow { claimed: MAX_BYTES_LEN + 1 })
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        buf.put_bytes_wire(&[0xFF, 0xFE]);
        let mut cur = buf.as_slice();
        assert_eq!(cur.get_str_wire(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn empty_byte_string_round_trips() {
        let mut buf = Vec::new();
        buf.put_bytes_wire(b"");
        let mut cur = buf.as_slice();
        assert_eq!(cur.get_bytes_wire().unwrap(), b"");
    }

    #[test]
    fn length_prefix_claiming_more_than_available_is_truncated() {
        let mut buf = Vec::new();
        buf.put_u32_le_wire(100);
        buf.extend_from_slice(&[0u8; 10]);
        let mut cur = buf.as_slice();
        assert_eq!(cur.get_bytes_wire(), Err(WireError::Truncated { needed: 100, available: 10 }));
    }
}
