//! Length-prefixed, checksummed frames.
//!
//! A frame on a byte stream is laid out as:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32c: u32 LE | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! `len` counts only the payload. The CRC covers only the payload; a frame
//! whose checksum does not match is reported as corruption, which the
//! transport treats as a broken connection (Zab's channel assumption is that
//! a channel either delivers intact data in order or fails).
//!
//! [`FrameDecoder`] is incremental: feed it arbitrary chunks of a stream with
//! [`FrameDecoder::extend`] and drain complete frames with
//! [`FrameDecoder::next_frame`].

use crate::crc32c::crc32c;
use std::error::Error;
use std::fmt;

/// Frame header size in bytes: length prefix + checksum.
pub const HEADER_LEN: usize = 8;

/// Maximum accepted payload length (64 MiB).
///
/// Large enough for a SNAP-style full-state transfer chunk, small enough
/// that a corrupt length prefix cannot trigger an absurd allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Decoding failure on a framed stream. Both variants are unrecoverable for
/// the connection that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    TooLong {
        /// Claimed payload length.
        claimed: usize,
    },
    /// The payload checksum did not match.
    BadChecksum {
        /// Checksum carried in the header.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong { claimed } => {
                write!(f, "frame length {claimed} exceeds limit {MAX_FRAME_LEN}")
            }
            FrameError::BadChecksum { expected, actual } => {
                write!(f, "frame checksum mismatch: header {expected:#010x}, computed {actual:#010x}")
            }
        }
    }
}

impl Error for FrameError {}

/// Encodes `payload` into a self-contained frame ready to write to a stream.
///
/// # Panics
///
/// Panics if `payload.len() > MAX_FRAME_LEN`; callers size protocol messages
/// below the limit by construction.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN, "payload exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame decoder over a byte stream.
///
/// # Example
///
/// ```
/// use zab_wire::frame::{encode_frame, FrameDecoder};
///
/// let wire = encode_frame(b"one");
/// let mut dec = FrameDecoder::new();
/// // Bytes may arrive in arbitrary chunks.
/// dec.extend(&wire[..5]);
/// assert_eq!(dec.next_frame().unwrap(), None);
/// dec.extend(&wire[5..]);
/// assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"one"[..]));
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read offset into `buf`; consumed bytes are compacted lazily.
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder { buf: Vec::new(), start: 0 }
    }

    /// Appends raw stream bytes to the internal buffer.
    pub fn extend(&mut self, chunk: &[u8]) {
        // Compact when the consumed prefix dominates, to bound memory.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Attempts to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(payload))`
    /// for a complete valid frame, and an error when the stream is corrupt
    /// (after which the decoder must be discarded along with its connection).
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLong`] for an oversized length prefix,
    /// [`FrameError::BadChecksum`] when the payload fails verification.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLong { claimed: len });
        }
        let expected = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = avail[HEADER_LEN..HEADER_LEN + len].to_vec();
        let actual = crc32c(&payload);
        if actual != expected {
            return Err(FrameError::BadChecksum { expected, actual });
        }
        self.start += HEADER_LEN + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_frame() {
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(b"hello zab"));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"hello zab"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn empty_payload_frame() {
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(b""));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut wire = encode_frame(b"a");
        wire.extend(encode_frame(b"bb"));
        wire.extend(encode_frame(b"ccc"));
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"a"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"bb"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"ccc"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let wire = encode_frame(b"fragmented");
        let mut dec = FrameDecoder::new();
        for (i, &b) in wire.iter().enumerate() {
            dec.extend(&[b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(got, None, "frame completed early at byte {i}");
            } else {
                assert_eq!(got.as_deref(), Some(&b"fragmented"[..]));
            }
        }
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut wire = encode_frame(b"sensitive");
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadChecksum { .. })));
    }

    #[test]
    fn oversized_length_prefix_detected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::TooLong { .. })));
    }

    #[test]
    fn compaction_preserves_stream_position() {
        let mut dec = FrameDecoder::new();
        // Push enough small frames to trigger internal compaction repeatedly.
        let frame = encode_frame(&[7u8; 100]);
        for _ in 0..200 {
            dec.extend(&frame);
        }
        for _ in 0..200 {
            assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&[7u8; 100][..]));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending_len(), 0);
    }
}
