//! Length-prefixed, checksummed frames.
//!
//! A frame on a byte stream is laid out as:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32c: u32 LE | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! `len` counts only the payload. The CRC covers only the payload; a frame
//! whose checksum does not match is reported as corruption, which the
//! transport treats as a broken connection (Zab's channel assumption is that
//! a channel either delivers intact data in order or fails).
//!
//! [`FrameDecoder`] is incremental: feed it arbitrary chunks of a stream
//! with [`FrameDecoder::extend`] (or pre-owned buffers, copy-free, with
//! [`FrameDecoder::extend_bytes`]) and drain complete frames with
//! [`FrameDecoder::next_frame`].
//!
//! # Buffer ownership
//!
//! The decoder keeps the stream as a queue of refcounted [`Bytes`]
//! segments — one per `extend` call — instead of one flat `Vec<u8>`.
//! [`FrameDecoder::next_frame`] returns the payload as a zero-copy *view*
//! of its segment whenever the frame does not straddle a segment boundary
//! (the overwhelmingly common case: a socket read usually delivers whole
//! frames). Only a frame torn across reads is reassembled by copying.
//!
//! On the write side, [`frame_header`] computes the header for a payload
//! given as scattered parts, so senders can hand `[header, part, …]` to a
//! vectored write instead of concatenating into a fresh allocation;
//! [`encode_frame_into`] is the contiguous-buffer equivalent (one copy of
//! each part, no intermediate buffer).

use crate::crc32c::Crc32c;
use bytes::Bytes;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Frame header size in bytes: length prefix + checksum.
pub const HEADER_LEN: usize = 8;

/// Maximum accepted payload length (64 MiB).
///
/// Large enough for a SNAP-style full-state transfer chunk, small enough
/// that a corrupt length prefix cannot trigger an absurd allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Decoding failure on a framed stream. Both variants are unrecoverable for
/// the connection that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    TooLong {
        /// Claimed payload length.
        claimed: usize,
    },
    /// The payload checksum did not match.
    BadChecksum {
        /// Checksum carried in the header.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong { claimed } => {
                write!(f, "frame length {claimed} exceeds limit {MAX_FRAME_LEN}")
            }
            FrameError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, computed {actual:#010x}"
                )
            }
        }
    }
}

impl Error for FrameError {}

/// Computes the frame header for a payload given as scattered `parts`.
///
/// The parts are treated as one logical payload (their concatenation);
/// the returned header can be passed to a vectored write together with
/// the parts themselves, so no contiguous copy of the payload is ever
/// made.
///
/// # Panics
///
/// Panics if the combined part length exceeds [`MAX_FRAME_LEN`].
pub fn frame_header(parts: &[&[u8]]) -> [u8; HEADER_LEN] {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    assert!(len <= MAX_FRAME_LEN, "payload exceeds MAX_FRAME_LEN");
    let mut crc = Crc32c::new();
    for part in parts {
        crc.update(part);
    }
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&(len as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc.finish().to_le_bytes());
    header
}

/// Appends a complete frame for the scattered payload `parts` onto `out`.
///
/// Each part is copied exactly once, directly into `out` — there is no
/// intermediate concatenation buffer.
///
/// # Panics
///
/// Panics if the combined part length exceeds [`MAX_FRAME_LEN`].
pub fn encode_frame_into(out: &mut Vec<u8>, parts: &[&[u8]]) {
    let header = frame_header(parts);
    let len: usize = parts.iter().map(|p| p.len()).sum();
    out.reserve(HEADER_LEN + len);
    out.extend_from_slice(&header);
    for part in parts {
        out.extend_from_slice(part);
    }
}

/// Encodes `payload` into a self-contained frame ready to write to a stream.
///
/// # Panics
///
/// Panics if `payload.len() > MAX_FRAME_LEN`; callers size protocol messages
/// below the limit by construction.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(&mut out, &[payload]);
    out
}

/// Incremental frame decoder over a byte stream.
///
/// Yields each complete payload as [`Bytes`]: a zero-copy view of the
/// buffered stream segment it arrived in, unless the frame straddled two
/// `extend` calls (then it is reassembled with one copy).
///
/// # Example
///
/// ```
/// use zab_wire::frame::{encode_frame, FrameDecoder};
///
/// let wire = encode_frame(b"one");
/// let mut dec = FrameDecoder::new();
/// // Bytes may arrive in arbitrary chunks.
/// dec.extend(&wire[..5]);
/// assert_eq!(dec.next_frame().unwrap(), None);
/// dec.extend(&wire[5..]);
/// assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"one"[..]));
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Unconsumed stream segments in arrival order. Consumed prefixes are
    /// tracked by `start` (offset into the front segment); fully consumed
    /// segments are popped, so memory is bounded by the undecoded suffix.
    segments: VecDeque<Bytes>,
    /// Consumed bytes at the front of `segments[0]`.
    start: usize,
    /// Total unconsumed bytes across all segments.
    pending: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw stream bytes to the internal buffer (one copy, into an
    /// owned segment that subsequent decoding slices without copying).
    pub fn extend(&mut self, chunk: &[u8]) {
        self.extend_bytes(Bytes::copy_from_slice(chunk));
    }

    /// Appends an already-owned buffer to the internal queue, copy-free.
    pub fn extend_bytes(&mut self, chunk: Bytes) {
        if chunk.is_empty() {
            return;
        }
        self.pending += chunk.len();
        self.segments.push_back(chunk);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn pending_len(&self) -> usize {
        self.pending
    }

    /// Copies the unconsumed bytes at logical offset `offset..offset + out.len()`
    /// into `out`. Caller guarantees the range is in bounds.
    fn peek_into(&self, mut offset: usize, out: &mut [u8]) {
        let mut written = 0;
        offset += self.start;
        for seg in &self.segments {
            if offset >= seg.len() {
                offset -= seg.len();
                continue;
            }
            let n = (seg.len() - offset).min(out.len() - written);
            out[written..written + n].copy_from_slice(&seg[offset..offset + n]);
            written += n;
            offset = 0;
            if written == out.len() {
                return;
            }
        }
        debug_assert_eq!(written, out.len(), "peek_into out of bounds");
    }

    /// Checksums the unconsumed bytes at logical offset `offset..offset + len`
    /// without materializing them. Caller guarantees the range is in bounds.
    fn crc_range(&self, mut offset: usize, mut len: usize) -> u32 {
        let mut crc = Crc32c::new();
        offset += self.start;
        for seg in &self.segments {
            if len == 0 {
                break;
            }
            if offset >= seg.len() {
                offset -= seg.len();
                continue;
            }
            let n = (seg.len() - offset).min(len);
            crc.update(&seg[offset..offset + n]);
            len -= n;
            offset = 0;
        }
        debug_assert_eq!(len, 0, "crc_range out of bounds");
        crc.finish()
    }

    /// Extracts the unconsumed bytes at logical offset `offset..offset + len`
    /// as `Bytes`: a zero-copy slice when the range lies within one segment,
    /// otherwise one reassembling copy. Caller guarantees bounds.
    fn view(&self, mut offset: usize, len: usize) -> Bytes {
        if len == 0 {
            return Bytes::new();
        }
        offset += self.start;
        let mut iter = self.segments.iter();
        let mut seg = iter.next().expect("view on empty decoder");
        while offset >= seg.len() {
            offset -= seg.len();
            seg = iter.next().expect("view out of bounds");
        }
        if offset + len <= seg.len() {
            return seg.slice(offset..offset + len);
        }
        // Frame torn across segments: reassemble with one copy.
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&seg[offset..]);
        while out.len() < len {
            let seg = iter.next().expect("view out of bounds");
            let n = (len - out.len()).min(seg.len());
            out.extend_from_slice(&seg[..n]);
        }
        Bytes::from(out)
    }

    /// Drops `n` unconsumed bytes from the front, releasing whole segments
    /// back to their refcounts as they drain.
    fn consume(&mut self, mut n: usize) {
        self.pending -= n;
        while n > 0 {
            let front_len = self.segments[0].len() - self.start;
            if n < front_len {
                self.start += n;
                return;
            }
            n -= front_len;
            self.segments.pop_front();
            self.start = 0;
        }
    }

    /// Attempts to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(payload))`
    /// for a complete valid frame, and an error when the stream is corrupt
    /// (after which the decoder must be discarded along with its connection).
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLong`] for an oversized length prefix,
    /// [`FrameError::BadChecksum`] when the payload fails verification.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.pending < HEADER_LEN {
            return Ok(None);
        }
        let mut header = [0u8; HEADER_LEN];
        self.peek_into(0, &mut header);
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLong { claimed: len });
        }
        let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if self.pending < HEADER_LEN + len {
            return Ok(None);
        }
        let actual = self.crc_range(HEADER_LEN, len);
        if actual != expected {
            return Err(FrameError::BadChecksum { expected, actual });
        }
        let payload = self.view(HEADER_LEN, len);
        self.consume(HEADER_LEN + len);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_frame() {
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(b"hello zab"));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"hello zab"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn empty_payload_frame() {
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(b""));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut wire = encode_frame(b"a");
        wire.extend(encode_frame(b"bb"));
        wire.extend(encode_frame(b"ccc"));
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"a"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"bb"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"ccc"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let wire = encode_frame(b"fragmented");
        let mut dec = FrameDecoder::new();
        for (i, &b) in wire.iter().enumerate() {
            dec.extend(&[b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(got, None, "frame completed early at byte {i}");
            } else {
                assert_eq!(got.as_deref(), Some(&b"fragmented"[..]));
            }
        }
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut wire = encode_frame(b"sensitive");
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadChecksum { .. })));
    }

    #[test]
    fn oversized_length_prefix_detected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::TooLong { .. })));
    }

    #[test]
    fn compaction_preserves_stream_position() {
        let mut dec = FrameDecoder::new();
        // Push enough small frames to exercise segment recycling.
        let frame = encode_frame(&[7u8; 100]);
        for _ in 0..200 {
            dec.extend(&frame);
        }
        for _ in 0..200 {
            assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&[7u8; 100][..]));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending_len(), 0);
    }

    #[test]
    fn whole_frame_in_one_segment_is_zero_copy() {
        // A frame delivered intact must come back as a view of the same
        // backing buffer, not a fresh allocation.
        let wire = Bytes::from(encode_frame(b"zero copy payload"));
        let mut dec = FrameDecoder::new();
        dec.extend_bytes(wire.clone());
        let payload = dec.next_frame().unwrap().unwrap();
        assert_eq!(payload, b"zero copy payload");
        let base = wire.as_ref().as_ptr() as usize;
        let view = payload.as_ref().as_ptr() as usize;
        assert_eq!(view, base + HEADER_LEN, "payload is not a view of the input");
    }

    #[test]
    fn torn_frame_across_segments_is_reassembled() {
        let wire = encode_frame(b"split across reads");
        let mut dec = FrameDecoder::new();
        let (a, b) = wire.split_at(HEADER_LEN + 5);
        dec.extend_bytes(Bytes::copy_from_slice(a));
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend_bytes(Bytes::copy_from_slice(b));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"split across reads"[..]));
        assert_eq!(dec.pending_len(), 0);
    }

    #[test]
    fn frame_header_matches_contiguous_encoding() {
        let contiguous = encode_frame(b"abcdef");
        let header = frame_header(&[b"ab", b"cd", b"ef"]);
        assert_eq!(&contiguous[..HEADER_LEN], &header);
        let mut out = Vec::new();
        encode_frame_into(&mut out, &[b"abc", b"", b"def"]);
        assert_eq!(out, contiguous);
    }

    #[test]
    fn vectored_parts_decode_like_one_payload() {
        let parts: [&[u8]; 3] = [b"zxid----", b"\x05\x00\x00\x00", b"delta"];
        let header = frame_header(&parts);
        let mut dec = FrameDecoder::new();
        dec.extend(&header);
        for part in parts {
            dec.extend(part);
        }
        let payload = dec.next_frame().unwrap().unwrap();
        assert_eq!(payload, b"zxid----\x05\x00\x00\x00delta");
    }

    #[test]
    fn consumed_segments_are_released() {
        let mut dec = FrameDecoder::new();
        dec.extend_bytes(Bytes::from(encode_frame(&[1u8; 64])));
        dec.extend_bytes(Bytes::from(encode_frame(&[2u8; 64])));
        assert!(dec.next_frame().unwrap().is_some());
        // First segment fully consumed: only the second remains queued.
        assert_eq!(dec.segments.len(), 1);
        assert!(dec.next_frame().unwrap().is_some());
        assert_eq!(dec.segments.len(), 0);
        assert_eq!(dec.pending_len(), 0);
    }

    #[test]
    fn crc_is_computed_across_segment_boundaries() {
        // Corrupt a byte that lands in the second segment of a torn frame.
        let mut wire = encode_frame(b"torn-and-corrupt");
        let n = wire.len();
        wire[n - 1] ^= 0x80;
        let mut dec = FrameDecoder::new();
        let (a, b) = wire.split_at(HEADER_LEN + 4);
        dec.extend(a);
        dec.extend(b);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadChecksum { .. })));
    }
}
