//! Property tests: the wire layer must round-trip everything and never
//! panic on hostile bytes.

use proptest::prelude::*;
use zab_wire::codec::{WireRead, WireWrite};
use zab_wire::crc32c::{crc32c, Crc32c};
use zab_wire::frame::{encode_frame, frame_header, FrameDecoder};

proptest! {
    #[test]
    fn primitives_round_trip(
        a in any::<u8>(),
        b in any::<u16>(),
        c in any::<u32>(),
        d in any::<u64>(),
        e in any::<i64>(),
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        s in "\\PC{0,64}",
        flag in any::<bool>(),
    ) {
        let mut buf = Vec::new();
        buf.put_u8_wire(a);
        buf.put_u16_le_wire(b);
        buf.put_u32_le_wire(c);
        buf.put_u64_le_wire(d);
        buf.put_i64_le_wire(e);
        buf.put_bytes_wire(&bytes);
        buf.put_str_wire(&s);
        buf.put_bool_wire(flag);

        let mut cur = buf.as_slice();
        prop_assert_eq!(cur.get_u8_wire().unwrap(), a);
        prop_assert_eq!(cur.get_u16_le_wire().unwrap(), b);
        prop_assert_eq!(cur.get_u32_le_wire().unwrap(), c);
        prop_assert_eq!(cur.get_u64_le_wire().unwrap(), d);
        prop_assert_eq!(cur.get_i64_le_wire().unwrap(), e);
        prop_assert_eq!(cur.get_bytes_wire().unwrap(), bytes.as_slice());
        prop_assert_eq!(cur.get_str_wire().unwrap(), s.as_str());
        prop_assert_eq!(cur.get_bool_wire().unwrap(), flag);
        prop_assert!(cur.is_empty());
    }

    /// Decoding arbitrary bytes never panics, only errors.
    #[test]
    fn codec_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut cur = data.as_slice();
        let _ = cur.get_bytes_wire();
        let mut cur = data.as_slice();
        let _ = cur.get_str_wire();
        let mut cur = data.as_slice();
        let _ = cur.get_u64_le_wire();
    }

    /// Incremental CRC equals one-shot CRC for any split.
    #[test]
    fn crc_streaming_equivalence(
        data in prop::collection::vec(any::<u8>(), 0..1024),
        splits in prop::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        let mut points: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        points.sort_unstable();
        let mut state = Crc32c::new();
        let mut prev = 0;
        for p in points {
            state.update(&data[prev..p]);
            prev = p;
        }
        state.update(&data[prev..]);
        prop_assert_eq!(state.finish(), crc32c(&data));
    }

    /// Frames survive any re-chunking of the byte stream.
    #[test]
    fn frames_round_trip_under_arbitrary_chunking(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..8),
        chunk_size in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(chunk_size) {
            dec.extend(chunk);
            while let Some(frame) = dec.next_frame().expect("no corruption") {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, payloads);
    }

    /// Coalesced batch writes (the transport sender's vectored layout:
    /// `frame_header` + payload per frame, many frames per write, writes
    /// split at arbitrary byte boundaries) decode to exactly the same
    /// payload sequence as one frame per write.
    #[test]
    fn coalesced_batches_decode_identically_to_single_writes(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..16),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        // Reference: one frame per write through its own extend().
        let mut reference = Vec::new();
        {
            let mut dec = FrameDecoder::new();
            for p in &payloads {
                dec.extend(&encode_frame(p));
                while let Some(frame) = dec.next_frame().expect("no corruption") {
                    reference.push(frame);
                }
            }
        }

        // Batched: the sender's iovec sequence h0,p0,h1,p1,... flattened,
        // then re-cut at random points to model partial write_vectored
        // progress and TCP segmentation.
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&frame_header(&[&p[..]]));
            wire.extend_from_slice(p);
        }
        let mut points: Vec<usize> = cuts.iter().map(|i| i.index(wire.len() + 1)).collect();
        points.sort_unstable();
        points.dedup();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut prev = 0;
        for p in points.into_iter().chain(std::iter::once(wire.len())) {
            dec.extend(&wire[prev..p]);
            prev = p;
            while let Some(frame) = dec.next_frame().expect("no corruption") {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, reference);
    }

    /// A corrupted byte anywhere in a frame is detected (or the frame
    /// simply doesn't complete) — never silently misdecoded.
    #[test]
    fn single_byte_corruption_never_yields_wrong_payload(
        payload in prop::collection::vec(any::<u8>(), 1..200),
        flip in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut wire = encode_frame(&payload);
        let pos = flip.index(wire.len());
        wire[pos] ^= 1 << bit;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        // Incomplete or detected corruption are both fine; only a frame
        // that decodes must match the original payload.
        if let Ok(Some(decoded)) = dec.next_frame() {
            prop_assert_eq!(decoded, payload.clone(),
                "corruption at byte {} produced a different payload", pos);
        }
    }

    /// The decoder never panics on arbitrary junk input.
    #[test]
    fn decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = FrameDecoder::new();
        dec.extend(&data);
        for _ in 0..4 {
            if dec.next_frame().is_err() {
                break;
            }
        }
    }
}
