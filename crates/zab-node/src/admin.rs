//! Admin HTTP endpoint: live telemetry over plain HTTP/1.0.
//!
//! One background thread serves three read-only routes from a
//! stdlib [`TcpListener`] (no framework, no new dependencies):
//!
//! - `GET /metrics` — the replica's full [`zab_metrics::Snapshot`] in
//!   Prometheus text exposition format,
//! - `GET /health` — role, epoch, last-committed zxid, per-peer
//!   reachability, and in-flight catch-up syncs (peer id plus chunks and
//!   bytes left to ship) as one JSON object,
//! - `GET /trace?last=N` — the flight recorder's current contents as
//!   Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`),
//!   optionally limited to the newest `N` events.
//!
//! The endpoint is unauthenticated and read-only; [`crate::NodeConfig`]
//! documents that it should bind loopback unless the network is trusted.

use crate::replica::Role;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use zab_metrics::Registry;
use zab_trace::{chrome_trace_json, zxid_display, Recorder};

/// Accept-loop poll cadence (the listener is non-blocking so the thread
/// can notice the stop flag).
const POLL_DELAY: Duration = Duration::from_millis(5);
/// Request-header cap; anything longer is dropped without a response.
const MAX_REQUEST_BYTES: usize = 4096;

/// Health facts only the event loop knows, shared with the admin thread.
/// The loop updates it as events arrive; `GET /health` reads it.
#[derive(Debug, Default)]
pub(crate) struct HealthState {
    /// Highest zxid this replica has committed (packed form).
    pub last_committed: u64,
    /// Per-peer reachability, keyed by server id.
    pub peers: BTreeMap<u64, PeerHealth>,
    /// Peers this replica is catch-up syncing right now (leaders only;
    /// empty elsewhere). Mirrors [`zab_core::Leader::syncing_peers`].
    pub syncing: Vec<SyncingPeer>,
    /// Configured dissemination topology (`"star"` or `"relay"`).
    pub topology: &'static str,
    /// Live relay plan as `(relay, members)` pairs: the whole plan on the
    /// leader, this node's own group on a relaying follower, empty
    /// otherwise. Mirrors [`zab_core::Zab::relay_topology`].
    pub relay_groups: Vec<(u64, Vec<u64>)>,
}

/// Live progress of one peer's catch-up sync, as served by `/health`.
#[derive(Debug, Clone)]
pub(crate) struct SyncingPeer {
    /// The syncing peer's server id.
    pub peer: u64,
    /// Sync chunks not yet shipped to it.
    pub chunks_remaining: u64,
    /// Budgeted payload bytes in those chunks.
    pub bytes_remaining: u64,
}

/// What this replica currently knows about one peer's channel.
#[derive(Debug, Default, Clone)]
pub(crate) struct PeerHealth {
    /// True once traffic has arrived from the peer and its channel has
    /// not broken since.
    pub reachable: bool,
    /// Consecutive failed outgoing dials (0 while connected).
    pub failed_attempts: u32,
}

impl HealthState {
    /// Fresh state tracking `peers` (self excluded by the caller).
    pub fn new(peers: impl IntoIterator<Item = u64>) -> HealthState {
        HealthState {
            last_committed: 0,
            peers: peers.into_iter().map(|p| (p, PeerHealth::default())).collect(),
            syncing: Vec::new(),
            topology: "star",
            relay_groups: Vec::new(),
        }
    }

    /// Traffic arrived from `peer`: it is reachable.
    pub fn peer_ok(&mut self, peer: u64) {
        let entry = self.peers.entry(peer).or_default();
        entry.reachable = true;
        entry.failed_attempts = 0;
    }

    /// The channel to/from `peer` broke.
    pub fn peer_down(&mut self, peer: u64) {
        self.peers.entry(peer).or_default().reachable = false;
    }

    /// An outgoing dial to `peer` failed (`attempt` consecutive so far).
    pub fn peer_failed(&mut self, peer: u64, attempt: u32) {
        let entry = self.peers.entry(peer).or_default();
        entry.reachable = false;
        entry.failed_attempts = attempt.saturating_add(1);
    }
}

/// The background HTTP responder. Dropping it stops the thread.
pub(crate) struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (port 0 picks a free port) and starts serving.
    pub fn start(
        addr: SocketAddr,
        node: u64,
        metrics: Arc<Registry>,
        recorder: Arc<Recorder>,
        role: Arc<Mutex<Role>>,
        health: Arc<Mutex<HealthState>>,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            serve_loop(listener, thread_stop, node, metrics, recorder, role, health);
        });
        Ok(AdminServer { addr: local, stop, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    node: u64,
    metrics: Arc<Registry>,
    recorder: Arc<Recorder>,
    role: Arc<Mutex<Role>>,
    health: Arc<Mutex<HealthState>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                handle_conn(stream, node, &metrics, &recorder, &role, &health);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_DELAY);
            }
            Err(_) => break,
        }
    }
}

fn handle_conn(
    mut stream: TcpStream,
    node: u64,
    metrics: &Registry,
    recorder: &Recorder,
    role: &Mutex<Role>,
    health: &Mutex<HealthState>,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    // Read until the header terminator; requests are a handful of lines.
    loop {
        if buf.len() >= MAX_REQUEST_BYTES {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let Some(line) = request.lines().next() else { return };
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain; charset=utf-8", "GET only\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            let body = metrics.snapshot().to_prometheus();
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body);
        }
        "/health" => {
            let body = health_json(node, role, health);
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/trace" => {
            let body = trace_json(recorder, query);
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        _ => {
            respond(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics, /health, /trace?last=N\n",
            );
        }
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Write);
}

fn health_json(node: u64, role: &Mutex<Role>, health: &Mutex<HealthState>) -> String {
    let role = *role.lock();
    let (last_committed, peers, syncing, topology, relay_groups) = {
        let h = health.lock();
        (h.last_committed, h.peers.clone(), h.syncing.clone(), h.topology, h.relay_groups.clone())
    };
    // `active` means "serving its role": an established leader or a
    // synced follower. `leader` is null while looking or faulted.
    let (role_str, active, leader) = match role {
        Role::Looking => ("looking", false, None),
        Role::Leading { established, .. } => ("leading", established, Some(node)),
        Role::Following { leader, active } => ("following", active, Some(leader.0)),
        Role::Faulted => ("faulted", false, None),
    };
    let epoch = match role {
        Role::Leading { epoch, .. } => u64::from(epoch.0),
        _ => last_committed >> 32,
    };
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"node\":{node},\"role\":\"{role_str}\",\"active\":{active},\"epoch\":{epoch},\"leader\":"
    );
    match leader {
        Some(l) => {
            let _ = write!(out, "{l}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"last_committed\":\"{}\",\"last_committed_zxid\":{last_committed},\"peers\":{{",
        zxid_display(last_committed)
    );
    for (i, (peer, ph)) in peers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{peer}\":{{\"reachable\":{},\"failed_attempts\":{}}}",
            ph.reachable, ph.failed_attempts
        );
    }
    out.push_str("},\"syncing\":[");
    for (i, s) in syncing.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"peer\":{},\"chunks_remaining\":{},\"bytes_remaining\":{}}}",
            s.peer, s.chunks_remaining, s.bytes_remaining
        );
    }
    let _ = write!(out, "],\"topology\":\"{topology}\",\"relay_groups\":{{");
    for (i, (relay, members)) in relay_groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{relay}\":[");
        for (j, m) in members.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{m}");
        }
        out.push(']');
    }
    out.push_str("}}");
    out
}

fn trace_json(recorder: &Recorder, query: Option<&str>) -> String {
    let mut events = recorder.snapshot();
    if let Some(last) = query.and_then(parse_last) {
        if events.len() > last {
            events.drain(..events.len() - last);
        }
    }
    chrome_trace_json(&events)
}

/// Extracts `last=N` from a query string; other parameters are ignored.
fn parse_last(query: &str) -> Option<usize> {
    query.split('&').find_map(|kv| kv.strip_prefix("last=")).and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zab_metrics::ManualClock;

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
        (head.to_string(), body.to_string())
    }

    fn server() -> (AdminServer, Arc<Recorder>, Arc<Mutex<HealthState>>) {
        let metrics = Arc::new(Registry::new());
        metrics.counter("core.proposals_proposed").add(7);
        metrics.histogram("node.commit_latency_ms").record(3);
        let clock = Arc::new(ManualClock::new());
        clock.set_micros(10);
        let recorder = Recorder::new(1, 16, clock);
        recorder.record(zab_trace::Stage::Submit, (4 << 32) | 1, 0);
        recorder.record(zab_trace::Stage::Deliver, (4 << 32) | 1, 0);
        let role = Arc::new(Mutex::new(Role::Looking));
        let health = Arc::new(Mutex::new(HealthState::new([2, 3])));
        let server = AdminServer::start(
            "127.0.0.1:0".parse().expect("addr"),
            1,
            metrics,
            Arc::clone(&recorder),
            role,
            Arc::clone(&health),
        )
        .expect("bind");
        (server, recorder, health)
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let (server, _, _) = server();
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(head.contains("text/plain; version=0.0.4"), "head: {head}");
        assert!(body.contains("core_proposals_proposed 7"), "body: {body}");
        assert!(body.contains("node_commit_latency_ms_count 1"), "body: {body}");
    }

    #[test]
    fn health_route_serves_json_with_peers() {
        let (server, _, health) = server();
        health.lock().peer_ok(2);
        health.lock().peer_failed(3, 4);
        health.lock().last_committed = (4 << 32) | 9;
        health.lock().syncing =
            vec![SyncingPeer { peer: 3, chunks_remaining: 2, bytes_remaining: 4096 }];
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.contains("\"role\":\"looking\""), "body: {body}");
        assert!(body.contains("\"last_committed\":\"4:9\""), "body: {body}");
        assert!(body.contains("\"2\":{\"reachable\":true,\"failed_attempts\":0}"), "body: {body}");
        assert!(body.contains("\"3\":{\"reachable\":false,\"failed_attempts\":5}"), "body: {body}");
        assert!(
            body.contains(
                "\"syncing\":[{\"peer\":3,\"chunks_remaining\":2,\"bytes_remaining\":4096}]"
            ),
            "body: {body}"
        );
        assert!(body.contains("\"topology\":\"star\""), "body: {body}");
        assert!(body.contains("\"relay_groups\":{}"), "body: {body}");
    }

    #[test]
    fn health_route_reports_relay_topology() {
        let (server, _, health) = server();
        {
            let mut h = health.lock();
            h.topology = "relay";
            h.relay_groups = vec![(2, vec![3, 4]), (5, vec![6])];
        }
        let (_, body) = get(server.addr(), "/health");
        assert!(body.contains("\"topology\":\"relay\""), "body: {body}");
        assert!(body.contains("\"relay_groups\":{\"2\":[3,4],\"5\":[6]}"), "body: {body}");
    }

    #[test]
    fn trace_route_serves_chrome_json_and_honors_last() {
        let (server, _, _) = server();
        let (head, body) = get(server.addr(), "/trace");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.starts_with("{\"traceEvents\":["), "body: {body}");
        assert!(body.contains("\"submit\""), "body: {body}");
        let (_, limited) = get(server.addr(), "/trace?last=1");
        assert!(!limited.contains("\"submit\""), "limited: {limited}");
        assert!(limited.contains("\"deliver\""), "limited: {limited}");
    }

    #[test]
    fn unknown_route_is_404_and_post_is_405() {
        let (server, _, _) = server();
        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "head: {head}");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 405"), "response: {response}");
    }

    #[test]
    fn parse_last_picks_out_the_parameter() {
        assert_eq!(parse_last("last=5"), Some(5));
        assert_eq!(parse_last("foo=1&last=12"), Some(12));
        assert_eq!(parse_last("foo=1"), None);
        assert_eq!(parse_last("last=nope"), None);
    }
}
