//! Admin HTTP endpoint: live telemetry over plain HTTP/1.0.
//!
//! One background thread serves three read-only routes from a
//! stdlib [`TcpListener`] (no framework, no new dependencies):
//!
//! - `GET /metrics` — the replica's full [`zab_metrics::Snapshot`] in
//!   Prometheus text exposition format,
//! - `GET /health` — role, epoch, last-committed zxid, per-peer
//!   reachability, per-follower replication lag (leaders), the rolling
//!   delivery hash with its stride checkpoints, a commit-latency
//!   p50/p99 summary, and in-flight catch-up syncs as one JSON object,
//! - `GET /trace?last=N&zxid=Z&format=raw` — the flight recorder's
//!   current contents as Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`), optionally limited to the newest `N` events,
//!   filtered to one zxid (`Z` as packed decimal or `epoch:counter`), or
//!   rendered as a raw field-preserving array (`format=raw`) for
//!   re-ingestion by `zabctl`.
//!
//! Malformed input gets an HTTP error, not a hang: unknown paths 404,
//! non-GET 405, bad request lines / oversized headers / malformed query
//! parameters 400, and a request that dribbles in slower than
//! [`REQUEST_DEADLINE`] is cut off with 408 (slow-loris bound).
//!
//! The endpoint is unauthenticated and read-only; [`crate::NodeConfig`]
//! documents that it should bind loopback unless the network is trusted.

use crate::replica::Role;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zab_metrics::Registry;
use zab_trace::{chrome_trace_json, raw_trace_json, zxid_display, Recorder};

/// Accept-loop poll cadence (the listener is non-blocking so the thread
/// can notice the stop flag). Kept coarse deliberately: on small hosts
/// every wake preempts a replica thread, and scrapers poll at 100 ms+, so
/// accept latency of up to one tick is invisible while the idle cost
/// (wakeups/sec × context switch) scales down 1:1 with the cadence.
const POLL_DELAY: Duration = Duration::from_millis(20);
/// Request-header cap; anything longer is answered with 400.
const MAX_REQUEST_BYTES: usize = 4096;
/// Total time a client gets to deliver its request head. A peer that
/// dribbles bytes slower than this (slow loris) is answered 408 and cut
/// off, so one stalled socket can never wedge the single admin thread for
/// longer than the deadline.
const REQUEST_DEADLINE: Duration = Duration::from_millis(1500);
/// Per-read timeout inside the deadline window.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Health facts only the event loop knows, shared with the admin thread.
/// The loop updates it as events arrive; `GET /health` reads it.
#[derive(Debug, Default)]
pub(crate) struct HealthState {
    /// Highest zxid this replica has committed (packed form).
    pub last_committed: u64,
    /// Per-peer reachability, keyed by server id.
    pub peers: BTreeMap<u64, PeerHealth>,
    /// Peers this replica is catch-up syncing right now (leaders only;
    /// empty elsewhere). Mirrors [`zab_core::Leader::syncing_peers`].
    pub syncing: Vec<SyncingPeer>,
    /// Configured dissemination topology (`"star"` or `"relay"`).
    pub topology: &'static str,
    /// Live relay plan as `(relay, members)` pairs: the whole plan on the
    /// leader, this node's own group on a relaying follower, empty
    /// otherwise. Mirrors [`zab_core::Zab::relay_topology`].
    pub relay_groups: Vec<(u64, Vec<u64>)>,
    /// Per-follower replication lag against the committed frontier
    /// (leaders only; empty elsewhere). Mirrors
    /// [`zab_core::Leader::follower_lags`].
    pub lag: Vec<LagEntry>,
    /// Rolling delivered-prefix hash, the watchdog's agreement witness.
    pub delivery: DeliveryState,
}

/// One follower's replication lag, as served by `/health`.
#[derive(Debug, Clone)]
pub(crate) struct LagEntry {
    /// The follower's server id.
    pub peer: u64,
    /// Its cumulative ack watermark (packed), if it is active.
    pub acked_zxid: Option<u64>,
    /// Committed txns it has not acked, when O(1)-computable.
    pub lag_txns: Option<u64>,
    /// True while a catch-up sync stream is open to it.
    pub syncing: bool,
}

/// Snapshot of the node's [`zab_core::DeliveryHash`], as served by
/// `/health`.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeliveryState {
    /// First zxid of the current hash chain (packed; 0 before any
    /// delivery).
    pub anchor: u64,
    /// Last delivered zxid folded into the chain (packed).
    pub last: u64,
    /// Chain hash over `anchor..=last`.
    pub hash: u64,
    /// Stride checkpoints `(zxid, hash)`, oldest first.
    pub checkpoints: Vec<(u64, u64)>,
}

/// Live progress of one peer's catch-up sync, as served by `/health`.
#[derive(Debug, Clone)]
pub(crate) struct SyncingPeer {
    /// The syncing peer's server id.
    pub peer: u64,
    /// Sync chunks not yet shipped to it.
    pub chunks_remaining: u64,
    /// Budgeted payload bytes in those chunks.
    pub bytes_remaining: u64,
}

/// What this replica currently knows about one peer's channel.
#[derive(Debug, Default, Clone)]
pub(crate) struct PeerHealth {
    /// True once traffic has arrived from the peer and its channel has
    /// not broken since.
    pub reachable: bool,
    /// Consecutive failed outgoing dials (0 while connected).
    pub failed_attempts: u32,
}

impl HealthState {
    /// Fresh state tracking `peers` (self excluded by the caller).
    pub fn new(peers: impl IntoIterator<Item = u64>) -> HealthState {
        HealthState {
            last_committed: 0,
            peers: peers.into_iter().map(|p| (p, PeerHealth::default())).collect(),
            syncing: Vec::new(),
            topology: "star",
            relay_groups: Vec::new(),
            lag: Vec::new(),
            delivery: DeliveryState::default(),
        }
    }

    /// Traffic arrived from `peer`: it is reachable.
    pub fn peer_ok(&mut self, peer: u64) {
        let entry = self.peers.entry(peer).or_default();
        entry.reachable = true;
        entry.failed_attempts = 0;
    }

    /// The channel to/from `peer` broke.
    pub fn peer_down(&mut self, peer: u64) {
        self.peers.entry(peer).or_default().reachable = false;
    }

    /// An outgoing dial to `peer` failed (`attempt` consecutive so far).
    pub fn peer_failed(&mut self, peer: u64, attempt: u32) {
        let entry = self.peers.entry(peer).or_default();
        entry.reachable = false;
        entry.failed_attempts = attempt.saturating_add(1);
    }
}

/// The background HTTP responder. Dropping it stops the thread.
pub(crate) struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (port 0 picks a free port) and starts serving.
    pub fn start(
        addr: SocketAddr,
        node: u64,
        metrics: Arc<Registry>,
        recorder: Arc<Recorder>,
        role: Arc<Mutex<Role>>,
        health: Arc<Mutex<HealthState>>,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            serve_loop(listener, thread_stop, node, metrics, recorder, role, health);
        });
        Ok(AdminServer { addr: local, stop, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    node: u64,
    metrics: Arc<Registry>,
    recorder: Arc<Recorder>,
    role: Arc<Mutex<Role>>,
    health: Arc<Mutex<HealthState>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                handle_conn(stream, node, &metrics, &recorder, &role, &health);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_DELAY);
            }
            Err(_) => break,
        }
    }
}

fn handle_conn(
    mut stream: TcpStream,
    node: u64,
    metrics: &Registry,
    recorder: &Recorder,
    role: &Mutex<Role>,
    health: &Mutex<HealthState>,
) {
    let _ = stream.set_nonblocking(false);
    let start = Instant::now();
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    // Read until the header terminator, bounded in both size and time: an
    // oversized head is a 400, a head that has not fully arrived by
    // REQUEST_DEADLINE is a 408 (slow loris), and each individual read
    // waits at most READ_TIMEOUT so the deadline is actually observed.
    loop {
        if buf.len() >= MAX_REQUEST_BYTES {
            respond(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "head too large\n",
            );
            return;
        }
        let remaining = match REQUEST_DEADLINE.checked_sub(start.elapsed()) {
            Some(r) if !r.is_zero() => r,
            _ => {
                respond(
                    &mut stream,
                    "408 Request Timeout",
                    "text/plain; charset=utf-8",
                    "request head too slow\n",
                );
                return;
            }
        };
        let _ = stream.set_read_timeout(Some(remaining.min(READ_TIMEOUT)));
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            // A read timeout is not the deadline: keep looping, the
            // deadline check above decides when to give up.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let Some(line) = request.lines().next() else {
        respond(&mut stream, "400 Bad Request", "text/plain; charset=utf-8", "empty request\n");
        return;
    };
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) if !m.is_empty() => (m, t),
        _ => {
            respond(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "malformed request line\n",
            );
            return;
        }
    };
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain; charset=utf-8", "GET only\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            let body = metrics.snapshot().to_prometheus();
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body);
        }
        "/health" => {
            let body = health_json(node, metrics, role, health);
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/trace" => match parse_trace_query(query) {
            Ok(q) => {
                let body = trace_json(recorder, &q);
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            Err(e) => {
                respond(
                    &mut stream,
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    &format!("{e}\n"),
                );
            }
        },
        _ => {
            respond(
                &mut stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics, /health, /trace?last=N\n",
            );
        }
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Write);
}

fn health_json(
    node: u64,
    metrics: &Registry,
    role: &Mutex<Role>,
    health: &Mutex<HealthState>,
) -> String {
    let role = *role.lock();
    let (last_committed, peers, syncing, topology, relay_groups, lag, delivery) = {
        let h = health.lock();
        (
            h.last_committed,
            h.peers.clone(),
            h.syncing.clone(),
            h.topology,
            h.relay_groups.clone(),
            h.lag.clone(),
            h.delivery.clone(),
        )
    };
    // `active` means "serving its role": an established leader or a
    // synced follower. `leader` is null while looking or faulted.
    let (role_str, active, leader) = match role {
        Role::Looking => ("looking", false, None),
        Role::Leading { established, .. } => ("leading", established, Some(node)),
        Role::Following { leader, active } => ("following", active, Some(leader.0)),
        Role::Faulted => ("faulted", false, None),
    };
    let epoch = match role {
        Role::Leading { epoch, .. } => u64::from(epoch.0),
        _ => last_committed >> 32,
    };
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"node\":{node},\"role\":\"{role_str}\",\"active\":{active},\"epoch\":{epoch},\"leader\":"
    );
    match leader {
        Some(l) => {
            let _ = write!(out, "{l}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"last_committed\":\"{}\",\"last_committed_zxid\":{last_committed},\"peers\":{{",
        zxid_display(last_committed)
    );
    for (i, (peer, ph)) in peers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{peer}\":{{\"reachable\":{},\"failed_attempts\":{}}}",
            ph.reachable, ph.failed_attempts
        );
    }
    out.push_str("},\"syncing\":[");
    for (i, s) in syncing.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"peer\":{},\"chunks_remaining\":{},\"bytes_remaining\":{}}}",
            s.peer, s.chunks_remaining, s.bytes_remaining
        );
    }
    let _ = write!(out, "],\"topology\":\"{topology}\",\"relay_groups\":{{");
    for (i, (relay, members)) in relay_groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{relay}\":[");
        for (j, m) in members.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{m}");
        }
        out.push(']');
    }
    out.push_str("},\"lag\":[");
    for (i, l) in lag.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"peer\":{},\"acked_zxid\":", l.peer);
        match l.acked_zxid {
            Some(z) => {
                let _ = write!(out, "{z},\"acked\":\"{}\"", zxid_display(z));
            }
            None => out.push_str("null,\"acked\":null"),
        }
        out.push_str(",\"lag_txns\":");
        match l.lag_txns {
            Some(n) => {
                let _ = write!(out, "{n}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"syncing\":{}}}", l.syncing);
    }
    // Hashes render as fixed-width hex strings: u64 does not survive a
    // round-trip through JSON doubles.
    let _ = write!(
        out,
        "],\"delivery\":{{\"anchor_zxid\":{},\"last_zxid\":{},\"hash\":\"{:016x}\",\
         \"checkpoints\":[",
        delivery.anchor, delivery.last, delivery.hash
    );
    for (i, (z, h)) in delivery.checkpoints.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{z},\"{h:016x}\"]");
    }
    // Commit-latency summary straight from the node's histogram, using the
    // interpolated estimator — operators get p50/p99 from /health without
    // running a bench.
    let lat = metrics.histogram("node.commit_latency_ms").snapshot();
    let _ = write!(
        out,
        "]}},\"commit_latency_ms\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}}}",
        lat.count,
        lat.quantile(0.5),
        lat.quantile(0.99),
        lat.max
    );
    out
}

/// Parsed `/trace` query parameters.
#[derive(Debug, Default, PartialEq, Eq)]
struct TraceQuery {
    /// Keep only the newest N events.
    last: Option<usize>,
    /// Keep only events for this packed zxid (point events and the
    /// storage spans covering it).
    zxid: Option<u64>,
    /// Serve raw field-preserving JSON instead of Chrome trace format.
    raw: bool,
}

/// Parses a `/trace` query string. Unknown parameters are ignored (future
/// compatibility); malformed values for known parameters are a 400.
fn parse_trace_query(query: Option<&str>) -> Result<TraceQuery, &'static str> {
    let mut out = TraceQuery::default();
    let Some(query) = query else { return Ok(out) };
    for kv in query.split('&').filter(|kv| !kv.is_empty()) {
        if let Some(v) = kv.strip_prefix("last=") {
            out.last = Some(v.parse().map_err(|_| "malformed last= parameter")?);
        } else if let Some(v) = kv.strip_prefix("zxid=") {
            out.zxid = Some(parse_zxid(v).ok_or("malformed zxid= parameter")?);
        } else if let Some(v) = kv.strip_prefix("format=") {
            out.raw = match v {
                "raw" => true,
                "chrome" => false,
                _ => return Err("malformed format= parameter (raw|chrome)"),
            };
        }
    }
    Ok(out)
}

/// Parses a zxid as packed decimal (`4294967297`) or `epoch:counter`
/// (`1:1`).
fn parse_zxid(s: &str) -> Option<u64> {
    if let Some((e, c)) = s.split_once(':') {
        let epoch: u32 = e.parse().ok()?;
        let counter: u32 = c.parse().ok()?;
        Some(((epoch as u64) << 32) | counter as u64)
    } else {
        s.parse().ok()
    }
}

fn trace_json(recorder: &Recorder, query: &TraceQuery) -> String {
    let mut events = recorder.snapshot();
    if let Some(z) = query.zxid {
        // A point event matches exactly; a storage span matches when the
        // zxid falls inside its range — the append/fsync the txn rode in.
        events.retain(|e| if e.is_span() { e.zxid <= z && z <= e.zxid_end } else { e.zxid == z });
    }
    if let Some(last) = query.last {
        if events.len() > last {
            events.drain(..events.len() - last);
        }
    }
    if query.raw {
        raw_trace_json(&events)
    } else {
        chrome_trace_json(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zab_metrics::ManualClock;

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
        (head.to_string(), body.to_string())
    }

    fn server() -> (AdminServer, Arc<Recorder>, Arc<Mutex<HealthState>>) {
        let metrics = Arc::new(Registry::new());
        metrics.counter("core.proposals_proposed").add(7);
        metrics.histogram("node.commit_latency_ms").record(3);
        let clock = Arc::new(ManualClock::new());
        clock.set_micros(10);
        let recorder = Recorder::new(1, 16, clock);
        recorder.record(zab_trace::Stage::Submit, (4 << 32) | 1, 0);
        recorder.record(zab_trace::Stage::Deliver, (4 << 32) | 1, 0);
        let role = Arc::new(Mutex::new(Role::Looking));
        let health = Arc::new(Mutex::new(HealthState::new([2, 3])));
        let server = AdminServer::start(
            "127.0.0.1:0".parse().expect("addr"),
            1,
            metrics,
            Arc::clone(&recorder),
            role,
            Arc::clone(&health),
        )
        .expect("bind");
        (server, recorder, health)
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let (server, _, _) = server();
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(head.contains("text/plain; version=0.0.4"), "head: {head}");
        assert!(body.contains("core_proposals_proposed 7"), "body: {body}");
        assert!(body.contains("node_commit_latency_ms_count 1"), "body: {body}");
    }

    #[test]
    fn health_route_serves_json_with_peers() {
        let (server, _, health) = server();
        health.lock().peer_ok(2);
        health.lock().peer_failed(3, 4);
        health.lock().last_committed = (4 << 32) | 9;
        health.lock().syncing =
            vec![SyncingPeer { peer: 3, chunks_remaining: 2, bytes_remaining: 4096 }];
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.contains("\"role\":\"looking\""), "body: {body}");
        assert!(body.contains("\"last_committed\":\"4:9\""), "body: {body}");
        assert!(body.contains("\"2\":{\"reachable\":true,\"failed_attempts\":0}"), "body: {body}");
        assert!(body.contains("\"3\":{\"reachable\":false,\"failed_attempts\":5}"), "body: {body}");
        assert!(
            body.contains(
                "\"syncing\":[{\"peer\":3,\"chunks_remaining\":2,\"bytes_remaining\":4096}]"
            ),
            "body: {body}"
        );
        assert!(body.contains("\"topology\":\"star\""), "body: {body}");
        assert!(body.contains("\"relay_groups\":{}"), "body: {body}");
    }

    #[test]
    fn health_route_reports_relay_topology() {
        let (server, _, health) = server();
        {
            let mut h = health.lock();
            h.topology = "relay";
            h.relay_groups = vec![(2, vec![3, 4]), (5, vec![6])];
        }
        let (_, body) = get(server.addr(), "/health");
        assert!(body.contains("\"topology\":\"relay\""), "body: {body}");
        assert!(body.contains("\"relay_groups\":{\"2\":[3,4],\"5\":[6]}"), "body: {body}");
    }

    #[test]
    fn trace_route_serves_chrome_json_and_honors_last() {
        let (server, _, _) = server();
        let (head, body) = get(server.addr(), "/trace");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.starts_with("{\"traceEvents\":["), "body: {body}");
        assert!(body.contains("\"submit\""), "body: {body}");
        let (_, limited) = get(server.addr(), "/trace?last=1");
        assert!(!limited.contains("\"submit\""), "limited: {limited}");
        assert!(limited.contains("\"deliver\""), "limited: {limited}");
    }

    #[test]
    fn unknown_route_is_404_and_post_is_405() {
        let (server, _, _) = server();
        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "head: {head}");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 405"), "response: {response}");
    }

    #[test]
    fn parse_trace_query_handles_parameters() {
        assert_eq!(parse_trace_query(None), Ok(TraceQuery::default()));
        assert_eq!(parse_trace_query(Some("last=5")).unwrap().last, Some(5));
        assert_eq!(parse_trace_query(Some("foo=1&last=12")).unwrap().last, Some(12));
        assert_eq!(parse_trace_query(Some("foo=1")).unwrap().last, None);
        assert!(parse_trace_query(Some("last=nope")).is_err());
        assert_eq!(parse_trace_query(Some("zxid=4:1")).unwrap().zxid, Some((4 << 32) | 1));
        assert_eq!(parse_trace_query(Some("zxid=17179869185")).unwrap().zxid, Some((4 << 32) | 1));
        assert!(parse_trace_query(Some("zxid=4:")).is_err());
        assert!(parse_trace_query(Some("zxid=wat")).is_err());
        assert!(parse_trace_query(Some("format=raw")).unwrap().raw);
        assert!(!parse_trace_query(Some("format=chrome")).unwrap().raw);
        assert!(parse_trace_query(Some("format=xml")).is_err());
    }

    #[test]
    fn trace_zxid_filter_hits_misses_and_rejects_malformed() {
        let (server, _, _) = server();
        // Exact hit: the recorder holds submit+deliver for zxid 4:1.
        let (head, body) = get(server.addr(), "/trace?zxid=4:1");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.contains("\"submit\"") && body.contains("\"deliver\""), "body: {body}");
        // Miss: a zxid nobody recorded yields a valid, empty trace.
        let (head, body) = get(server.addr(), "/trace?zxid=9:9");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(!body.contains("\"submit\""), "body: {body}");
        assert_eq!(body, "{\"traceEvents\":[]}");
        // Malformed: 400, not a silent full dump.
        let (head, _) = get(server.addr(), "/trace?zxid=nope");
        assert!(head.starts_with("HTTP/1.0 400"), "head: {head}");
    }

    #[test]
    fn trace_raw_format_round_trips_fields() {
        let (server, _, _) = server();
        let (head, body) = get(server.addr(), "/trace?format=raw&zxid=4:1");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.starts_with('['), "body: {body}");
        assert!(body.contains("\"stage\":\"submit\""), "body: {body}");
        assert!(body.contains(&format!("\"zxid\":{}", (4u64 << 32) | 1)), "body: {body}");
        assert!(body.contains("\"node\":1"), "body: {body}");
    }

    #[test]
    fn health_reports_lag_delivery_and_latency_quantiles() {
        let (server, _, health) = server();
        {
            let mut h = health.lock();
            h.lag = vec![
                LagEntry {
                    peer: 2,
                    acked_zxid: Some((4 << 32) | 7),
                    lag_txns: Some(2),
                    syncing: false,
                },
                LagEntry { peer: 3, acked_zxid: None, lag_txns: None, syncing: true },
            ];
            h.delivery = DeliveryState {
                anchor: (4 << 32) | 1,
                last: (4 << 32) | 9,
                hash: 0xdead_beef,
                checkpoints: vec![((4 << 32) | 64, 0xabc)],
            };
        }
        let (_, body) = get(server.addr(), "/health");
        assert!(
            body.contains(
                "{\"peer\":2,\"acked_zxid\":17179869191,\"acked\":\"4:7\",\"lag_txns\":2,\
                 \"syncing\":false}"
            ),
            "body: {body}"
        );
        assert!(
            body.contains(
                "{\"peer\":3,\"acked_zxid\":null,\"acked\":null,\"lag_txns\":null,\
                 \"syncing\":true}"
            ),
            "body: {body}"
        );
        assert!(body.contains("\"hash\":\"00000000deadbeef\""), "body: {body}");
        assert!(
            body.contains("\"checkpoints\":[[17179869248,\"0000000000000abc\"]]"),
            "body: {body}"
        );
        // The server() fixture recorded one 3ms commit latency.
        assert!(
            body.contains("\"commit_latency_ms\":{\"count\":1,\"p50\":3,\"p99\":3,\"max\":3}"),
            "body: {body}"
        );
    }

    #[test]
    fn malformed_request_line_is_400() {
        let (server, _, _) = server();
        for bad in ["GARBAGE\r\n\r\n", "\r\n\r\n", "GET\r\n\r\n"] {
            let mut stream = TcpStream::connect(server.addr()).expect("connect");
            stream.write_all(bad.as_bytes()).expect("write");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            assert!(response.starts_with("HTTP/1.0 400"), "req {bad:?} → {response}");
        }
    }

    #[test]
    fn oversized_head_is_400() {
        let (server, _, _) = server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let huge = format!("GET /metrics HTTP/1.0\r\nX-Pad: {}\r\n\r\n", "a".repeat(8192));
        stream.write_all(huge.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 400"), "response: {response}");
    }

    #[test]
    fn slow_loris_is_cut_off_with_408() {
        let (server, _, _) = server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // Send a partial request line and stall past the deadline without
        // ever closing our write side.
        stream.write_all(b"GET /hea").expect("write");
        let started = Instant::now();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 408"), "response: {response}");
        let waited = started.elapsed();
        assert!(
            waited >= REQUEST_DEADLINE && waited < REQUEST_DEADLINE + Duration::from_secs(2),
            "deadline not enforced: waited {waited:?}"
        );
    }
}
