//! # zab-node — a complete Zab replica
//!
//! Assembles the workspace's pieces into the process a deployment runs:
//!
//! ```text
//!        ┌────────────────────────── Replica ──────────────────────────┐
//!        │  zab-election ──► zab-core (Leader/Follower automaton)      │
//! TCP ◄──┤      ▲                    │ Actions                         │
//! mesh   │      └── event loop ◄─────┤                                 │
//!        │            │              ▼                                 │
//!        │            │        zab-log (group-commit disk thread)      │
//!        │            ▼                                                │
//!        │        Application (execute on primary / apply on deliver)  │
//!        └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! - [`Replica::start`] boots a node: recover storage, join the mesh, run
//!   leader election, synchronize, serve.
//! - [`Application`] is the primary-backup state machine contract from the
//!   paper's abstract: the *primary executes client operations* (resolving
//!   all non-determinism) and the resulting *incremental state change* is
//!   what Zab broadcasts; backups only ever [`Application::apply`] deltas.
//! - [`apps::BytesApp`] broadcasts raw payloads (benchmarks); [`apps::KvApp`]
//!   is the ZooKeeper-like tree from `zab-kv`.
//!
//! # Example
//!
//! ```no_run
//! use zab_node::{apps::BytesApp, NodeConfig, Replica};
//! use zab_core::ServerId;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let peers: BTreeMap<ServerId, std::net::SocketAddr> =
//!     [(ServerId(1), "127.0.0.1:7101".parse()?)].into_iter().collect();
//! let cfg = NodeConfig::new(ServerId(1), peers);
//! let replica = Replica::start(cfg, BytesApp::new())?;
//! replica.submit(b"state change".to_vec());
//! # Ok(())
//! # }
//! ```

mod admin;
mod admission;
pub mod apps;
pub mod config;
pub mod metrics;
pub mod replica;

pub use apps::{Application, BytesApp, KvApp};
pub use config::NodeConfig;
pub use metrics::NodeMetrics;
pub use replica::{write_atomic, NodeEvent, Replica, Role, SubmitError};
