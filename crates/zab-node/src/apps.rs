//! The application contract and two ready-made applications.

use bytes::Bytes;
use zab_core::{Txn, Zxid};
use zab_kv::{DataTree, Delta, Op, PrimaryExecutor};

/// The primary-backup state machine a replica hosts.
///
/// The split between [`Application::execute`] and [`Application::apply`]
/// is the heart of the paper's system model: a client *operation* may be
/// non-deterministic with respect to replica state (sequence numbers,
/// version guards), so only the **primary** executes it — against its
/// *speculative* state, which includes the effects of still-uncommitted
/// earlier operations — and the deterministic **delta** it produces is
/// what Zab broadcasts. Backups, and the primary itself, then `apply`
/// committed deltas in delivery order.
pub trait Application: Send + 'static {
    /// Primary-side: execute a client request against speculative state,
    /// returning the delta to broadcast.
    ///
    /// # Errors
    ///
    /// An application-level failure (returned to the client, nothing
    /// broadcast).
    fn execute(&mut self, request: &[u8]) -> Result<Vec<u8>, String>;

    /// Apply a committed delta (in zxid order, exactly once per state).
    fn apply(&mut self, txn: &Txn);

    /// Serialize committed state (for SNAP syncs of lagging followers).
    fn snapshot(&self) -> Vec<u8>;

    /// Replace committed state with a received snapshot covering up to
    /// `zxid`.
    ///
    /// # Errors
    ///
    /// A malformed snapshot (truncated, trailing bytes, failed
    /// validation) is *reported*, never panicked on: snapshot bytes
    /// come off the wire or off disk, and a replica must degrade to
    /// [`crate::Role::Faulted`] rather than crash. On `Err` the
    /// committed state must be unchanged.
    fn install(&mut self, snapshot: &[u8], zxid: Zxid) -> Result<(), String>;

    /// Zxid the committed state reflects.
    fn applied_to(&self) -> Zxid;

    /// Called when this replica gains (`true`) or loses (`false`) primary
    /// status: rebuild speculative state from committed state.
    fn on_role_change(&mut self, is_primary: bool);
}

/// Pass-through application: requests *are* deltas; committed deltas
/// accumulate in a log. Used by benchmarks and the quickstart.
#[derive(Debug, Default)]
pub struct BytesApp {
    log: Vec<(Zxid, Bytes)>,
    applied_to: Zxid,
}

impl BytesApp {
    /// Empty app.
    pub fn new() -> BytesApp {
        BytesApp::default()
    }

    /// The applied log.
    pub fn log(&self) -> &[(Zxid, Bytes)] {
        &self.log
    }
}

impl Application for BytesApp {
    fn execute(&mut self, request: &[u8]) -> Result<Vec<u8>, String> {
        Ok(request.to_vec())
    }

    fn apply(&mut self, txn: &Txn) {
        self.log.push((txn.zxid, txn.data.clone()));
        self.applied_to = txn.zxid;
    }

    fn snapshot(&self) -> Vec<u8> {
        // Entries: count, then (zxid, len, data)*.
        let mut buf = Vec::new();
        buf.extend((self.log.len() as u32).to_le_bytes());
        for (z, d) in &self.log {
            buf.extend(z.0.to_le_bytes());
            buf.extend((d.len() as u32).to_le_bytes());
            buf.extend(d.as_ref());
        }
        buf
    }

    fn install(&mut self, snapshot: &[u8], zxid: Zxid) -> Result<(), String> {
        let mut log = Vec::new();
        let mut cur = snapshot;
        if cur.len() < 4 {
            return Err(format!("snapshot header truncated: {} bytes", cur.len()));
        }
        let n = u32::from_le_bytes(cur[..4].try_into().expect("length checked")) as usize;
        cur = &cur[4..];
        for i in 0..n {
            if cur.len() < 12 {
                return Err(format!("snapshot truncated in entry {i} of {n}"));
            }
            let z = Zxid(u64::from_le_bytes(cur[..8].try_into().expect("length checked")));
            let len = u32::from_le_bytes(cur[8..12].try_into().expect("length checked")) as usize;
            if cur.len() < 12 + len {
                return Err(format!("snapshot entry {i} claims {len} bytes, fewer remain"));
            }
            log.push((z, Bytes::copy_from_slice(&cur[12..12 + len])));
            cur = &cur[12 + len..];
        }
        if !cur.is_empty() {
            return Err(format!("snapshot has {} trailing bytes", cur.len()));
        }
        self.log = log;
        self.applied_to = zxid;
        Ok(())
    }

    fn applied_to(&self) -> Zxid {
        self.applied_to
    }

    fn on_role_change(&mut self, _is_primary: bool) {}
}

/// The ZooKeeper-like data tree from `zab-kv` as a replica application.
///
/// Requests are encoded [`Op`]s; broadcast deltas are encoded
/// [`Delta`]s. Reads go directly to [`KvApp::tree`] on any replica.
#[derive(Debug)]
pub struct KvApp {
    committed: DataTree,
    primary: Option<PrimaryExecutor>,
    applied_to: Zxid,
}

impl Default for KvApp {
    fn default() -> Self {
        Self::new()
    }
}

impl KvApp {
    /// Empty tree.
    pub fn new() -> KvApp {
        KvApp { committed: DataTree::new(), primary: None, applied_to: Zxid::ZERO }
    }

    /// The committed tree (serve reads from here).
    pub fn tree(&self) -> &DataTree {
        &self.committed
    }
}

impl Application for KvApp {
    fn execute(&mut self, request: &[u8]) -> Result<Vec<u8>, String> {
        let op = Op::decode(request).map_err(|e| format!("bad op: {e}"))?;
        let primary = self.primary.as_mut().expect("execute only called while primary");
        let (delta, _result) = primary.execute(&op).map_err(|e| e.to_string())?;
        Ok(delta.encode())
    }

    fn apply(&mut self, txn: &Txn) {
        let delta = Delta::decode(&txn.data).expect("replicated deltas are well-formed");
        self.committed.apply(&delta).expect("primary order guarantees deltas apply cleanly");
        self.applied_to = txn.zxid;
    }

    fn snapshot(&self) -> Vec<u8> {
        self.committed.snapshot()
    }

    fn install(&mut self, snapshot: &[u8], zxid: Zxid) -> Result<(), String> {
        self.committed =
            DataTree::from_snapshot(snapshot).map_err(|e| format!("bad kv snapshot: {e}"))?;
        self.applied_to = zxid;
        // Speculative state (if any) is now meaningless.
        if self.primary.is_some() {
            self.primary = Some(PrimaryExecutor::new(self.committed.clone()));
        }
        Ok(())
    }

    fn applied_to(&self) -> Zxid {
        self.applied_to
    }

    fn on_role_change(&mut self, is_primary: bool) {
        self.primary = is_primary.then(|| PrimaryExecutor::new(self.committed.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zab_core::Epoch;

    fn txn(c: u32, data: Vec<u8>) -> Txn {
        Txn::new(Zxid::new(Epoch(1), c), data)
    }

    #[test]
    fn bytes_app_round_trips_snapshot() {
        let mut a = BytesApp::new();
        a.apply(&txn(1, b"one".to_vec()));
        a.apply(&txn(2, b"two".to_vec()));
        let snap = a.snapshot();
        let mut b = BytesApp::new();
        b.install(&snap, Zxid::new(Epoch(1), 2)).expect("install");
        assert_eq!(b.log(), a.log());
        assert_eq!(b.applied_to(), Zxid::new(Epoch(1), 2));
    }

    #[test]
    fn bytes_app_rejects_malformed_snapshots_without_mutating() {
        let mut a = BytesApp::new();
        a.apply(&txn(1, b"keep".to_vec()));
        let good = a.snapshot();
        let z = Zxid::new(Epoch(1), 1);

        let mut b = BytesApp::new();
        b.apply(&txn(7, b"prior".to_vec()));
        let prior = b.log().to_vec();

        // Truncated header, truncated entry, and trailing garbage must
        // all error and leave the existing state untouched.
        assert!(b.install(&good[..3], z).is_err());
        assert!(b.install(&good[..good.len() - 1], z).is_err());
        let mut trailing = good.clone();
        trailing.push(0xEE);
        assert!(b.install(&trailing, z).is_err());
        // An entry whose length field overruns the buffer.
        let mut overrun = good.clone();
        let len_off = 4 + 8;
        overrun[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(b.install(&overrun, z).is_err());
        assert_eq!(b.log(), prior, "failed install mutated state");

        b.install(&good, z).expect("good snapshot still installs");
        assert_eq!(b.log(), a.log());
    }

    #[test]
    fn kv_app_rejects_malformed_snapshots() {
        let mut a = KvApp::new();
        assert!(a.install(b"\xFF\xFF\xFF", Zxid::new(Epoch(1), 1)).is_err());
    }

    #[test]
    fn kv_app_execute_then_apply_matches_backup() {
        let mut primary = KvApp::new();
        primary.on_role_change(true);
        let mut backup = KvApp::new();

        let delta = primary.execute(&Op::create("/cfg", b"v".to_vec()).encode()).expect("create");
        let t = txn(1, delta);
        primary.apply(&t);
        backup.apply(&t);
        assert!(backup.tree().exists("/cfg"));
        assert_eq!(primary.tree(), backup.tree());
    }

    #[test]
    fn kv_app_rejects_bad_requests_without_broadcasting() {
        let mut primary = KvApp::new();
        primary.on_role_change(true);
        assert!(primary.execute(b"garbage").is_err());
        assert!(primary.execute(&Op::delete("/missing").encode()).is_err());
    }

    #[test]
    fn kv_app_snapshot_install() {
        let mut a = KvApp::new();
        a.on_role_change(true);
        let d = a.execute(&Op::create("/x", vec![1]).encode()).expect("create");
        a.apply(&txn(1, d));
        let mut b = KvApp::new();
        b.install(&a.snapshot(), a.applied_to()).expect("install");
        assert!(b.tree().exists("/x"));
    }

    #[test]
    fn kv_speculation_reset_on_role_loss() {
        let mut a = KvApp::new();
        a.on_role_change(true);
        // Executed but never committed.
        a.execute(&Op::create("/spec", vec![]).encode()).expect("create");
        a.on_role_change(false);
        a.on_role_change(true);
        // The speculative node is gone; creating it again succeeds.
        a.execute(&Op::create("/spec", vec![]).encode()).expect("recreate");
    }
}
