//! The replica event loop.

use crate::admin::{AdminServer, DeliveryState, HealthState, LagEntry, SyncingPeer};
use crate::admission::{AdaptiveWindow, Admission, SubmitGate};
use crate::apps::Application;
use crate::config::NodeConfig;
use crate::metrics::NodeMetrics;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use zab_core::{
    Action, CoreMetrics, DeliveryHash, Epoch, Input, Message, PersistRequest, PersistToken,
    ServerId, Topology, Txn, Zab, Zxid,
};
use zab_election::{Election, ElectionAction, ElectionInput, Vote};
use zab_log::{FileStorage, LogMetrics, MemStorage, Storage};
use zab_metrics::{Clock, Registry, Snapshot, WallClock};
use zab_trace::{Recorder, Stage, TraceEvent, Tracer};
use zab_transport::{Transport, TransportEvent, TransportMsg};

/// The replica's current protocol role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Electing.
    Looking,
    /// Nominated leader; `established` once phase 3 begins.
    Leading {
        /// True once broadcasting.
        established: bool,
        /// The epoch (valid once known).
        epoch: Epoch,
    },
    /// Following `leader`; `active` once synchronized.
    Following {
        /// The leader.
        leader: ServerId,
        /// True once synced and serving.
        active: bool,
    },
    /// Fail-stopped after a storage error: out of the protocol (a leader
    /// has stepped down, a follower no longer acks) but still serving
    /// stale reads from the applied state. Requires a restart to rejoin.
    Faulted,
}

/// Events surfaced to the embedding program.
#[derive(Debug, Clone)]
pub enum NodeEvent {
    /// A transaction committed and was applied locally.
    Delivered(Txn),
    /// The protocol role changed.
    RoleChanged(Role),
    /// A submitted request was not broadcast.
    Rejected {
        /// The original request bytes.
        request: Bytes,
        /// Why.
        reason: String,
    },
    /// A storage operation failed; the replica fail-stopped (see
    /// [`Role::Faulted`]). The embedding program decides whether to page
    /// an operator, restart, or decommission.
    StorageFault {
        /// Which operation failed (e.g. `"append/flush"`, `"recover"`).
        context: String,
        /// The underlying error.
        error: String,
    },
    /// An outgoing dial to a peer failed (the transport is backing off).
    PeerUnreachable {
        /// The peer.
        peer: ServerId,
        /// Consecutive failures so far (0 = first).
        attempt: u32,
        /// The dial error.
        error: String,
    },
}

enum Command {
    Submit {
        request: Vec<u8>,
        /// When the caller arrived at the admission gate (recorder µs):
        /// the [`zab_trace::Stage::Admit`] instant, recorded retroactively
        /// at delivery once the zxid is known.
        admit_us: u64,
    },
    Shutdown,
}

/// A submission the admission gate refused. The request comes back to the
/// caller untouched — shed, never queued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission window is full ([`zab_core::RejectReason::Overloaded`]
    /// at the gate): accepting the request would only have queued it
    /// behind more work than the pipeline drains. Counted in
    /// `node.submits_shed`.
    Overloaded(Vec<u8>),
    /// The replica has shut down; nothing will ever process the request.
    Closed(Vec<u8>),
}

/// One accepted-but-undelivered client submission (primary only; FIFO
/// because commit order is submission order). `submitted_ms` feeds the
/// commit-latency histogram and the adaptive admission window;
/// `admit_us`/`submit_us` are the flight-recorder instants replayed
/// retroactively at delivery, when the zxid is finally known.
struct PendingSubmit {
    submitted_ms: u64,
    submit_us: u64,
    admit_us: u64,
}

/// Disk-thread completions. Errors are *reported*, never swallowed: the
/// event loop turns a `Faulted` into a fail-stop.
enum DiskDone {
    Flushed(PersistToken),
    Faulted { context: String, error: String },
}

enum DiskCmd {
    Persist(PersistToken, PersistRequest),
    /// Compact the log through `through` with the given app snapshot.
    /// Routed through the disk thread so it serializes after every append
    /// already queued (a delivered txn's own append may still be in the
    /// queue when the event loop decides to compact).
    Compact {
        snapshot: Bytes,
        through: Zxid,
    },
}

/// A running replica. Dropping it (or calling [`Replica::shutdown`]) stops
/// all its threads.
pub struct Replica<A: Application> {
    id: ServerId,
    commands: Sender<Command>,
    events_rx: Receiver<NodeEvent>,
    role: Arc<Mutex<Role>>,
    app: Arc<Mutex<A>>,
    metrics: Arc<Registry>,
    recorder: Arc<Recorder>,
    admin: Option<AdminServer>,
    submit_gate: Arc<SubmitGate>,
    /// Shared with the event loop's bundle: the submit path increments
    /// `node.submits_shed` without a round trip through the loop.
    node_metrics: NodeMetrics,
    /// The replica-wide clock, shared with the recorder so gate-side
    /// `Admit` instants land on the same timeline as loop-side stages.
    clock: Arc<dyn Clock>,
    threads: Vec<JoinHandle<()>>,
}

impl<A: Application> Replica<A> {
    /// Boots a replica: recovers storage, joins the TCP mesh, starts
    /// leader election.
    ///
    /// # Errors
    ///
    /// Fails on socket bind or storage errors.
    pub fn start(cfg: NodeConfig, app: A) -> Result<Replica<A>, Box<dyn std::error::Error>> {
        let storage: Box<dyn Storage + Send> = match &cfg.data_dir {
            Some(dir) => Box::new(FileStorage::open(dir)?),
            None => Box::new(MemStorage::new()),
        };
        Self::start_with_storage(cfg, app, storage)
    }

    /// Like [`Replica::start`] but with caller-provided storage — e.g. a
    /// [`MemStorage`] armed with a [`zab_log::FaultPlan`] to test the
    /// fail-stop path, or a custom [`Storage`] backend.
    ///
    /// # Errors
    ///
    /// Fails on socket bind errors.
    pub fn start_with_storage(
        cfg: NodeConfig,
        app: A,
        mut storage: Box<dyn Storage + Send>,
    ) -> Result<Replica<A>, Box<dyn std::error::Error>> {
        let id = cfg.id;
        let listen = cfg.peers[&id];
        // One registry per replica: every layer (core automata, storage,
        // transport, the event loop itself) reports into it, and
        // [`Replica::metrics_snapshot`] reads it back out.
        let metrics = Arc::new(Registry::new());
        // One monotonic clock for everything timestamped in this replica
        // — latency histograms and the flight recorder share an origin,
        // so trace events and metric samples line up on one timeline.
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let recorder = Recorder::new(id.0, cfg.trace_capacity, Arc::clone(&clock));
        // Tracing off: the recorder stays (an empty `/trace` still serves)
        // but every layer gets a disabled handle — zero record-path cost.
        let tracer =
            if cfg.tracing { Tracer::new(Arc::clone(&recorder)) } else { Tracer::disabled() };
        storage.set_metrics(
            LogMetrics::registered(&metrics)
                .with_clock(Arc::clone(&clock))
                .with_tracer(tracer.clone()),
        );
        let transport = Transport::start_traced(
            id,
            listen,
            cfg.peers.clone(),
            Arc::clone(&metrics),
            tracer.clone(),
        )?;
        let storage = Arc::new(Mutex::new(storage));

        let (commands_tx, commands_rx) = unbounded();
        let (events_tx, events_rx) = unbounded();
        let (disk_tx, disk_rx) = unbounded::<DiskCmd>();
        let (done_tx, done_rx) = unbounded::<DiskDone>();
        let role = Arc::new(Mutex::new(Role::Looking));
        let app = Arc::new(Mutex::new(app));
        let node_metrics = NodeMetrics::registered(&metrics);
        let (adm_min, adm_initial, adm_max) = cfg.effective_admission_bounds();
        let admission = AdaptiveWindow::new(cfg.adaptive_window, adm_min, adm_initial, adm_max);
        let submit_gate = Arc::new(SubmitGate::new(admission.cap()));
        node_metrics.submit_window.set(admission.cap() as i64);
        let health = Arc::new(Mutex::new(HealthState::new(
            cfg.peers.keys().filter(|p| **p != id).map(|p| p.0),
        )));
        health.lock().topology = match cfg.cluster.topology {
            Topology::Star => "star",
            Topology::Relay => "relay",
        };
        let admin = match cfg.admin_addr {
            Some(addr) => Some(AdminServer::start(
                addr,
                id.0,
                Arc::clone(&metrics),
                Arc::clone(&recorder),
                Arc::clone(&role),
                Arc::clone(&health),
            )?),
            None => None,
        };

        // Disk thread: group commit — drain everything queued, apply,
        // flush once, complete the batch's last token.
        let disk_storage = Arc::clone(&storage);
        let disk_thread = std::thread::spawn(move || {
            while let Ok(first) = disk_rx.recv() {
                let mut batch = Vec::new();
                let mut compact = None;
                match first {
                    DiskCmd::Persist(t, r) => batch.push((t, r)),
                    DiskCmd::Compact { snapshot, through } => compact = Some((snapshot, through)),
                }
                // Group commit: drain consecutive persists; a compaction
                // command ends the batch (it must run after the flush).
                if compact.is_none() {
                    while let Ok(cmd) = disk_rx.try_recv() {
                        match cmd {
                            DiskCmd::Persist(t, r) => batch.push((t, r)),
                            DiskCmd::Compact { snapshot, through } => {
                                compact = Some((snapshot, through));
                                break;
                            }
                        }
                    }
                }
                if !batch.is_empty() {
                    let last = batch.last().expect("nonempty").0;
                    let failed = {
                        let mut s = disk_storage.lock();
                        batch
                            .iter()
                            .find_map(|(_, req)| s.apply(req).err())
                            .or_else(|| s.flush().err())
                    };
                    if let Some(e) = failed {
                        // Report, then fail-stop: the event loop steps the
                        // replica out of the protocol.
                        let _ = done_tx.send(DiskDone::Faulted {
                            context: "append/flush".to_string(),
                            error: e.to_string(),
                        });
                        return;
                    }
                    if done_tx.send(DiskDone::Flushed(last)).is_err() {
                        return;
                    }
                }
                if let Some((snapshot, through)) = compact {
                    if let Err(e) = disk_storage.lock().compact(snapshot, through) {
                        let _ = done_tx.send(DiskDone::Faulted {
                            context: "compact".to_string(),
                            error: e.to_string(),
                        });
                        return;
                    }
                }
            }
        });

        let loop_state = EventLoop {
            id,
            cfg,
            transport,
            storage,
            election: None,
            zab: None,
            app: Arc::clone(&app),
            disk_tx,
            done_rx,
            commands_rx,
            events_tx,
            role: Arc::clone(&role),
            was_primary: false,
            faulted: false,
            clock,
            applied_since_compact: 0,
            applied_bytes_since_compact: 0,
            registry: Arc::clone(&metrics),
            core_metrics: CoreMetrics::registered(&metrics),
            node_metrics: node_metrics.clone(),
            relay_forwards: metrics.counter("transport.relay_forwards"),
            election_started_ms: None,
            pending_submits: VecDeque::new(),
            admission,
            tracer,
            health,
            last_dump_ms: 0,
            dump_seq: 0,
            submit_gate: Arc::clone(&submit_gate),
            delivery_hash: DeliveryHash::new(),
            published_hash_version: 0,
            lag_gauges: BTreeMap::new(),
        };
        let clock_for_replica = Arc::clone(&loop_state.clock);
        let loop_thread = std::thread::spawn(move || loop_state.run());

        Ok(Replica {
            id,
            commands: commands_tx,
            events_rx,
            role,
            app,
            metrics,
            recorder,
            admin,
            submit_gate,
            node_metrics,
            clock: clock_for_replica,
            threads: vec![disk_thread, loop_thread],
        })
    }

    /// This replica's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Submits a client request. If this replica is the established
    /// primary, the application executes it and the resulting delta is
    /// broadcast; otherwise a [`NodeEvent::Rejected`] is emitted.
    ///
    /// Applies backpressure: blocks while the admission window's worth of
    /// own requests are already in flight (submitted but not yet
    /// delivered or rejected), so a closed-loop caller settles at the
    /// pipeline's capacity. Open-loop callers should prefer
    /// [`Replica::try_submit`] or [`Replica::submit_deadline`], which
    /// **shed** overload instead of queueing it — blocking admission
    /// converts over-offered load into unbounded latency.
    pub fn submit(&self, request: Vec<u8>) {
        let admit_us = self.clock.now_micros();
        let _ = self.submit_gate.acquire(None);
        self.send_admitted(request, admit_us);
    }

    /// Non-blocking submission: takes an admission slot if the window has
    /// room, otherwise sheds the request and returns it untouched as
    /// [`SubmitError::Overloaded`] (counted in `node.submits_shed`).
    /// Never queues, never blocks — the honest open-loop primitive.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the admission window is full;
    /// [`SubmitError::Closed`] when the replica has shut down.
    pub fn try_submit(&self, request: Vec<u8>) -> Result<(), SubmitError> {
        let admit_us = self.clock.now_micros();
        match self.submit_gate.try_acquire() {
            Admission::Admitted => self.try_send_admitted(request, admit_us),
            Admission::Shed => {
                self.node_metrics.submits_shed.inc();
                Err(SubmitError::Overloaded(request))
            }
        }
    }

    /// Deadline-bounded submission: waits up to `timeout` for an
    /// admission slot, then sheds. The bounded middle ground between
    /// [`Replica::submit`] (waits forever) and [`Replica::try_submit`]
    /// (never waits).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] if no slot freed within `timeout`;
    /// [`SubmitError::Closed`] when the replica has shut down.
    pub fn submit_deadline(&self, request: Vec<u8>, timeout: Duration) -> Result<(), SubmitError> {
        let admit_us = self.clock.now_micros();
        match self.submit_gate.acquire(Some(std::time::Instant::now() + timeout)) {
            Admission::Admitted => self.try_send_admitted(request, admit_us),
            Admission::Shed => {
                self.node_metrics.submits_shed.inc();
                Err(SubmitError::Overloaded(request))
            }
        }
    }

    /// Hands an admitted request to the event loop; on a shutdown race
    /// the slot is returned (nothing will ever release it otherwise).
    fn send_admitted(&self, request: Vec<u8>, admit_us: u64) {
        if self.commands.send(Command::Submit { request, admit_us }).is_err() {
            self.submit_gate.release(1);
        }
    }

    fn try_send_admitted(&self, request: Vec<u8>, admit_us: u64) -> Result<(), SubmitError> {
        match self.commands.send(Command::Submit { request, admit_us }) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.submit_gate.release(1);
                match e.0 {
                    Command::Submit { request, .. } => Err(SubmitError::Closed(request)),
                    Command::Shutdown => Err(SubmitError::Closed(Vec::new())),
                }
            }
        }
    }

    /// The event stream (deliveries, role changes, rejections).
    pub fn events(&self) -> &Receiver<NodeEvent> {
        &self.events_rx
    }

    /// Current role snapshot.
    pub fn role(&self) -> Role {
        *self.role.lock()
    }

    /// Runs `f` with shared access to the application (e.g. to serve
    /// reads from a KV tree).
    pub fn with_app<R>(&self, f: impl FnOnce(&A) -> R) -> R {
        f(&self.app.lock())
    }

    /// The metrics registry every layer of this replica reports into.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// A point-in-time snapshot of all of this replica's metrics
    /// (`core.*`, `log.*`, `transport.*`, `node.*`).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// The flight recorder every layer of this replica traces into.
    pub fn trace_recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A point-in-time snapshot of the flight recorder, sorted by
    /// timestamp (see [`zab_trace::chrome_trace_json`] to export it).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.recorder.snapshot()
    }

    /// The admin endpoint's bound address, if one was configured (see
    /// [`NodeConfig::with_admin`]; useful with port 0).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(AdminServer::addr)
    }

    /// Stops all threads.
    pub fn shutdown(self) {}
}

impl<A: Application> Drop for Replica<A> {
    fn drop(&mut self) {
        // Unblock any submitter stuck on the window before tearing down
        // the loop that would have freed its slot.
        self.submit_gate.close();
        let _ = self.commands.send(Command::Shutdown);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

struct EventLoop<A: Application> {
    id: ServerId,
    cfg: NodeConfig,
    transport: Transport,
    storage: Arc<Mutex<Box<dyn Storage + Send>>>,
    election: Option<Election>,
    zab: Option<Zab>,
    app: Arc<Mutex<A>>,
    disk_tx: Sender<DiskCmd>,
    done_rx: Receiver<DiskDone>,
    commands_rx: Receiver<Command>,
    events_tx: Sender<NodeEvent>,
    role: Arc<Mutex<Role>>,
    was_primary: bool,
    /// Fail-stopped after a storage error (see [`Role::Faulted`]).
    faulted: bool,
    /// The one monotonic clock every timestamp in this loop comes from.
    /// Its origin predates the first election, so values compare
    /// correctly across election restarts and role changes.
    clock: Arc<dyn Clock>,
    applied_since_compact: u64,
    applied_bytes_since_compact: u64,
    registry: Arc<Registry>,
    core_metrics: CoreMetrics,
    node_metrics: NodeMetrics,
    /// Relay-tree FORWARD frames queued outbound, one count per target
    /// (a leader wrapping for its relays and a relay re-fanning to its
    /// group both count here).
    relay_forwards: Arc<zab_metrics::Counter>,
    /// When the current election round started (None while decided).
    election_started_ms: Option<u64>,
    /// Broadcast-but-undelivered client submissions (primary only; FIFO
    /// because commit order is submission order). Each entry carries the
    /// latency origin plus the admit/submit instants the flight recorder
    /// replays retroactively at delivery, when the zxid is known.
    pending_submits: VecDeque<PendingSubmit>,
    /// Latency-target controller steering the submit gate's capacity
    /// toward the pipeline's observed in-flight sweet spot.
    admission: AdaptiveWindow,
    /// Flight-recorder handle shared with storage, transport, and each
    /// automaton incarnation.
    tracer: Tracer,
    /// Health facts served by the admin endpoint.
    health: Arc<Mutex<HealthState>>,
    last_dump_ms: u64,
    /// Dump sequence number: readers of the metrics dump can tell two
    /// observations apart even if every counter happens to be equal.
    dump_seq: u64,
    /// Shared with [`Replica::submit`]: every acquired slot is released
    /// exactly once — on delivery, rejection, or demotion.
    submit_gate: Arc<SubmitGate>,
    /// Rolling hash of the delivered transaction stream, the
    /// delivered-prefix-agreement witness `/health` exposes and `zabctl
    /// audit` compares across the ensemble. Lives here (not in the
    /// automaton) so it survives election churn within an epoch chain.
    delivery_hash: DeliveryHash,
    /// `delivery_hash.version()` at the last health publish — skips the
    /// checkpoint-ring copy on batch boundaries where nothing delivered.
    published_hash_version: u64,
    /// Per-follower lag gauges (`core.follower_lag.<id>` /
    /// `core.follower_acked.<id>`), cached so publishing skips the
    /// registry's name lookup on every batch boundary.
    lag_gauges: BTreeMap<u64, (Arc<zab_metrics::Gauge>, Arc<zab_metrics::Gauge>)>,
}

impl<A: Application> EventLoop<A> {
    fn now_ms(&self) -> u64 {
        self.clock.now_millis()
    }

    /// Cap on events absorbed between two transport flushes (and two
    /// ticker checks). Big enough that a saturated leader amortizes its
    /// writes well, small enough that a tick is never more than a few
    /// hundred cheap events late.
    const DRAIN_BATCH: usize = 256;

    fn run(mut self) {
        self.begin_election();
        // Election notifications queued during startup must hit the wire
        // before the first blocking select, or every node sits corked
        // waiting for everyone else's first move.
        self.transport.flush();
        let ticker = crossbeam::channel::tick(Duration::from_millis(self.cfg.tick_ms));
        loop {
            // The ticker goes first: the select is biased toward earlier
            // arms, and ticks drive pings and timeout checks — under a
            // saturating workload the other channels are *always* ready,
            // and a last-place ticker starves until followers give up on
            // a perfectly healthy leader. First place cannot starve the
            // others: a tick is ready at most once per tick_ms.
            crossbeam::channel::select! {
                recv(ticker) -> _ => {
                    // Collapse any backlog: one tick at the current clock
                    // covers every missed period.
                    while ticker.try_recv().is_ok() {}
                    let now_ms = self.now_ms();
                    self.feed_election(ElectionInput::Tick { now_ms });
                    self.feed_zab(Input::Tick { now_ms });
                    self.maybe_dump_metrics(now_ms);
                }
                recv(self.commands_rx) -> cmd => match cmd {
                    Ok(cmd) => {
                        if !self.on_command(cmd) {
                            return;
                        }
                    }
                    Err(_) => return,
                },
                recv(self.done_rx) -> done => if let Ok(done) = done {
                    self.on_disk_done(done);
                },
                recv(self.transport.events()) -> ev => match ev {
                    Ok(ev) => self.on_transport_event(ev),
                    Err(_) => return,
                },
            }
            // Opportunistic batch: handle whatever is already queued on
            // the high-rate channels before flushing the transport, so a
            // backlog of submits leaves as one vectored PROPOSE burst
            // per peer (and a burst of proposals as one ACK batch)
            // instead of a write syscall per message. An empty backlog
            // skips straight to the flush — no added latency.
            if !self.drain_backlog() {
                return;
            }
            self.transport.flush();
            self.publish_role();
        }
    }

    /// Non-blocking sweep of the submit / disk / transport channels, in
    /// that priority order, bounded so ticks stay timely under overload.
    /// Returns `false` when a shutdown command surfaced.
    fn drain_backlog(&mut self) -> bool {
        for _ in 0..Self::DRAIN_BATCH {
            let cmd = self.commands_rx.try_recv();
            if let Ok(cmd) = cmd {
                if !self.on_command(cmd) {
                    return false;
                }
                continue;
            }
            let done = self.done_rx.try_recv();
            if let Ok(done) = done {
                self.on_disk_done(done);
                continue;
            }
            let ev = self.transport.events().try_recv();
            if let Ok(ev) = ev {
                self.on_transport_event(ev);
                continue;
            }
            break;
        }
        true
    }

    /// Returns `false` on shutdown.
    fn on_command(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::Submit { request, admit_us } => {
                self.on_submit(request, admit_us);
                true
            }
            Command::Shutdown => false,
        }
    }

    fn on_disk_done(&mut self, done: DiskDone) {
        match done {
            DiskDone::Flushed(token) => self.feed_zab(Input::Persisted { token }),
            DiskDone::Faulted { context, error } => self.enter_faulted(context, error),
        }
    }

    fn on_transport_event(&mut self, ev: TransportEvent) {
        match ev {
            TransportEvent::Message { from, msg } => {
                self.health.lock().peer_ok(from.0);
                match msg {
                    TransportMsg::Zab(m) => self.feed_zab(Input::Message { from, msg: m }),
                    TransportMsg::Election(n) => {
                        self.feed_election(ElectionInput::Notification { from, notification: n })
                    }
                }
            }
            TransportEvent::PeerDisconnected { peer } => {
                self.health.lock().peer_down(peer.0);
                self.feed_zab(Input::PeerDisconnected { peer });
            }
            TransportEvent::ConnectFailed { peer, attempt, error } => {
                self.health.lock().peer_failed(peer.0, attempt);
                self.node_metrics.peer_unreachable.inc();
                let _ = self.events_tx.send(NodeEvent::PeerUnreachable { peer, attempt, error });
            }
        }
    }

    /// Fail-stop on a storage error: step out of the protocol entirely
    /// (a leader stops pinging, so followers elect a successor; a
    /// follower stops acking, so it never falsely confirms durability)
    /// while the applied state stays readable via [`Replica::with_app`].
    fn enter_faulted(&mut self, context: String, error: String) {
        if self.faulted {
            return;
        }
        self.faulted = true;
        self.zab = None;
        self.election = None;
        self.node_metrics.storage_faults.inc();
        let _ = self.events_tx.send(NodeEvent::StorageFault { context, error });
    }

    /// Best-effort periodic metrics dump: a torn or failed write must
    /// never hurt the replica, so errors are swallowed and the file is
    /// replaced atomically via a temp-file rename ([`write_atomic`]).
    /// Each dump carries a strictly increasing `seq` plus a
    /// `dumped_at_ms` wall timestamp, so a reader can order two
    /// observations even when every counter in them is equal.
    fn maybe_dump_metrics(&mut self, now_ms: u64) {
        let Some(path) = self.cfg.metrics_dump_path.as_ref() else { return };
        if now_ms < self.last_dump_ms.saturating_add(self.cfg.metrics_dump_every_ms) {
            return;
        }
        self.last_dump_ms = now_ms;
        self.dump_seq += 1;
        let body = self.registry.snapshot().to_json();
        let wall_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        // Splice the envelope into the snapshot's own JSON object.
        let json = format!("{{\"seq\":{},\"dumped_at_ms\":{wall_ms},{}", self.dump_seq, &body[1..]);
        let _ = write_atomic(path, json.as_bytes());
    }

    fn begin_election(&mut self) {
        let recovered = self.storage.lock().recover();
        let rec = match recovered {
            Ok(rec) => rec,
            Err(e) => {
                self.enter_faulted("recover".to_string(), e.to_string());
                self.publish_role();
                return;
            }
        };
        // Restore the application from the durable snapshot if it is
        // behind the log's compaction point. A missing or malformed
        // snapshot is a storage fault, not a panic: the replica
        // fail-stops and the rest of the ensemble carries on.
        let install_error: Option<String> = {
            let mut app = self.app.lock();
            if app.applied_to() < rec.history.base() {
                match rec.snapshot.clone() {
                    None => Some(format!(
                        "log starts at {:?} but no snapshot is stored",
                        rec.history.base()
                    )),
                    Some(snap) => app.install(&snap, rec.history.base()).err(),
                }
            } else {
                None
            }
        };
        if let Some(e) = install_error {
            self.node_metrics.snapshot_install_failures.inc();
            self.enter_faulted("install snapshot".to_string(), e);
            self.publish_role();
            return;
        }
        let vote = Vote {
            peer_epoch: rec.current_epoch,
            last_zxid: rec.history.last_zxid(),
            leader: self.id,
        };
        let now_ms = self.now_ms();
        self.election_started_ms = Some(now_ms);
        let (election, acts) = Election::new(self.id, self.cfg.election.clone(), vote, now_ms);
        self.election = Some(election);
        self.route_election(acts);
    }

    fn feed_election(&mut self, input: ElectionInput) {
        let Some(el) = self.election.as_mut() else { return };
        let acts = el.handle(input);
        self.route_election(acts);
    }

    fn route_election(&mut self, acts: Vec<ElectionAction>) {
        for a in acts {
            match a {
                ElectionAction::Send { to, notification } => {
                    self.transport.queue(to, TransportMsg::Election(notification));
                }
                ElectionAction::Decided { leader } => {
                    let recovered = self.storage.lock().recover();
                    let rec = match recovered {
                        Ok(rec) => rec,
                        Err(e) => {
                            self.enter_faulted("recover".to_string(), e.to_string());
                            return;
                        }
                    };
                    let now_ms = self.now_ms();
                    if let Some(started) = self.election_started_ms.take() {
                        self.node_metrics
                            .election_duration_ms
                            .record(now_ms.saturating_sub(started));
                    }
                    let applied_to = self.app.lock().applied_to();
                    let (mut zab, acts) = Zab::from_election(
                        self.id,
                        leader,
                        self.cfg.cluster.clone(),
                        rec.into_persistent_state(),
                        applied_to,
                        now_ms,
                    );
                    zab.set_metrics(self.core_metrics.clone());
                    zab.set_tracer(self.tracer.clone());
                    self.zab = Some(zab);
                    self.route_zab(acts);
                }
            }
        }
    }

    fn feed_zab(&mut self, input: Input) {
        let Some(zab) = self.zab.as_mut() else { return };
        let acts = zab.handle(input);
        self.route_zab(acts);
    }

    fn route_zab(&mut self, acts: Vec<Action>) {
        for a in acts {
            match a {
                Action::Send { to, msg } => {
                    if matches!(msg, Message::Forward { .. }) {
                        self.relay_forwards.inc();
                    }
                    self.transport.queue(to, TransportMsg::Zab(msg))
                }
                Action::Broadcast { to, msg } => {
                    if matches!(msg, Message::Forward { .. }) {
                        self.relay_forwards.add(to.len() as u64);
                    }
                    // One encode, one frame, shared across every target's
                    // write buffer.
                    self.transport.queue_broadcast(&to, TransportMsg::Zab(msg));
                }
                Action::Persist { token, req } => {
                    let _ = self.disk_tx.send(DiskCmd::Persist(token, req));
                }
                Action::Deliver { txn } => {
                    self.app.lock().apply(&txn);
                    // O(payload) fold into the delivered-prefix hash, in
                    // the apply path so the chain witnesses exactly what
                    // the application saw, in the order it saw it.
                    self.delivery_hash.observe(txn.zxid, &txn.data);
                    // On the primary the delivery order is the submission
                    // order, so the oldest pending submit timestamp is
                    // this transaction's start-of-life.
                    if self.was_primary {
                        if let Some(pending) = self.pending_submits.pop_front() {
                            let now_ms = self.now_ms();
                            let latency_ms = now_ms.saturating_sub(pending.submitted_ms);
                            self.node_metrics.commit_latency_ms.record(latency_ms);
                            self.node_metrics
                                .commit_inflight
                                .set(self.pending_submits.len() as i64);
                            self.submit_gate.release(1);
                            // Feed the adaptive admission window: commit
                            // latency plus the shed counter, which gates
                            // growth — a shedding gate is already refusing
                            // work, so extra depth buys queueing only.
                            let sheds = self.node_metrics.submits_shed.get();
                            if let Some(cap) = self.admission.observe(latency_ms, now_ms, sheds) {
                                self.submit_gate.set_cap(cap);
                                self.node_metrics.submit_window.set(cap as i64);
                            }
                            // The zxid was unknown at admission time; now
                            // that it is, record the admit and submit
                            // instants retroactively at their original
                            // timestamps (exporters sort by time, so late
                            // recording does not reorder the chain). The
                            // admit→submit delta is the admission cost:
                            // gate wait plus command-queue time.
                            let z = txn.zxid.0;
                            self.tracer.span(
                                Stage::Admit,
                                z,
                                z,
                                pending.admit_us,
                                pending.admit_us,
                            );
                            self.tracer.span(
                                Stage::Submit,
                                z,
                                z,
                                pending.submit_us,
                                pending.submit_us,
                            );
                        }
                    }
                    let payload_bytes = txn.data.len() as u64;
                    let _ = self.events_tx.send(NodeEvent::Delivered(txn));
                    self.applied_since_compact += 1;
                    self.applied_bytes_since_compact += payload_bytes;
                    let count_due = self
                        .cfg
                        .snapshot_every
                        .is_some_and(|every| self.applied_since_compact >= every);
                    let bytes_due = self
                        .cfg
                        .snapshot_bytes
                        .is_some_and(|bytes| self.applied_bytes_since_compact >= bytes);
                    if count_due || bytes_due {
                        self.compact();
                    }
                }
                Action::InstallSnapshot { snapshot, zxid } => {
                    let installed = self.app.lock().install(&snapshot, zxid);
                    if let Err(e) = installed {
                        self.node_metrics.snapshot_install_failures.inc();
                        self.enter_faulted("install snapshot".to_string(), e);
                        return;
                    }
                }
                Action::TakeSnapshot => {
                    let (snapshot, zxid) = {
                        let app = self.app.lock();
                        (Bytes::from(app.snapshot()), app.applied_to())
                    };
                    self.feed_zab(Input::SnapshotReady { snapshot, zxid });
                }
                Action::GoToElection { .. } => {
                    self.zab = None;
                    let recovered = self.storage.lock().recover();
                    let rec = match recovered {
                        Ok(rec) => rec,
                        Err(e) => {
                            self.enter_faulted("recover".to_string(), e.to_string());
                            return;
                        }
                    };
                    let now_ms = self.now_ms();
                    self.election_started_ms = Some(now_ms);
                    let el = self.election.as_mut().expect("election exists");
                    let acts = el.restart(rec.current_epoch, rec.history.last_zxid(), now_ms);
                    self.route_election(acts);
                }
                Action::Activated { .. } | Action::Committed { .. } => {}
                Action::ClientRequestRejected { data, reason } => {
                    // The request was accepted by on_submit (it holds a
                    // gate slot and the newest latency entry) but the core
                    // bounced it: undo both.
                    if self.was_primary && self.pending_submits.pop_back().is_some() {
                        self.node_metrics.commit_inflight.set(self.pending_submits.len() as i64);
                        self.submit_gate.release(1);
                    }
                    let _ = self
                        .events_tx
                        .send(NodeEvent::Rejected { request: data, reason: format!("{reason:?}") });
                }
            }
        }
    }

    /// Periodic snapshotting (ZooKeeper's snapCount): queue the durable
    /// compaction behind all pending log appends, and drop the matching
    /// in-memory history prefix.
    fn compact(&mut self) {
        self.applied_since_compact = 0;
        self.applied_bytes_since_compact = 0;
        let (snapshot, through) = {
            let app = self.app.lock();
            (Bytes::from(app.snapshot()), app.applied_to())
        };
        let _ = self.disk_tx.send(DiskCmd::Compact { snapshot: snapshot.clone(), through });
        self.feed_zab(Input::Compact { through, snapshot: Some(snapshot) });
    }

    fn on_submit(&mut self, request: Vec<u8>, admit_us: u64) {
        let is_primary = matches!(&self.zab, Some(Zab::Leader(l)) if l.is_established());
        if !is_primary {
            let reason =
                if self.faulted { "StorageFaulted".to_string() } else { "NotPrimary".to_string() };
            self.submit_gate.release(1);
            let _ =
                self.events_tx.send(NodeEvent::Rejected { request: Bytes::from(request), reason });
            return;
        }
        let executed = self.app.lock().execute(&request);
        match executed {
            Ok(delta) => {
                self.pending_submits.push_back(PendingSubmit {
                    submitted_ms: self.now_ms(),
                    submit_us: self.clock.now_micros(),
                    admit_us,
                });
                self.node_metrics.commit_inflight.set(self.pending_submits.len() as i64);
                self.feed_zab(Input::ClientRequest { data: Bytes::from(delta) });
            }
            Err(reason) => {
                self.submit_gate.release(1);
                let _ = self
                    .events_tx
                    .send(NodeEvent::Rejected { request: Bytes::from(request), reason });
            }
        }
    }

    fn current_role(&self) -> Role {
        if self.faulted {
            return Role::Faulted;
        }
        match &self.zab {
            None => Role::Looking,
            Some(Zab::Leader(l)) => {
                Role::Leading { established: l.is_established(), epoch: l.epoch() }
            }
            Some(Zab::Follower(f)) => Role::Following {
                leader: f.leader(),
                active: f.status() == zab_core::FollowerStatus::Active,
            },
        }
    }

    fn publish_role(&mut self) {
        if let Some(zab) = &self.zab {
            let lags = zab.follower_lags();
            {
                let mut h = self.health.lock();
                h.last_committed = zab.last_committed().0;
                h.syncing = zab
                    .syncing_peers()
                    .into_iter()
                    .map(|p| SyncingPeer {
                        peer: p.peer.0,
                        chunks_remaining: p.chunks_remaining,
                        bytes_remaining: p.bytes_remaining,
                    })
                    .collect();
                h.relay_groups = zab
                    .relay_topology()
                    .into_iter()
                    .map(|(r, members)| (r.0, members.into_iter().map(|m| m.0).collect()))
                    .collect();
                h.lag = lags
                    .iter()
                    .map(|l| LagEntry {
                        peer: l.peer.0,
                        acked_zxid: l.acked.map(|z| z.0),
                        lag_txns: l.lag_txns,
                        syncing: l.syncing,
                    })
                    .collect();
            }
            // Per-follower gauges, outside the health lock. −1 encodes
            // "unknown" (cross-epoch watermarks / snapshot-pending sync).
            for l in &lags {
                let (acked_g, lag_g) = self.lag_gauges.entry(l.peer.0).or_insert_with(|| {
                    (
                        self.registry
                            .gauge(&zab_metrics::peer_metric("core.follower_acked", l.peer.0)),
                        self.registry
                            .gauge(&zab_metrics::peer_metric("core.follower_lag", l.peer.0)),
                    )
                });
                acked_g.set(l.acked.map_or(-1, |z| z.0 as i64));
                lag_g.set(l.lag_txns.map_or(-1, |n| n as i64));
            }
        } else {
            let mut h = self.health.lock();
            h.syncing.clear();
            h.relay_groups.clear();
            h.lag.clear();
        }
        if self.delivery_hash.version() != self.published_hash_version {
            self.published_hash_version = self.delivery_hash.version();
            self.health.lock().delivery = DeliveryState {
                anchor: self.delivery_hash.anchor().0,
                last: self.delivery_hash.last().0,
                hash: self.delivery_hash.hash(),
                checkpoints: self.delivery_hash.checkpoints().map(|c| (c.zxid.0, c.hash)).collect(),
            };
        }
        let role = self.current_role();
        let is_primary = matches!(role, Role::Leading { established: true, .. });
        if is_primary != self.was_primary {
            self.was_primary = is_primary;
            // Losing the primary role abandons in-flight submissions:
            // their latency samples would straddle two incarnations, and
            // their gate slots would otherwise leak (no delivery or
            // rejection will ever account for them here).
            if !is_primary {
                self.submit_gate.release(self.pending_submits.len());
                self.pending_submits.clear();
                self.node_metrics.commit_inflight.set(0);
            }
            self.app.lock().on_role_change(is_primary);
        }
        let mut cur = self.role.lock();
        if *cur != role {
            *cur = role;
            self.node_metrics.role_transitions.inc();
            let _ = self.events_tx.send(NodeEvent::RoleChanged(role));
        }
    }
}

/// Writes `bytes` to `path` atomically: the content lands in a sibling
/// temp file first and is renamed into place, so a concurrent reader
/// observes either the previous complete file or the new complete file —
/// never a prefix. Used by the periodic metrics dump.
///
/// # Errors
///
/// Fails if the temp file cannot be written or the rename fails.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Convenience: true once the role is an established leader.
pub fn is_established(role: Role) -> bool {
    matches!(role, Role::Leading { established: true, .. })
}

/// Convenience: the zxid type re-exported for embedding programs.
pub type AppliedZxid = Zxid;

#[cfg(test)]
mod tests {
    use super::write_atomic;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Satellite regression: a reader polling the metrics dump must never
    /// observe a torn or partial file, and `seq` must move forward. The
    /// writer hammers dumps of wildly varying sizes while the reader
    /// re-reads the same path; any prefix-only observation fails.
    #[test]
    fn atomic_dump_is_never_observed_torn() {
        let dir = std::env::temp_dir().join(format!("zab-atomic-dump-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("metrics.json");
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let path = path.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seq = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    seq += 1;
                    let pad = "x".repeat(1 + (seq as usize * 97) % 4096);
                    let json = format!("{{\"seq\":{seq},\"dumped_at_ms\":0,\"pad\":\"{pad}\"}}");
                    write_atomic(&path, json.as_bytes()).expect("dump");
                }
            })
        };
        // Wait for the first dump, then check every observation.
        while !path.exists() {
            std::thread::yield_now();
        }
        let mut last_seq = 0u64;
        for _ in 0..2_000 {
            let json = std::fs::read_to_string(&path).expect("read dump");
            assert!(json.starts_with("{\"seq\":"), "torn head: {json:.40}");
            assert!(
                json.ends_with('}'),
                "torn tail: ...{:.40}",
                &json[json.len().saturating_sub(40)..]
            );
            let seq: u64 = json["{\"seq\":".len()..]
                .split(',')
                .next()
                .expect("seq field")
                .parse()
                .expect("seq parses");
            assert!(seq >= last_seq, "seq went backwards: {seq} < {last_seq}");
            last_seq = seq;
        }
        stop.store(true, Ordering::SeqCst);
        writer.join().expect("writer");
        assert!(last_seq > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
