//! Node-level instrument bundle (`node.*` metrics).
//!
//! The layers below report their own families — `core.*` from the
//! automata, `log.*` from storage, `transport.*` from the TCP mesh —
//! all into the one [`Registry`] the [`crate::Replica`] owns. This
//! bundle covers what only the event loop can see: role churn, how
//! long elections take, the client-visible commit latency, and the
//! fault events that step a replica out of the protocol.

use std::sync::Arc;
use zab_metrics::{Counter, Gauge, Histogram, Registry};

/// Handles to the node-level instruments.
#[derive(Debug, Clone)]
pub struct NodeMetrics {
    /// Role transitions published to the embedding program.
    pub role_transitions: Arc<Counter>,
    /// Wall time from entering an election to a decided leader (ms).
    pub election_duration_ms: Arc<Histogram>,
    /// End-to-end commit latency on the primary: submit accepted →
    /// the resulting transaction delivered locally (ms).
    pub commit_latency_ms: Arc<Histogram>,
    /// Client submissions broadcast but not yet delivered (primary).
    pub commit_inflight: Arc<Gauge>,
    /// Submissions shed at the admission gate (`try_submit` with a full
    /// window, or `submit_deadline` expiring) — refused visibly, never
    /// queued. The operator's overload signal: a nonzero rate means
    /// offered load exceeds what the pipeline drains.
    pub submits_shed: Arc<Counter>,
    /// The admission gate's live capacity (the adaptive window's current
    /// value; constant when `adaptive_window` is off).
    pub submit_window: Arc<Gauge>,
    /// Storage faults that fail-stopped this replica.
    pub storage_faults: Arc<Counter>,
    /// Failed outgoing dials surfaced as `PeerUnreachable`.
    pub peer_unreachable: Arc<Counter>,
    /// Snapshots that failed to install into the application.
    pub snapshot_install_failures: Arc<Counter>,
}

impl NodeMetrics {
    /// Instruments registered in `reg` under `node.*` names.
    pub fn registered(reg: &Registry) -> NodeMetrics {
        NodeMetrics {
            role_transitions: reg.counter("node.role_transitions"),
            election_duration_ms: reg.histogram("node.election_duration_ms"),
            commit_latency_ms: reg.histogram("node.commit_latency_ms"),
            commit_inflight: reg.gauge("node.commit_inflight"),
            submits_shed: reg.counter("node.submits_shed"),
            submit_window: reg.gauge("node.submit_window"),
            storage_faults: reg.counter("node.storage_faults"),
            peer_unreachable: reg.counter("node.peer_unreachable"),
            snapshot_install_failures: reg.counter("node.snapshot_install_failures"),
        }
    }

    /// Instruments not attached to any registry (tests, defaults).
    pub fn standalone() -> NodeMetrics {
        NodeMetrics {
            role_transitions: Arc::default(),
            election_duration_ms: Arc::default(),
            commit_latency_ms: Arc::default(),
            commit_inflight: Arc::default(),
            submits_shed: Arc::default(),
            submit_window: Arc::default(),
            storage_faults: Arc::default(),
            peer_unreachable: Arc::default(),
            snapshot_install_failures: Arc::default(),
        }
    }
}

impl Default for NodeMetrics {
    fn default() -> Self {
        NodeMetrics::standalone()
    }
}
