//! Replica configuration.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use zab_core::{ClusterConfig, ServerId, Topology};
use zab_election::ElectionConfig;

/// Everything needed to boot one replica.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This server's id (must appear in `peers`).
    pub id: ServerId,
    /// Address book of the full ensemble, including this server; this
    /// server listens on its own entry.
    pub peers: BTreeMap<ServerId, SocketAddr>,
    /// Protocol parameters (quorums derived from `peers` by default).
    pub cluster: ClusterConfig,
    /// Election parameters.
    pub election: ElectionConfig,
    /// Storage directory; `None` uses in-memory storage (tests, benches).
    pub data_dir: Option<PathBuf>,
    /// Event-loop tick period in milliseconds.
    pub tick_ms: u64,
    /// Compact the log into a snapshot every `k` applied transactions
    /// (ZooKeeper's snapCount); `None` disables the count trigger.
    pub snapshot_every: Option<u64>,
    /// Compact the log into a snapshot once the applied payload bytes
    /// since the last compaction exceed this; `None` disables the bytes
    /// trigger. Either threshold firing compacts and resets both.
    pub snapshot_bytes: Option<u64>,
    /// Periodically dump a JSON metrics snapshot to this file (written
    /// via a temp file + rename, so readers never see a torn dump);
    /// `None` disables dumping.
    pub metrics_dump_path: Option<PathBuf>,
    /// Interval between metrics dumps in milliseconds.
    pub metrics_dump_every_ms: u64,
    /// Submit-side admission window *ceiling*: the gate never admits more
    /// than this many of this replica's own requests in flight (submitted
    /// but not yet delivered or rejected). [`crate::Replica::submit`]
    /// blocks at the gate; [`crate::Replica::try_submit`] and
    /// [`crate::Replica::submit_deadline`] shed instead. `None` (default)
    /// tracks the protocol window ([`ClusterConfig::max_outstanding`]).
    pub submit_window: Option<usize>,
    /// Adaptive admission (default `true`): the gate's live capacity
    /// starts at [`NodeConfig::admission_initial_window`] and is steered
    /// between [`NodeConfig::admission_min_window`] and the submit-window
    /// ceiling by a latency-target controller tracking the commit
    /// pipeline's observed in-flight sweet spot (DESIGN.md §5c). `false`
    /// pins the gate at the ceiling (the pre-adaptive behavior).
    pub adaptive_window: bool,
    /// Floor for the adaptive admission window (clamped to the ceiling).
    /// Deep enough that the pipeline stays busy even when the controller
    /// is maximally defensive: the measured `throughput_vs_outstanding`
    /// curve still does ~26 k ops/s at depth 32 and ~75% of peak at 64.
    pub admission_min_window: usize,
    /// Seed for the adaptive admission window; `None` (default) seeds at
    /// 256, the middle of the measured throughput knee (the
    /// `throughput_vs_outstanding` curve flattens between 128 and 512).
    /// Clamped between the floor and the ceiling.
    pub admission_initial_window: Option<usize>,
    /// Serve the admin HTTP endpoint (`GET /metrics`, `GET /health`,
    /// `GET /trace?last=N`) on this address; `None` (default) disables
    /// it. The endpoint is unauthenticated — bind loopback
    /// (`127.0.0.1:...`) unless the network is trusted.
    pub admin_addr: Option<SocketAddr>,
    /// Flight-recorder ring capacity, in events per recording thread:
    /// each thread that records keeps its newest `trace_capacity`
    /// events, overwriting the oldest, so recorder memory stays bounded
    /// at `threads × trace_capacity × size_of::<TraceEvent>()`.
    pub trace_capacity: usize,
    /// Record flight-recorder events (default true). With tracing off the
    /// recorder still exists (so `/trace` serves an empty, valid
    /// document) but no layer records into it — the configuration the
    /// observability-overhead bench row compares against.
    pub tracing: bool,
}

impl NodeConfig {
    /// Defaults: majority quorums over the address book, in-memory
    /// storage, 5 ms ticks.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `peers`.
    pub fn new(id: ServerId, peers: BTreeMap<ServerId, SocketAddr>) -> NodeConfig {
        assert!(peers.contains_key(&id), "own id must be in the address book");
        let members: Vec<ServerId> = peers.keys().copied().collect();
        NodeConfig {
            id,
            peers,
            cluster: ClusterConfig::majority(members.clone()),
            election: ElectionConfig::new(members),
            data_dir: None,
            tick_ms: 5,
            snapshot_every: None,
            snapshot_bytes: None,
            metrics_dump_path: None,
            metrics_dump_every_ms: 1000,
            submit_window: None,
            adaptive_window: true,
            admission_min_window: 64,
            admission_initial_window: None,
            admin_addr: None,
            trace_capacity: 4096,
            tracing: true,
        }
    }

    /// The effective submit window (see [`NodeConfig::submit_window`]).
    pub fn effective_submit_window(&self) -> usize {
        self.submit_window.unwrap_or(self.cluster.max_outstanding).max(1)
    }

    /// The admission gate's `(floor, seed, ceiling)`, mutually clamped:
    /// `floor ≤ seed ≤ ceiling` always holds, whatever was configured.
    pub fn effective_admission_bounds(&self) -> (usize, usize, usize) {
        let max = self.effective_submit_window();
        let min = self.admission_min_window.clamp(1, max);
        let initial = self.admission_initial_window.unwrap_or(256).clamp(min, max);
        (min, initial, max)
    }

    /// Caps this replica's own in-flight submissions at `window`.
    pub fn with_submit_window(mut self, window: usize) -> NodeConfig {
        self.submit_window = Some(window);
        self
    }

    /// Enables or disables the adaptive admission controller (see
    /// [`NodeConfig::adaptive_window`]).
    pub fn with_adaptive_window(mut self, adaptive: bool) -> NodeConfig {
        self.adaptive_window = adaptive;
        self
    }

    /// Sets the adaptive admission floor and seed (both clamped to the
    /// submit-window ceiling at boot).
    pub fn with_admission_bounds(mut self, min: usize, initial: usize) -> NodeConfig {
        self.admission_min_window = min.max(1);
        self.admission_initial_window = Some(initial.max(1));
        self
    }

    /// Uses file-backed storage rooted at `dir`.
    pub fn with_data_dir(mut self, dir: impl Into<PathBuf>) -> NodeConfig {
        self.data_dir = Some(dir.into());
        self
    }

    /// Enables periodic log compaction every `k` applied transactions.
    pub fn with_snapshot_every(mut self, k: u64) -> NodeConfig {
        self.snapshot_every = Some(k);
        self
    }

    /// Enables periodic log compaction once `bytes` of applied payload
    /// accumulate since the last compaction.
    pub fn with_snapshot_bytes(mut self, bytes: u64) -> NodeConfig {
        self.snapshot_bytes = Some(bytes);
        self
    }

    /// Enables periodic JSON metrics dumps to `path` every `every_ms`
    /// milliseconds (see [`zab_metrics::Snapshot::to_json`]).
    pub fn with_metrics_dump(mut self, path: impl Into<PathBuf>, every_ms: u64) -> NodeConfig {
        self.metrics_dump_path = Some(path.into());
        self.metrics_dump_every_ms = every_ms.max(1);
        self
    }

    /// Serves the admin HTTP endpoint on `addr` (port 0 picks a free
    /// port; read it back via [`crate::Replica::admin_addr`]).
    pub fn with_admin(mut self, addr: SocketAddr) -> NodeConfig {
        self.admin_addr = Some(addr);
        self
    }

    /// Sets the per-thread flight-recorder ring capacity, in events.
    pub fn with_trace_capacity(mut self, events: usize) -> NodeConfig {
        self.trace_capacity = events.max(1);
        self
    }

    /// Enables or disables flight-recorder event recording (see
    /// [`NodeConfig::tracing`]).
    pub fn with_tracing(mut self, enabled: bool) -> NodeConfig {
        self.tracing = enabled;
        self
    }

    /// Sets the broadcast dissemination topology (see
    /// [`zab_core::Topology`]). Every node of an ensemble must agree —
    /// the leader builds the plan, followers relay when assigned.
    pub fn with_topology(mut self, topology: Topology) -> NodeConfig {
        self.cluster.topology = topology;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book(n: u64) -> BTreeMap<ServerId, SocketAddr> {
        (1..=n)
            .map(|i| (ServerId(i), format!("127.0.0.1:{}", 7000 + i).parse().expect("addr")))
            .collect()
    }

    #[test]
    fn defaults_derive_quorum_from_address_book() {
        let cfg = NodeConfig::new(ServerId(2), book(3));
        assert_eq!(cfg.cluster.ensemble_size(), 3);
        assert!(cfg.data_dir.is_none());
    }

    #[test]
    #[should_panic(expected = "own id must be in the address book")]
    fn unknown_own_id_rejected() {
        let _ = NodeConfig::new(ServerId(9), book(3));
    }
}
