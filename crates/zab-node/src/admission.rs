//! Bounded admission control for the submit path (DESIGN.md §5c).
//!
//! Two pieces, both owned by the [`crate::Replica`]:
//!
//! - [`SubmitGate`]: a counting gate over the replica's own in-flight
//!   submissions. The PR-4 gate was a single mutex whose `release` called
//!   `Condvar::notify_all` — under producer contention every blocked
//!   thread woke for each freed slot, stampeded the mutex, and all but
//!   one went back to sleep (a thundering herd that grows with the
//!   producer count). This gate counts waiters and hands freed slots off
//!   with at most one `notify_one` per slot. It also exposes
//!   *non-blocking* admission ([`SubmitGate::try_acquire`]) and
//!   deadline-bounded admission, so callers can **shed** load visibly
//!   instead of queueing without bound.
//! - [`AdaptiveWindow`]: a latency-target AIMD controller that moves the
//!   gate's capacity toward the commit pipeline's observed sweet spot.
//!   `throughput_vs_outstanding` (BENCH_broadcast.json) shows the
//!   throughput knee between 128 and 512 outstanding on the reference
//!   box, so the window is seeded at 256 and then steered: when the
//!   observed commit latency climbs well past the no-load floor the
//!   window only buys queueing delay, so it shrinks multiplicatively;
//!   when latency sits at the floor there is headroom, so it grows.
//!
//! Shed-don't-queue is the paper-shaped overload behavior: Figure 2's
//! latency-vs-load curve is flat to a knee near saturation and then
//! *plateaus*, which is only possible if offered load past capacity is
//! refused at admission. A gate that blocks (or a queue that grows)
//! converts overload into unbounded latency for every accepted request —
//! the measured 36 s p99 cliff this module replaces.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Outcome of an admission attempt against the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// A slot was taken; the caller must arrange exactly one release.
    Admitted,
    /// The window is full; nothing was queued and no slot is held.
    Shed,
}

struct GateState {
    in_flight: usize,
    /// Producers currently blocked in a timed or untimed wait.
    waiters: usize,
    /// Times any waiter returned from `Condvar::wait*` (herd diagnostic:
    /// with slot handoff this tracks releases, not releases × waiters).
    wakeups: u64,
    closed: bool,
}

/// Counting admission gate with `notify_one` slot handoff.
///
/// Capacity is dynamic ([`SubmitGate::set_cap`]): the adaptive controller
/// retunes it live. Shrinking never evicts in-flight submissions — the
/// gate simply refuses new admissions until deliveries drain below the
/// new cap.
pub(crate) struct SubmitGate {
    cap: AtomicUsize,
    /// Mirror of `GateState::in_flight`, written under the lock and read
    /// without it by [`SubmitGate::try_acquire`]'s shed fast path. Under
    /// heavy overload the shed rate can exceed the commit rate by an
    /// order of magnitude; deciding those sheds with two relaxed loads
    /// instead of a lock keeps the refusal path from contending with the
    /// event loop's release path for the gate mutex.
    in_flight_hint: AtomicUsize,
    /// Mirror of `GateState::closed` for the same fast path.
    closed_hint: AtomicBool,
    state: Mutex<GateState>,
    freed: Condvar,
}

impl SubmitGate {
    pub(crate) fn new(cap: usize) -> SubmitGate {
        SubmitGate {
            cap: AtomicUsize::new(cap.max(1)),
            in_flight_hint: AtomicUsize::new(0),
            closed_hint: AtomicBool::new(false),
            state: Mutex::new(GateState { in_flight: 0, waiters: 0, wakeups: 0, closed: false }),
            freed: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current capacity (the adaptive window's live value).
    pub(crate) fn cap(&self) -> usize {
        self.cap.load(Ordering::Relaxed)
    }

    /// Retunes the capacity. Growth wakes just enough blocked producers
    /// to fill the new slots; shrinking lets in-flight drain naturally.
    pub(crate) fn set_cap(&self, new_cap: usize) {
        let new_cap = new_cap.max(1);
        let old = self.cap.swap(new_cap, Ordering::Relaxed);
        if new_cap > old {
            let s = self.lock();
            let wake = (new_cap - old).min(s.waiters);
            drop(s);
            for _ in 0..wake {
                self.freed.notify_one();
            }
        }
    }

    /// Non-blocking admission: takes a slot if the window has room,
    /// sheds otherwise. A closed gate admits (the caller's send will
    /// fail and release the slot; this preserves shutdown semantics).
    pub(crate) fn try_acquire(&self) -> Admission {
        // Lock-free shed fast path: the hint lags the canonical count by
        // at most an in-progress release, so a full-looking gate may shed
        // an op that a microsecond-fresher view would have admitted —
        // harmless for an overload refusal, and it keeps the (possibly
        // very hot) shed path off the mutex. Admission itself is always
        // decided exactly, under the lock.
        if self.in_flight_hint.load(Ordering::Relaxed) >= self.cap()
            && !self.closed_hint.load(Ordering::Relaxed)
        {
            return Admission::Shed;
        }
        let mut s = self.lock();
        if s.in_flight >= self.cap() && !s.closed {
            return Admission::Shed;
        }
        s.in_flight += 1;
        self.in_flight_hint.store(s.in_flight, Ordering::Relaxed);
        Admission::Admitted
    }

    /// Blocking admission with an optional deadline. `None` waits until a
    /// slot frees or the gate closes (the legacy closed-loop behavior);
    /// `Some(deadline)` sheds if no slot frees in time.
    pub(crate) fn acquire(&self, deadline: Option<Instant>) -> Admission {
        let mut s = self.lock();
        while s.in_flight >= self.cap() && !s.closed {
            s.waiters += 1;
            let (guard, timed_out) = match deadline {
                None => (self.freed.wait(s).unwrap_or_else(PoisonError::into_inner), false),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        s.waiters -= 1;
                        return Admission::Shed;
                    }
                    let (g, r) =
                        self.freed.wait_timeout(s, d - now).unwrap_or_else(PoisonError::into_inner);
                    (g, r.timed_out())
                }
            };
            s = guard;
            s.waiters -= 1;
            s.wakeups += 1;
            if timed_out && s.in_flight >= self.cap() && !s.closed {
                return Admission::Shed;
            }
        }
        s.in_flight += 1;
        self.in_flight_hint.store(s.in_flight, Ordering::Relaxed);
        Admission::Admitted
    }

    /// Returns `n` slots and wakes at most `n` blocked producers — one
    /// `notify_one` per freed slot, never a herd.
    pub(crate) fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut s = self.lock();
        s.in_flight = s.in_flight.saturating_sub(n);
        self.in_flight_hint.store(s.in_flight, Ordering::Relaxed);
        let wake = n.min(s.waiters);
        drop(s);
        for _ in 0..wake {
            self.freed.notify_one();
        }
    }

    /// Unblocks every waiter for good (shutdown). The one justified
    /// `notify_all`: the condition is terminal, so every woken thread
    /// makes progress.
    pub(crate) fn close(&self) {
        let mut s = self.lock();
        s.closed = true;
        self.closed_hint.store(true, Ordering::Relaxed);
        drop(s);
        self.freed.notify_all();
    }

    /// Own submissions currently holding slots.
    #[cfg(test)]
    pub(crate) fn in_flight(&self) -> usize {
        self.lock().in_flight
    }

    /// Cumulative waiter wakeups (see [`GateState::wakeups`]).
    #[cfg(test)]
    pub(crate) fn wakeups(&self) -> u64 {
        self.lock().wakeups
    }
}

/// Latency-target AIMD controller for the gate capacity.
///
/// Feeds on the primary's own commit latencies (submit accepted →
/// delivered, in driver milliseconds) and periodically re-targets the
/// window:
///
/// - A **no-load floor** is tracked as a windowed minimum of per-interval
///   latency minima (two rotating buckets, so a stale floor ages out in
///   bounded time instead of pinning the target forever).
/// - The target is `floor × 4 + 1 ms`: by Little's law the knee sits
///   where added depth buys only queueing delay, and ~4× the no-load
///   round trip is past the knee on every measured curve
///   (`throughput_vs_outstanding`: 128 → 2.8 ms/39 k, 512 → 8.8 ms/55 k).
/// - Above target: multiplicative decrease (−1/8). Far below target
///   (< half): multiplicative increase (+1/2) so a freshly seeded window
///   reaches a deep closed-loop's capacity in a few intervals. Mildly
///   below: additive-ish increase (+1/16).
///
/// All arithmetic is integer/f64 on caller-provided timestamps — no
/// hidden clock, so tests drive it deterministically.
pub(crate) struct AdaptiveWindow {
    enabled: bool,
    cap: usize,
    min: usize,
    max: usize,
    /// Milliseconds between adjustments (driver clock).
    adjust_every_ms: u64,
    last_adjust_ms: u64,
    /// Samples since the last adjustment.
    sum_ms: u64,
    count: u64,
    interval_min_ms: u64,
    /// Two-bucket windowed floor: minimum interval-latency seen in the
    /// current and previous floor windows.
    floor_cur_ms: u64,
    floor_prev_ms: u64,
    intervals_in_window: u32,
    /// Cumulative shed count at the last adjustment (see `observe`).
    last_sheds: u64,
}

impl AdaptiveWindow {
    /// Intervals per floor-window rotation: the no-load floor estimate
    /// forgets a regime ~2 × 32 intervals old.
    const FLOOR_WINDOW_INTERVALS: u32 = 32;
    /// Minimum samples before an adjustment is meaningful.
    const MIN_SAMPLES: u64 = 8;

    pub(crate) fn new(enabled: bool, min: usize, initial: usize, max: usize) -> AdaptiveWindow {
        let max = max.max(1);
        let min = min.clamp(1, max);
        let cap = initial.clamp(min, max);
        AdaptiveWindow {
            enabled,
            cap,
            min,
            max,
            adjust_every_ms: 25,
            last_adjust_ms: 0,
            sum_ms: 0,
            count: 0,
            interval_min_ms: u64::MAX,
            floor_cur_ms: u64::MAX,
            floor_prev_ms: u64::MAX,
            intervals_in_window: 0,
            last_sheds: 0,
        }
    }

    /// The current window (the gate capacity this controller last chose).
    pub(crate) fn cap(&self) -> usize {
        self.cap
    }

    /// Feeds one commit-latency sample; returns `Some(new_cap)` when an
    /// adjustment interval completes with a changed window.
    ///
    /// `sheds` is the cumulative count of submissions shed at the gate.
    /// While it is advancing the gate is saturated, and the interval's
    /// latency samples are *loaded* measurements — feeding them into the
    /// no-load floor would ratchet the floor toward whatever latency the
    /// current window produces, which inflates the target, which grows
    /// the window, which raises the latency: the runaway feedback loop
    /// that drives the window to the ceiling and re-creates deep-queue
    /// collapse under sustained overload. Shedding intervals therefore
    /// leave the floor (and with it the target) **frozen**; the window
    /// still adjusts against that pinned target, so under overload it
    /// settles at the knee — depth ≈ target × capacity — instead of
    /// either runaway growth or being pinned at the minimum. (Bootstrap
    /// exception: a never-set floor takes its first interval's minimum
    /// even under shedding, else the target would be unbounded.)
    pub(crate) fn observe(&mut self, latency_ms: u64, now_ms: u64, sheds: u64) -> Option<usize> {
        if !self.enabled {
            return None;
        }
        self.sum_ms += latency_ms;
        self.count += 1;
        self.interval_min_ms = self.interval_min_ms.min(latency_ms);
        if now_ms < self.last_adjust_ms.saturating_add(self.adjust_every_ms)
            || self.count < Self::MIN_SAMPLES
        {
            return None;
        }
        let avg_ms = self.sum_ms as f64 / self.count as f64;
        let shed_this_interval = sheds != self.last_sheds;
        self.last_sheds = sheds;
        // Update and rotate the no-load floor — but only from intervals
        // with no shedding (see the method doc: loaded samples would
        // ratchet the floor and unpin the target).
        let floor_unset = self.floor_cur_ms == u64::MAX && self.floor_prev_ms == u64::MAX;
        if !shed_this_interval || floor_unset {
            self.floor_cur_ms = self.floor_cur_ms.min(self.interval_min_ms);
            self.intervals_in_window += 1;
            if self.intervals_in_window >= Self::FLOOR_WINDOW_INTERVALS {
                self.floor_prev_ms = self.floor_cur_ms;
                self.floor_cur_ms = self.interval_min_ms;
                self.intervals_in_window = 0;
            }
        }
        let floor_ms = self.floor_cur_ms.min(self.floor_prev_ms).max(1) as f64;
        let target_ms = floor_ms * 4.0 + 1.0;
        self.last_adjust_ms = now_ms;
        self.sum_ms = 0;
        self.count = 0;
        self.interval_min_ms = u64::MAX;
        let old = self.cap;
        self.cap = if avg_ms > target_ms {
            // Queueing regime: each in-flight slot is buying delay, not
            // throughput. Shrink multiplicatively toward the knee.
            old.saturating_sub((old / 8).max(1)).clamp(self.min, self.max)
        } else if avg_ms < target_ms / 2.0 {
            // Far under target: clear headroom, open up fast (a seeded
            // 256-window reaches a 1000-cap pipeline in ~4 intervals).
            (old + (old / 2).max(1)).clamp(self.min, self.max)
        } else {
            // Near target: creep upward, probing for more.
            (old + (old / 16).max(1)).clamp(self.min, self.max)
        };
        (self.cap != old).then_some(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn try_acquire_sheds_at_cap_without_blocking() {
        let g = SubmitGate::new(2);
        assert_eq!(g.try_acquire(), Admission::Admitted);
        assert_eq!(g.try_acquire(), Admission::Admitted);
        // Full: the third attempt sheds immediately — no queueing, no
        // blocking, no slot held.
        let t0 = Instant::now();
        assert_eq!(g.try_acquire(), Admission::Shed);
        assert!(t0.elapsed() < Duration::from_millis(50), "try_acquire blocked");
        assert_eq!(g.in_flight(), 2);
        g.release(1);
        assert_eq!(g.try_acquire(), Admission::Admitted);
    }

    #[test]
    fn deadline_acquire_times_out_cleanly() {
        let g = SubmitGate::new(1);
        assert_eq!(g.try_acquire(), Admission::Admitted);
        let t0 = Instant::now();
        let got = g.acquire(Some(Instant::now() + Duration::from_millis(30)));
        assert_eq!(got, Admission::Shed);
        assert!(t0.elapsed() >= Duration::from_millis(25), "returned before the deadline");
        // The timed-out waiter must not have leaked a slot or a waiter.
        assert_eq!(g.in_flight(), 1);
        g.release(1);
        assert_eq!(
            g.acquire(Some(Instant::now() + Duration::from_millis(30))),
            Admission::Admitted
        );
    }

    #[test]
    fn deadline_acquire_gets_slot_when_released() {
        let g = Arc::new(SubmitGate::new(1));
        assert_eq!(g.try_acquire(), Admission::Admitted);
        let waiter = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || g.acquire(Some(Instant::now() + Duration::from_secs(10))))
        };
        std::thread::sleep(Duration::from_millis(20));
        g.release(1);
        assert_eq!(waiter.join().expect("join"), Admission::Admitted);
        assert_eq!(g.in_flight(), 1);
    }

    #[test]
    fn close_unblocks_every_waiter() {
        let g = Arc::new(SubmitGate::new(1));
        assert_eq!(g.try_acquire(), Admission::Admitted);
        let waiters: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || g.acquire(None))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        g.close();
        for w in waiters {
            // A closed gate admits; the caller's send fails and releases.
            assert_eq!(w.join().expect("join"), Admission::Admitted);
        }
    }

    /// The herd regression: with `notify_all`, k releases across w blocked
    /// producers cost O(k·w) wakeups (every release wakes everyone); with
    /// slot handoff they cost O(k). The bound below fails by an order of
    /// magnitude if `notify_all` creeps back into `release`.
    #[test]
    fn contended_producers_wake_once_per_slot_not_per_herd() {
        const PRODUCERS: usize = 16;
        const OPS_PER_PRODUCER: usize = 64;
        let g = Arc::new(SubmitGate::new(1));
        let admitted = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|_| {
                let g = Arc::clone(&g);
                let admitted = Arc::clone(&admitted);
                std::thread::spawn(move || {
                    for _ in 0..OPS_PER_PRODUCER {
                        assert_eq!(g.acquire(None), Admission::Admitted);
                        admitted.fetch_add(1, Ordering::SeqCst);
                        g.release(1);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        let total = (PRODUCERS * OPS_PER_PRODUCER) as u64;
        assert_eq!(admitted.load(Ordering::SeqCst) as u64, total);
        // Every acquire that blocked costs ≥1 wakeup; with handoff each
        // release wakes ≤1 producer, so wakeups ≤ total releases (plus a
        // sliver of spurious wakeups the platform may add). notify_all
        // would cost up to (waiters × releases) ≈ 15× this bound.
        let wakeups = g.wakeups();
        assert!(wakeups <= total * 2, "thundering herd: {wakeups} wakeups for {total} releases");
    }

    #[test]
    fn release_never_leaks_slots_under_hammer() {
        const PRODUCERS: usize = 8;
        const OPS: usize = 500;
        let g = Arc::new(SubmitGate::new(4));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|i| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for k in 0..OPS {
                        // Mix all three admission paths.
                        match (i + k) % 3 {
                            0 => {
                                if g.try_acquire() == Admission::Admitted {
                                    g.release(1);
                                }
                            }
                            1 => {
                                if g.acquire(Some(Instant::now() + Duration::from_millis(5)))
                                    == Admission::Admitted
                                {
                                    g.release(1);
                                }
                            }
                            _ => {
                                assert_eq!(g.acquire(None), Admission::Admitted);
                                g.release(1);
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        assert_eq!(g.in_flight(), 0, "slots leaked");
        // All slots free: a full window admits back-to-back.
        for _ in 0..4 {
            assert_eq!(g.try_acquire(), Admission::Admitted);
        }
        assert_eq!(g.try_acquire(), Admission::Shed);
    }

    #[test]
    fn growing_cap_wakes_waiters() {
        let g = Arc::new(SubmitGate::new(1));
        assert_eq!(g.try_acquire(), Admission::Admitted);
        let waiter = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || g.acquire(None))
        };
        std::thread::sleep(Duration::from_millis(20));
        g.set_cap(2);
        assert_eq!(waiter.join().expect("join"), Admission::Admitted);
        assert_eq!(g.cap(), 2);
    }

    fn drive(w: &mut AdaptiveWindow, latency_ms: u64, start_ms: u64, intervals: u32) -> u64 {
        let mut now = start_ms;
        for _ in 0..intervals {
            now += 25;
            for _ in 0..16 {
                w.observe(latency_ms, now, 0);
            }
        }
        now
    }

    #[test]
    fn window_shrinks_under_queueing_and_recovers() {
        let mut w = AdaptiveWindow::new(true, 64, 256, 1000);
        assert_eq!(w.cap(), 256);
        // Establish a 1 ms no-load floor.
        let now = drive(&mut w, 1, 0, 4);
        // Sustained 100 ms latency: pure queueing — the window must fall.
        let now = drive(&mut w, 100, now, 40);
        assert_eq!(w.cap(), 64, "window did not shrink to the floor under queueing");
        // Latency back at the floor: the window must recover to the cap.
        drive(&mut w, 1, now, 40);
        assert_eq!(w.cap(), 1000, "window did not recover after the queueing cleared");
    }

    #[test]
    fn window_respects_bounds_and_seed_clamping() {
        // Seed above max clamps down; min above max clamps to max.
        let w = AdaptiveWindow::new(true, 64, 256, 128);
        assert_eq!(w.cap(), 128);
        let w = AdaptiveWindow::new(true, 64, 8, 128);
        assert_eq!(w.cap(), 64);
        let w = AdaptiveWindow::new(true, 500, 256, 128);
        assert_eq!(w.cap(), 128);
    }

    #[test]
    fn disabled_controller_never_moves() {
        let mut w = AdaptiveWindow::new(false, 64, 512, 1000);
        let now = drive(&mut w, 200, 0, 20);
        drive(&mut w, 1, now, 20);
        assert_eq!(w.cap(), 512);
    }

    /// The overload feedback loop: under sustained saturation every
    /// latency sample is a *loaded* measurement, so feeding them into
    /// the no-load floor ratchets floor → target → window → latency to
    /// the ceiling (the deep-queue collapse). Shedding intervals must
    /// freeze the floor, so that against the pinned target the window
    /// *equilibrates at the knee* — simulated here with Little's-law
    /// physics (latency = depth / capacity) — neither running away to
    /// the ceiling nor getting pinned at the minimum.
    #[test]
    fn shedding_freezes_floor_so_window_settles_at_the_knee() {
        let mut w = AdaptiveWindow::new(true, 64, 256, 4096);
        // Establish a 2 ms no-load floor (target = 9 ms) while unloaded.
        let mut now = drive(&mut w, 2, 0, 4);
        // Sustained overload: the gate sheds every interval, and the
        // pipeline drains 50 ops/ms — so commit latency is depth/50 ms.
        let mut sheds = 0;
        for _ in 0..200 {
            now += 25;
            sheds += 100;
            let latency_ms = (w.cap() as u64 / 50).max(1);
            for _ in 0..16 {
                w.observe(latency_ms, now, sheds);
            }
        }
        // Equilibrium sits where latency ≈ target (9 ms × 50 ops/ms =
        // depth 450), well off both bounds. A ratcheting floor would hit
        // the 4096 ceiling (200 intervals is ~6 rotations, plenty);
        // growth suppression would sit at 256 or fall to 64.
        let cap = w.cap();
        assert!(
            (300..=700).contains(&cap),
            "window {cap} not at the knee (expected ~450): floor ratcheted or growth pinned"
        );
        // Overload clears: the floor thaws and fast growth resumes.
        drive(&mut w, 2, now, 40);
        assert_eq!(w.cap(), 4096, "growth never resumed after shedding stopped");
    }

    /// A replica overloaded from its very first interval has no no-load
    /// measurement; the floor must bootstrap from the first (loaded)
    /// interval rather than leaving the target unbounded (an unset floor
    /// reads as `u64::MAX`, whose target would admit runaway growth).
    #[test]
    fn overloaded_from_birth_bootstraps_a_floor() {
        let mut w = AdaptiveWindow::new(true, 64, 256, 4096);
        let mut now = 0;
        let mut sheds = 0;
        for _ in 0..40 {
            now += 25;
            sheds += 100;
            let latency_ms = (w.cap() as u64 / 50).max(1);
            for _ in 0..16 {
                w.observe(latency_ms, now, sheds);
            }
        }
        // First interval: depth 256 / 50 = 5 ms floor → target 21 ms →
        // knee ≈ 1050. The exact point matters less than boundedness:
        // never the ceiling, never the minimum.
        let cap = w.cap();
        assert!((300..=2000).contains(&cap), "bootstrapped window {cap} ran away or collapsed");
    }

    #[test]
    fn stale_floor_ages_out() {
        let mut w = AdaptiveWindow::new(true, 64, 256, 1000);
        // A 1 ms floor from a cold regime...
        let now = drive(&mut w, 1, 0, 4);
        // ...then the true service time becomes 12 ms (e.g. disk added).
        // After the floor window rotates twice, 12 ms *is* the floor, the
        // target becomes 49 ms, and the window stops shrinking — it must
        // sit at a real cap, not pinned at `min` by a stale 1 ms floor.
        drive(&mut w, 12, now, 2 * AdaptiveWindow::FLOOR_WINDOW_INTERVALS + 8);
        assert!(w.cap() > 64, "stale floor pinned the window at min (cap {})", w.cap());
    }
}
