//! End-to-end flight-recorder and admin-endpoint tests: a real 3-node
//! TCP ensemble must produce a full causal chain for a committed zxid —
//! submit and deliver on the leader, wire-in / ack / deliver on both
//! followers — and serve it over the admin HTTP endpoint.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};
use zab_core::ServerId;
use zab_node::{apps::BytesApp, NodeConfig, NodeEvent, Replica, Role};
use zab_trace::{chrome_trace_json, merge, stage_deltas, timelines, Stage, TraceEvent};

fn address_book(n: u64) -> BTreeMap<ServerId, SocketAddr> {
    (1..=n)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect()
}

fn wait_for_leader(
    replicas: &BTreeMap<ServerId, Replica<BytesApp>>,
    timeout: Duration,
) -> Option<ServerId> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        for (&id, r) in replicas {
            if matches!(r.role(), Role::Leading { established: true, .. }) {
                return Some(id);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

/// Waits until every replica is serving: the leader established and all
/// followers synced. Submissions before a follower finishes phase-2 sync
/// reach it as a SyncDiff rather than broadcast Proposes, so its trace
/// would (correctly) have no wire events for those zxids.
fn wait_for_all_active(replicas: &BTreeMap<ServerId, Replica<BytesApp>>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        let all_active = replicas.values().all(|r| {
            matches!(
                r.role(),
                Role::Leading { established: true, .. } | Role::Following { active: true, .. }
            )
        });
        if all_active {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("ensemble never became fully active");
}

fn drain_deliveries(r: &Replica<BytesApp>, want: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    let mut got = 0;
    while got < want && Instant::now() < deadline {
        if let Ok(NodeEvent::Delivered(_)) = r.events().recv_timeout(Duration::from_millis(100)) {
            got += 1;
        }
    }
    got
}

fn http_get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .write_all(format!("GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").as_bytes())
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    (head.to_string(), body.to_string())
}

/// The stages `node` recorded for `zxid`, in timestamp order.
fn stages_for(events: &[TraceEvent], node: u64, zxid: u64) -> Vec<Stage> {
    let mut evs: Vec<&TraceEvent> =
        events.iter().filter(|e| e.node == node && e.zxid == zxid && !e.is_span()).collect();
    evs.sort_by_key(|e| e.ts_us);
    evs.iter().map(|e| e.stage).collect()
}

#[test]
fn causal_chain_spans_the_ensemble_and_the_admin_endpoint_serves_it() {
    const N: usize = 10;
    let book = address_book(3);
    let replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg =
                NodeConfig::new(id, book.clone()).with_admin("127.0.0.1:0".parse().expect("addr"));
            (id, Replica::start(cfg, BytesApp::new()).expect("start"))
        })
        .collect();

    let leader = wait_for_leader(&replicas, Duration::from_secs(10)).expect("leader");
    wait_for_all_active(&replicas, Duration::from_secs(10));
    for i in 0..N as u32 {
        replicas[&leader].submit(i.to_le_bytes().to_vec());
    }
    for (&id, r) in &replicas {
        assert_eq!(drain_deliveries(r, N, Duration::from_secs(10)), N, "replica {id} missed");
    }

    // ---- tentpole acceptance: one merged timeline, full causal chain.
    let merged = merge(replicas.values().map(Replica::trace_events).collect());
    let by_zxid = timelines(&merged);
    let followers: Vec<u64> = replicas.keys().filter(|id| **id != leader).map(|id| id.0).collect();

    let full_chain = by_zxid.keys().copied().find(|&zxid| {
        let leader_stages = stages_for(&merged, leader.0, zxid);
        let leader_ok = [Stage::Submit, Stage::ProposeEnqueue, Stage::Quorum, Stage::Deliver]
            .iter()
            .all(|s| leader_stages.contains(s));
        leader_ok
            && followers.iter().all(|&f| {
                let fs = stages_for(&merged, f, zxid);
                // wire-in of the propose, wire-out of the ack, delivery.
                fs.contains(&Stage::WireIn)
                    && fs.contains(&Stage::WireOut)
                    && fs.contains(&Stage::Deliver)
            })
    });
    if full_chain.is_none() {
        for (&zxid, _) in by_zxid.iter().take(5) {
            eprintln!("zxid {zxid:#x}:");
            for &id in replicas.keys() {
                eprintln!("  node {}: {:?}", id.0, stages_for(&merged, id.0, zxid));
            }
        }
    }
    let zxid = full_chain.expect("no committed zxid shows the full causal chain");

    // Per-node timestamps along the chain are monotone: each node's
    // stage sequence (already time-sorted) must respect causal order.
    let leader_stages = stages_for(&merged, leader.0, zxid);
    let submit_pos = leader_stages.iter().position(|s| *s == Stage::Submit).expect("submit");
    let deliver_pos = leader_stages.iter().rposition(|s| *s == Stage::Deliver).expect("deliver");
    assert!(submit_pos < deliver_pos, "leader delivered before the submit instant");
    for &f in &followers {
        let fs = stages_for(&merged, f, zxid);
        let wire_in = fs.iter().position(|s| *s == Stage::WireIn).expect("wire-in");
        let deliver = fs.iter().rposition(|s| *s == Stage::Deliver).expect("deliver");
        assert!(wire_in < deliver, "follower {f} delivered before the propose arrived");
    }

    // The exporters digest the same run: stage deltas exist for the
    // chain, and the Chrome JSON is non-trivial and well-formed.
    assert!(stage_deltas(&merged).iter().any(|d| d.zxid == zxid));
    let chrome = chrome_trace_json(&merged);
    assert!(chrome.starts_with("{\"traceEvents\":["), "chrome head: {chrome:.40}");
    assert!(chrome.ends_with("]}"), "chrome tail");
    assert!(chrome.contains("\"submit\"") && chrome.contains("\"deliver\""));

    // ---- the admin endpoint serves all three routes on every node.
    for (&id, r) in &replicas {
        let addr = r.admin_addr().expect("admin bound");
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{id}: {head}");
        assert!(body.contains("core_proposals_committed"), "{id} metrics: {body:.200}");

        let (head, body) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.0 200"), "{id}: {head}");
        let expected_role =
            if id == leader { "\"role\":\"leading\"" } else { "\"role\":\"following\"" };
        assert!(body.contains(expected_role), "{id} health: {body}");
        assert!(body.contains("\"last_committed_zxid\":"), "{id} health: {body}");

        let (head, body) = http_get(addr, "/trace?last=100000");
        assert!(head.starts_with("HTTP/1.0 200"), "{id}: {head}");
        assert!(body.starts_with("{\"traceEvents\":["), "{id} trace: {body:.40}");
    }

    // Recorder memory stays within the configured bound.
    for r in replicas.values() {
        let rec = r.trace_recorder();
        assert!(r.trace_events().len() <= rec.max_resident_events());
    }
}
