//! End-to-end tests: real replicas over real TCP sockets on localhost.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use zab_core::ServerId;
use zab_node::{apps::BytesApp, KvApp, NodeConfig, NodeEvent, Replica, Role};

fn address_book(n: u64) -> BTreeMap<ServerId, SocketAddr> {
    (1..=n)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect()
}

fn wait_for_leader<A: zab_node::Application>(
    replicas: &BTreeMap<ServerId, Replica<A>>,
    timeout: Duration,
) -> Option<ServerId> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        for (&id, r) in replicas {
            if matches!(r.role(), Role::Leading { established: true, .. }) {
                return Some(id);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

fn drain_deliveries<A: zab_node::Application>(
    r: &Replica<A>,
    want: usize,
    timeout: Duration,
) -> Vec<zab_core::Txn> {
    let deadline = Instant::now() + timeout;
    let mut got = Vec::new();
    while got.len() < want && Instant::now() < deadline {
        match r.events().recv_timeout(Duration::from_millis(100)) {
            Ok(NodeEvent::Delivered(txn)) => got.push(txn),
            Ok(_) => {}
            Err(_) => {}
        }
    }
    got
}

#[test]
fn three_replicas_elect_broadcast_deliver() {
    let book = address_book(3);
    let mut replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone());
            (id, Replica::start(cfg, BytesApp::new()).expect("start"))
        })
        .collect();

    let leader = wait_for_leader(&replicas, Duration::from_secs(10)).expect("leader");
    for i in 0..20u32 {
        replicas[&leader].submit(i.to_le_bytes().to_vec());
    }
    // Every replica delivers all 20, in the same order.
    let mut sequences = Vec::new();
    for (&id, r) in &replicas {
        let txns = drain_deliveries(r, 20, Duration::from_secs(10));
        assert_eq!(txns.len(), 20, "replica {id} missed deliveries");
        sequences.push(txns.iter().map(|t| t.zxid).collect::<Vec<_>>());
    }
    assert!(sequences.windows(2).all(|w| w[0] == w[1]), "orders diverge");

    for (_, r) in replicas.iter_mut() {
        let _ = r; // shutdown via drop below
    }
}

#[test]
fn metrics_agree_across_replicas_and_time_the_commit_path() {
    let dump_dir = std::env::temp_dir().join(format!("zab-node-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    std::fs::create_dir_all(&dump_dir).expect("mkdir");
    let book = address_book(3);
    let replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone())
                .with_metrics_dump(dump_dir.join(format!("n{}.json", id.0)), 50);
            (id, Replica::start(cfg, BytesApp::new()).expect("start"))
        })
        .collect();

    let leader = wait_for_leader(&replicas, Duration::from_secs(10)).expect("leader");
    const N: u64 = 10;
    for i in 0..N as u32 {
        replicas[&leader].submit(i.to_le_bytes().to_vec());
    }
    for (&id, r) in &replicas {
        assert_eq!(
            drain_deliveries(r, N as usize, Duration::from_secs(10)).len(),
            N as usize,
            "replica {id}"
        );
    }

    // Every replica counted the same committed stream, and each layer
    // of the leader observed the commit path.
    let snaps: BTreeMap<ServerId, zab_metrics::Snapshot> =
        replicas.iter().map(|(&id, r)| (id, r.metrics_snapshot())).collect();
    for (id, s) in &snaps {
        assert_eq!(s.counter("core.proposals_committed"), N, "replica {id} count diverges");
    }
    let ls = &snaps[&leader];
    assert_eq!(ls.counter("core.proposals_proposed"), N);
    // Acks are cumulative (one covers a persisted batch), so the count
    // is at least 1 but may be well under N.
    assert!(ls.counter("core.acks_received") >= 1, "leader saw no acks");
    let quorum = ls.histogram("core.quorum_ack_latency_ms").expect("quorum histogram");
    assert_eq!(quorum.count, N, "every proposal should have a quorum-latency sample");
    let commit = ls.histogram("node.commit_latency_ms").expect("commit histogram");
    assert_eq!(commit.count, N, "every submit should have an end-to-end sample");
    assert_eq!(ls.gauge("node.commit_inflight"), 0, "inflight not drained");
    assert!(ls.counter("log.appends") >= N, "leader appended each proposal");
    assert!(ls.counter("log.fsyncs") >= 1, "group commit flushed at least once");
    assert!(ls.counter_sum("transport.frames_out.") >= N, "leader broadcast frames");
    assert!(ls.counter("node.role_transitions") >= 1);
    assert!(ls.histogram("node.election_duration_ms").is_some_and(|h| h.count >= 1));
    // Quorum = leader self-ack + at least one follower, so across the
    // followers some acks must have been sent. (A follower that joined
    // late may have received the txns via SyncDiff and never acked a
    // Propose, so no per-follower assertion.)
    let follower_acks: u64 = snaps
        .iter()
        .filter(|(&id, _)| id != leader)
        .map(|(_, s)| s.counter("core.acks_sent"))
        .sum();
    assert!(follower_acks >= 1, "no follower ever acked a proposal");

    // The periodic JSON dump landed and looks like a snapshot dump
    // wrapped in the `{seq, dumped_at_ms, ...}` envelope.
    let deadline = Instant::now() + Duration::from_secs(5);
    let dump_path = dump_dir.join(format!("n{}.json", leader.0));
    loop {
        if let Ok(json) = std::fs::read_to_string(&dump_path) {
            if json.contains("\"core.proposals_committed\"") {
                assert!(json.starts_with("{\"seq\":"), "unexpected dump shape: {json:.60}");
                assert!(json.contains("\"dumped_at_ms\":"), "missing wall timestamp");
                assert!(json.contains("\"counters\":{"), "missing counters section");
                assert!(json.ends_with('}'), "dump truncated");
                break;
            }
        }
        assert!(Instant::now() < deadline, "metrics dump never appeared at {dump_path:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(replicas);
    let _ = std::fs::remove_dir_all(&dump_dir);
}

#[test]
fn submit_to_follower_is_rejected() {
    let book = address_book(3);
    let replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone());
            (id, Replica::start(cfg, BytesApp::new()).expect("start"))
        })
        .collect();
    let leader = wait_for_leader(&replicas, Duration::from_secs(10)).expect("leader");
    let follower = book.keys().copied().find(|&id| id != leader).expect("a follower");
    replicas[&follower].submit(b"nope".to_vec());
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut rejected = false;
    while Instant::now() < deadline && !rejected {
        if let Ok(NodeEvent::Rejected { .. }) =
            replicas[&follower].events().recv_timeout(Duration::from_millis(100))
        {
            rejected = true;
        }
    }
    assert!(rejected, "follower accepted a write");
}

#[test]
fn leader_shutdown_fails_over() {
    let book = address_book(3);
    let mut replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone());
            (id, Replica::start(cfg, BytesApp::new()).expect("start"))
        })
        .collect();
    let leader = wait_for_leader(&replicas, Duration::from_secs(10)).expect("leader");
    for i in 0..5u32 {
        replicas[&leader].submit(i.to_le_bytes().to_vec());
    }
    // Ensure the writes committed before killing the leader.
    let survivor = book.keys().copied().find(|&id| id != leader).expect("a survivor");
    assert_eq!(drain_deliveries(&replicas[&survivor], 5, Duration::from_secs(10)).len(), 5);
    replicas.remove(&leader).expect("leader exists").shutdown();

    let new_leader = wait_for_leader(&replicas, Duration::from_secs(15)).expect("failover");
    assert_ne!(new_leader, leader);
    replicas[&new_leader].submit(b"after-failover".to_vec());
    // The new write reaches the other survivor too.
    let other = replicas.keys().copied().find(|&id| id != new_leader).expect("other");
    let got = drain_deliveries(&replicas[&other], 6, Duration::from_secs(10));
    assert!(
        got.iter().any(|t| t.data.as_ref() == b"after-failover"),
        "post-failover write missing (got {} txns)",
        got.len()
    );
}

#[test]
fn kv_app_sequential_creates_over_tcp() {
    let book = address_book(3);
    let replicas: BTreeMap<ServerId, Replica<KvApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone());
            (id, Replica::start(cfg, KvApp::new()).expect("start"))
        })
        .collect();
    let leader = wait_for_leader(&replicas, Duration::from_secs(10)).expect("leader");
    for _ in 0..3 {
        replicas[&leader]
            .submit(zab_kv::Op::create_sequential("/job-", b"payload".to_vec()).encode());
    }
    // Wait for all three deliveries at a follower and verify the tree.
    let follower = book.keys().copied().find(|&id| id != leader).expect("a follower");
    let got = drain_deliveries(&replicas[&follower], 3, Duration::from_secs(10));
    assert_eq!(got.len(), 3);
    replicas[&follower].with_app(|app| {
        let children = app.tree().children("/").expect("root");
        assert_eq!(children, vec!["job-0000000000", "job-0000000001", "job-0000000002"]);
    });
}

#[test]
fn file_backed_replica_recovers_after_restart() {
    let dir = std::env::temp_dir().join(format!("zab-node-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let book = address_book(3);

    let make = |id: ServerId, book: &BTreeMap<ServerId, SocketAddr>, dir: &std::path::Path| {
        let cfg = NodeConfig::new(id, book.clone()).with_data_dir(dir.join(format!("n{}", id.0)));
        Replica::start(cfg, BytesApp::new()).expect("start")
    };

    let mut replicas: BTreeMap<ServerId, Replica<BytesApp>> =
        book.keys().map(|&id| (id, make(id, &book, &dir))).collect();
    let leader = wait_for_leader(&replicas, Duration::from_secs(10)).expect("leader");
    for i in 0..10u32 {
        replicas[&leader].submit(i.to_le_bytes().to_vec());
    }
    let follower = book.keys().copied().find(|&id| id != leader).expect("a follower");
    assert_eq!(drain_deliveries(&replicas[&follower], 10, Duration::from_secs(10)).len(), 10);

    // Restart the follower from its files; it must catch up (its app is
    // fresh, so all ten transactions are re-delivered after sync).
    replicas.remove(&follower).expect("present").shutdown();
    std::thread::sleep(Duration::from_millis(300));
    let restarted = make(follower, &book, &dir);
    let got = drain_deliveries(&restarted, 10, Duration::from_secs(20));
    assert_eq!(got.len(), 10, "restarted replica failed to recover history");
    replicas.insert(follower, restarted);

    // Stop every replica before deleting their storage directories.
    drop(replicas);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Waits until the replica's applied log reaches `want` entries.
fn wait_applied(r: &Replica<BytesApp>, want: usize, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let len = r.with_app(|a| a.log().len());
        if len >= want {
            return;
        }
        assert!(Instant::now() < deadline, "applied log stuck at {len}/{want}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn compacting_replica_recovers_from_snapshot_plus_log() {
    // With snapshot_every = 5, the log is repeatedly compacted; a restart
    // must recover from snapshot + suffix and the restarted replica's app
    // state must converge with the cluster.
    let dir = std::env::temp_dir().join(format!("zab-node-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let book = address_book(3);

    let make = |id: ServerId| {
        let cfg = NodeConfig::new(id, book.clone())
            .with_data_dir(dir.join(format!("n{}", id.0)))
            .with_snapshot_every(5);
        Replica::start(cfg, BytesApp::new()).expect("start")
    };
    let mut replicas: BTreeMap<ServerId, Replica<BytesApp>> =
        book.keys().map(|&id| (id, make(id))).collect();
    let leader = wait_for_leader(&replicas, Duration::from_secs(10)).expect("leader");
    for i in 0..25u32 {
        replicas[&leader].submit(i.to_le_bytes().to_vec());
    }
    let follower = book.keys().copied().find(|&id| id != leader).expect("a follower");
    // A compacting cluster may sync this follower via SNAP, which installs
    // state without per-txn Delivered events — so wait on applied state,
    // not on the event count.
    wait_applied(&replicas[&follower], 25, Duration::from_secs(15));
    // Restart the follower: it recovers from its compacted storage.
    replicas.remove(&follower).expect("present").shutdown();
    std::thread::sleep(Duration::from_millis(300));
    let restarted = make(follower);
    // Its app was restored from the durable snapshot (or SNAP-synced);
    // wait until its applied log covers all 25 entries, in order.
    wait_applied(&restarted, 25, Duration::from_secs(20));
    let full = restarted.with_app(|a| {
        a.log()
            .iter()
            .map(|(_, d)| u32::from_le_bytes(d[..4].try_into().expect("payload")))
            .collect::<Vec<_>>()
    });
    assert_eq!(full, (0..25u32).collect::<Vec<_>>());
    drop(restarted);
    drop(replicas);
    let _ = std::fs::remove_dir_all(&dir);
}
