//! End-to-end tests for the submit admission gate over real TCP:
//! slots must be released on every exit path (deliver, reject, demote),
//! overload must shed visibly instead of queueing, and no path may leak
//! a slot — a leak shows up here as a timed-out admission, never a hang.
//!
//! The gate's own semantics (notify-one handoff, `close()` waking every
//! waiter, the adaptive controller) are unit-tested next to the
//! implementation in `src/admission.rs`; these tests cover the wiring
//! between the gate and the event loop.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use zab_core::ServerId;
use zab_node::{apps::BytesApp, NodeConfig, NodeEvent, Replica, Role, SubmitError};

fn address_book(n: u64) -> BTreeMap<ServerId, SocketAddr> {
    (1..=n)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect()
}

fn start_cluster(
    book: &BTreeMap<ServerId, SocketAddr>,
    window: usize,
) -> BTreeMap<ServerId, Replica<BytesApp>> {
    book.keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone())
                .with_submit_window(window)
                .with_adaptive_window(false);
            (id, Replica::start(cfg, BytesApp::new()).expect("start"))
        })
        .collect()
}

fn wait_for_leader(
    replicas: &BTreeMap<ServerId, Replica<BytesApp>>,
    timeout: Duration,
) -> ServerId {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        for (&id, r) in replicas {
            if matches!(r.role(), Role::Leading { established: true, .. }) {
                return id;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("no leader elected");
}

/// Every follower-side rejection must release its admission slot. With a
/// window of 2, a single leaked slot halves the gate and two leaks wedge
/// it — so 64 deadline-bounded submissions through a 2-slot gate only
/// all admit if reject-release is airtight. `submit_deadline` (not the
/// unbounded `submit`) keeps a regression from hanging the test: a leak
/// surfaces as `Overloaded` after the timeout, which the assert reports.
#[test]
fn follower_rejections_release_admission_slots() {
    let book = address_book(3);
    let replicas = start_cluster(&book, 2);
    let leader = wait_for_leader(&replicas, Duration::from_secs(10));
    let follower = book.keys().copied().find(|&id| id != leader).expect("a follower");
    let f = &replicas[&follower];

    const OPS: usize = 64;
    for i in 0..OPS {
        match f.submit_deadline(vec![i as u8], Duration::from_secs(10)) {
            Ok(()) => {}
            Err(e) => panic!("submission {i} failed to admit (leaked slot?): {e:?}"),
        }
    }
    // Every admitted op comes back as a NotPrimary rejection.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut rejected = 0;
    while rejected < OPS && Instant::now() < deadline {
        if let Ok(NodeEvent::Rejected { .. }) = f.events().recv_timeout(Duration::from_millis(200))
        {
            rejected += 1;
        }
    }
    assert_eq!(rejected, OPS, "follower rejected fewer ops than were admitted");
}

/// Overload at the leader sheds visibly: a tight `try_submit` loop far
/// faster than the commit pipeline must observe `Overloaded` (and the
/// `node.submits_shed` counter must agree exactly), while every op that
/// *was* admitted still delivers — shedding loses the excess, never the
/// accepted work. Afterwards a full window's worth of ops must admit
/// again: delivery released every slot.
#[test]
fn leader_sheds_overload_visibly_and_delivers_all_admitted_ops() {
    const WINDOW: usize = 64;
    let book = address_book(3);
    let replicas = start_cluster(&book, WINDOW);
    let leader_id = wait_for_leader(&replicas, Duration::from_secs(10));
    let leader = &replicas[&leader_id];

    let mut admitted = 0u64;
    let mut shed = 0u64;
    for i in 0..10_000u32 {
        match leader.try_submit(i.to_le_bytes().to_vec()) {
            Ok(()) => admitted += 1,
            Err(SubmitError::Overloaded(_)) => shed += 1,
            Err(SubmitError::Closed(_)) => panic!("replica closed mid-test"),
        }
    }
    assert!(shed > 0, "10k instant submissions through a {WINDOW}-slot gate never shed");
    assert!(admitted > 0, "gate admitted nothing");
    assert_eq!(
        leader.metrics_snapshot().counter("node.submits_shed"),
        shed,
        "shed counter disagrees with observed Overloaded errors"
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut delivered = 0u64;
    while delivered < admitted && Instant::now() < deadline {
        match leader.events().recv_timeout(Duration::from_millis(500)) {
            Ok(NodeEvent::Delivered(_)) => delivered += 1,
            Ok(NodeEvent::Rejected { reason, .. }) => {
                panic!("admitted op rejected ({reason}) — no churn expected here")
            }
            _ => {}
        }
    }
    assert_eq!(delivered, admitted, "some admitted ops never delivered");

    // Deliveries released the slots: a whole window admits immediately.
    for i in 0..WINDOW {
        leader
            .submit_deadline((i as u32).to_le_bytes().to_vec(), Duration::from_secs(10))
            .unwrap_or_else(|e| panic!("post-drain submission {i} failed: {e:?}"));
    }
}

/// Losing the primary role must release the slots of every in-flight
/// submission. Fill the gate on an established leader, kill its quorum
/// so the proposals can never commit, and wait for it to abdicate: a
/// subsequent deadline-bounded submission only admits if the demotion
/// handed those slots back.
#[test]
fn demotion_releases_in_flight_admission_slots() {
    const WINDOW: usize = 4;
    let book = address_book(3);
    let mut replicas = start_cluster(&book, WINDOW);
    let leader_id = wait_for_leader(&replicas, Duration::from_secs(10));

    // Kill the quorum, then fill the leader's admission window with ops
    // that can never commit. (If the leader notices the disconnects
    // first, these are rejected NotPrimary instead — which also releases
    // the slots, so the final assert is meaningful either way.)
    let followers: Vec<ServerId> = book.keys().copied().filter(|&id| id != leader_id).collect();
    for id in followers {
        replicas.remove(&id).expect("follower").shutdown();
    }
    let leader = &replicas[&leader_id];
    for i in 0..WINDOW {
        let _ = leader.submit_deadline(vec![i as u8], Duration::from_secs(5));
    }

    // The leader abdicates once it times out its lost quorum.
    let deadline = Instant::now() + Duration::from_secs(30);
    while matches!(leader.role(), Role::Leading { .. }) {
        assert!(Instant::now() < deadline, "leader never abdicated after quorum loss");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Demotion released the in-flight slots: the gate has room again.
    match leader.submit_deadline(b"after-demotion".to_vec(), Duration::from_secs(10)) {
        Ok(()) => {}
        Err(e) => panic!("post-demotion submission blocked — demotion leaked slots: {e:?}"),
    }
}
