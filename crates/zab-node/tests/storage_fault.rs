//! Graceful degradation under storage faults, end-to-end over real TCP:
//! a replica whose disk starts failing must emit
//! [`NodeEvent::StorageFault`], step out of the protocol
//! ([`Role::Faulted`]), and keep serving stale reads — while the
//! remaining majority keeps electing and committing.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zab_core::PersistRequest;
use zab_core::ServerId;
use zab_log::{MemStorage, Recovered, Storage, StorageError};
use zab_node::{apps::BytesApp, NodeConfig, NodeEvent, Replica, Role};

fn address_book(n: u64) -> BTreeMap<ServerId, SocketAddr> {
    (1..=n)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect()
}

/// A [`MemStorage`] whose flushes fail once the shared switch is thrown —
/// the moral equivalent of a disk going read-only under a live replica.
struct SwitchableStorage {
    inner: MemStorage,
    fail_flush: Arc<AtomicBool>,
}

impl Storage for SwitchableStorage {
    fn set_accepted_epoch(&mut self, epoch: zab_core::Epoch) -> Result<(), StorageError> {
        self.inner.set_accepted_epoch(epoch)
    }
    fn set_current_epoch(&mut self, epoch: zab_core::Epoch) -> Result<(), StorageError> {
        self.inner.set_current_epoch(epoch)
    }
    fn append_txns(&mut self, txns: &[zab_core::Txn]) -> Result<(), StorageError> {
        self.inner.append_txns(txns)
    }
    fn truncate(&mut self, to: zab_core::Zxid) -> Result<(), StorageError> {
        self.inner.truncate(to)
    }
    fn reset_to_snapshot(
        &mut self,
        snapshot: bytes::Bytes,
        zxid: zab_core::Zxid,
    ) -> Result<(), StorageError> {
        self.inner.reset_to_snapshot(snapshot, zxid)
    }
    fn compact(
        &mut self,
        snapshot: bytes::Bytes,
        zxid: zab_core::Zxid,
    ) -> Result<(), StorageError> {
        self.inner.compact(snapshot, zxid)
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        if self.fail_flush.load(Ordering::SeqCst) {
            return Err(StorageError::Io(std::io::Error::other("injected flush failure")));
        }
        self.inner.flush()
    }
    fn recover(&self) -> Result<Recovered, StorageError> {
        self.inner.recover()
    }
    fn apply(&mut self, req: &PersistRequest) -> Result<(), StorageError> {
        self.inner.apply(req)
    }
}

fn wait_for<F: FnMut() -> bool>(timeout: Duration, mut f: F) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn leader_of(replicas: &BTreeMap<ServerId, Replica<BytesApp>>) -> Option<ServerId> {
    replicas
        .iter()
        .find(|(_, r)| matches!(r.role(), Role::Leading { established: true, .. }))
        .map(|(&id, _)| id)
}

#[test]
fn malformed_durable_snapshot_faults_the_replica_instead_of_panicking() {
    // Storage whose durable snapshot is garbage with a non-zero base:
    // boot must install it, fail, and degrade to Role::Faulted — the
    // process stays alive and the fault is counted, never a panic.
    let book = address_book(1);
    let mut storage = Box::new(MemStorage::new());
    storage
        .reset_to_snapshot(bytes::Bytes::from_static(b"\x09\x00\x00\x00trunc"), zab_core::Zxid(7))
        .expect("seed bad snapshot");
    let cfg = NodeConfig::new(ServerId(1), book);
    let replica =
        Replica::start_with_storage(cfg, BytesApp::new(), storage).expect("boot must not panic");

    let mut saw_fault = false;
    let deadline = Instant::now() + Duration::from_secs(5);
    while !saw_fault && Instant::now() < deadline {
        if let Ok(NodeEvent::StorageFault { context, .. }) =
            replica.events().recv_timeout(Duration::from_millis(100))
        {
            assert_eq!(context, "install snapshot");
            saw_fault = true;
        }
    }
    assert!(saw_fault, "no StorageFault from the bad snapshot");
    assert!(
        wait_for(Duration::from_secs(5), || replica.role() == Role::Faulted),
        "replica never entered Role::Faulted"
    );
    let snap = replica.metrics_snapshot();
    assert_eq!(snap.counter("node.snapshot_install_failures"), 1);
    assert_eq!(snap.counter("node.storage_faults"), 1);
    // Still alive: the API answers, writes are rejected with a reason.
    replica.submit(b"rejected".to_vec());
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(NodeEvent::Rejected { reason, .. }) =
            replica.events().recv_timeout(Duration::from_millis(100))
        {
            assert_eq!(reason, "StorageFaulted");
            break;
        }
        assert!(Instant::now() < deadline, "faulted replica stopped responding");
    }
}

#[test]
fn faulted_replica_degrades_while_majority_commits() {
    let book = address_book(3);
    let switches: BTreeMap<ServerId, Arc<AtomicBool>> =
        book.keys().map(|&id| (id, Arc::new(AtomicBool::new(false)))).collect();
    let replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg = NodeConfig::new(id, book.clone());
            let storage = Box::new(SwitchableStorage {
                inner: MemStorage::new(),
                fail_flush: Arc::clone(&switches[&id]),
            });
            (id, Replica::start_with_storage(cfg, BytesApp::new(), storage).expect("start"))
        })
        .collect();

    assert!(
        wait_for(Duration::from_secs(10), || leader_of(&replicas).is_some()),
        "no initial leader"
    );
    let first = leader_of(&replicas).expect("leader");

    // Commit a baseline entry everywhere so the victim has applied state
    // to serve stale reads from after it faults.
    replicas[&first].submit(b"baseline".to_vec());
    assert!(
        wait_for(Duration::from_secs(10), || {
            replicas.values().all(|r| r.with_app(|a| !a.log().is_empty()))
        }),
        "baseline entry did not reach every replica"
    );

    // Throw the leader's disk switch: its very next flush fails. The
    // leader is the strongest case — it must step down, not just stall.
    switches[&first].store(true, Ordering::SeqCst);
    replicas[&first].submit(b"doomed".to_vec());

    // The victim reports the fault and fail-stops.
    let mut saw_fault = false;
    let deadline = Instant::now() + Duration::from_secs(10);
    while !saw_fault && Instant::now() < deadline {
        if let Ok(NodeEvent::StorageFault { context, error }) =
            replicas[&first].events().recv_timeout(Duration::from_millis(100))
        {
            assert_eq!(context, "append/flush");
            assert!(error.contains("injected flush failure"), "unexpected error: {error}");
            saw_fault = true;
        }
    }
    assert!(saw_fault, "no StorageFault event from the victim");
    assert!(
        wait_for(Duration::from_secs(5), || replicas[&first].role() == Role::Faulted),
        "victim never entered Role::Faulted"
    );

    // The survivors elect a successor and keep committing. Detection is
    // fail-silent (the faulted node's sockets stay open, it just goes
    // quiet), so convergence can take several timeout rounds — one
    // survivor may still trust the silent leader while the other is
    // already looking. Give it generous wall-clock room.
    assert!(
        wait_for(Duration::from_secs(60), || { leader_of(&replicas).is_some_and(|l| l != first) }),
        "survivors never elected a successor"
    );
    let survivors: Vec<ServerId> = book.keys().copied().filter(|&id| id != first).collect();
    let before =
        survivors.iter().map(|id| replicas[id].with_app(|a| a.log().len())).max().expect("two");
    assert!(
        wait_for(Duration::from_secs(30), || {
            // Leadership may still be churning; submit to whoever leads now.
            if let Some(l) = leader_of(&replicas) {
                if l != first {
                    replicas[&l].submit(b"after-fault".to_vec());
                }
            }
            survivors.iter().all(|id| replicas[id].with_app(|a| a.log().len()) > before)
        }),
        "majority stopped committing after the fault"
    );

    // The faulted node still serves (stale) reads from its applied state,
    // and rejects writes with a reason naming the fault.
    assert!(replicas[&first].with_app(|a| !a.log().is_empty()));
    replicas[&first].submit(b"rejected".to_vec());
    let mut saw_reject = false;
    let deadline = Instant::now() + Duration::from_secs(5);
    while !saw_reject && Instant::now() < deadline {
        if let Ok(NodeEvent::Rejected { reason, .. }) =
            replicas[&first].events().recv_timeout(Duration::from_millis(100))
        {
            assert_eq!(reason, "StorageFaulted");
            saw_reject = true;
        }
    }
    assert!(saw_reject, "faulted replica did not reject the write");
}
