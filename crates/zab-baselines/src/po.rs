//! Primary-order checking over origin-tagged delivered values.

use crate::multipaxos::TaggedValue;
use std::collections::BTreeMap;
use std::fmt;

/// A primary-order violation in a delivered sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoViolation {
    /// A primary's k-th value delivered without its (k-1)-th first
    /// (local primary order / causal gap).
    LocalGap {
        /// Index in the delivered sequence.
        index: usize,
        /// The offending value.
        value: TaggedValue,
        /// The sequence number expected from this origin next.
        expected_seq: u32,
    },
    /// A value of an earlier primary delivered after a value of a later
    /// primary (global primary order).
    GlobalInversion {
        /// Index in the delivered sequence.
        index: usize,
        /// The offending (old-primary) value.
        value: TaggedValue,
        /// The later primary already seen.
        later_origin: u32,
    },
}

impl fmt::Display for PoViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoViolation::LocalGap { index, value, expected_seq } => write!(
                f,
                "local primary order violated at index {index}: origin {} delivered seq {} but seq {expected_seq} was never delivered",
                value.origin, value.seq
            ),
            PoViolation::GlobalInversion { index, value, later_origin } => write!(
                f,
                "global primary order violated at index {index}: origin {} seq {} delivered after origin {later_origin}",
                value.origin, value.seq
            ),
        }
    }
}

/// Checks local + global primary order of a delivered sequence.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_primary_order(delivered: &[TaggedValue]) -> Result<(), PoViolation> {
    let mut next_seq: BTreeMap<u32, u32> = BTreeMap::new();
    let mut max_origin_seen: u32 = 0;
    for (index, &v) in delivered.iter().enumerate() {
        if v.origin < max_origin_seen {
            return Err(PoViolation::GlobalInversion {
                index,
                value: v,
                later_origin: max_origin_seen,
            });
        }
        max_origin_seen = max_origin_seen.max(v.origin);
        let expected = next_seq.entry(v.origin).or_insert(1);
        if v.seq != *expected {
            return Err(PoViolation::LocalGap { index, value: v, expected_seq: *expected });
        }
        *expected += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(origin: u32, seq: u32) -> TaggedValue {
        TaggedValue { origin, seq }
    }

    #[test]
    fn clean_sequence_passes() {
        check_primary_order(&[v(1, 1), v(1, 2), v(2, 1), v(2, 2)]).unwrap();
    }

    #[test]
    fn empty_sequence_passes() {
        check_primary_order(&[]).unwrap();
    }

    #[test]
    fn local_gap_detected() {
        let err = check_primary_order(&[v(1, 1), v(1, 3)]).unwrap_err();
        assert!(matches!(err, PoViolation::LocalGap { index: 1, expected_seq: 2, .. }));
    }

    #[test]
    fn missing_first_value_detected() {
        let err = check_primary_order(&[v(1, 2)]).unwrap_err();
        assert!(matches!(err, PoViolation::LocalGap { expected_seq: 1, .. }));
    }

    #[test]
    fn global_inversion_detected() {
        // The paper's Figure-1 shape: new primary's value, then an old
        // primary's surviving later value.
        let err = check_primary_order(&[v(2, 1), v(1, 2)]).unwrap_err();
        assert!(matches!(err, PoViolation::GlobalInversion { index: 1, later_origin: 2, .. }));
    }

    #[test]
    fn new_primary_after_clean_prefix_is_fine() {
        check_primary_order(&[v(1, 1), v(2, 1)]).unwrap();
    }
}
