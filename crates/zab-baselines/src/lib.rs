//! # zab-baselines — what Zab is contrasted against
//!
//! The DSN'11 paper motivates Zab with a deceptively simple observation:
//! running a primary's stream of incremental state changes through a
//! **sequence of independent consensus instances** (naive Multi-Paxos) is
//! not enough, once the primary keeps **multiple proposals outstanding**.
//! After a primary crash, the new leader learns a *suffix* of the old
//! primary's proposals from its prepare quorum — an earlier proposal may
//! be missing while a later one survives — and fills the gap with its own
//! value. Delivering in slot order then yields a sequence in which:
//!
//! - an old primary's k-th change is delivered although its (k-1)-th never
//!   was (**local primary order** violated), and
//! - an old primary's change is delivered *after* a new primary's change
//!   (**global primary order** violated),
//!
//! either of which corrupts incremental (delta-based) state.
//!
//! This crate implements that baseline faithfully enough to *measure* the
//! phenomenon:
//!
//! - [`multipaxos`] — ballots, acceptors, a pipelined proposer (window of
//!   outstanding slots), majority quorums per slot.
//! - [`harness`] — a deterministic scenario runner: message loss, primary
//!   crash, takeover, slot-order delivery.
//! - [`po`] — a primary-order checker over origin-tagged values, used to
//!   count violating runs (the `table_po_violations` benchmark compares the
//!   violation rate against Zab's — which is zero by construction).
//!
//! # Example
//!
//! ```
//! use zab_baselines::harness::{Scenario, run_scenario};
//! use zab_baselines::po::check_primary_order;
//!
//! // A crash-free run never violates primary order.
//! let outcome = run_scenario(&Scenario {
//!     acceptors: 3,
//!     window: 8,
//!     ops_before_crash: 10,
//!     crash_primary: false,
//!     ops_after_takeover: 0,
//!     accept_drop_percent: 0,
//!     seed: 1,
//! });
//! assert!(check_primary_order(&outcome.delivered).is_ok());
//! ```

pub mod harness;
pub mod multipaxos;
pub mod po;
