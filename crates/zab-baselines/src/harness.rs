//! Deterministic scenario runner for the Multi-Paxos baseline.
//!
//! Reproduces the paper's motivating schedule as a parameterized,
//! seeded experiment:
//!
//! 1. Primary 1 wins Phase 1 and pipelines `ops_before_crash` values with
//!    `window` outstanding; each per-acceptor `Accept` is independently
//!    lost with probability `accept_drop_percent`.
//! 2. Primary 1 crashes (if `crash_primary`); primary 2 takes over,
//!    learns a possibly-holey suffix from its prepare quorum, fills gaps
//!    with its own values, and appends `ops_after_takeover` more.
//! 3. Chosen values are delivered in slot order; the delivered sequence is
//!    returned for primary-order checking.

use crate::multipaxos::{Acceptor, PaxosMsg, Proposer, Slot, TaggedValue};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Number of acceptors (use odd).
    pub acceptors: usize,
    /// Proposer pipelining window (the paper's outstanding knob).
    pub window: usize,
    /// Values primary 1 submits before the crash point.
    pub ops_before_crash: u32,
    /// Whether primary 1 crashes after submitting.
    pub crash_primary: bool,
    /// Values primary 2 submits after takeover.
    pub ops_after_takeover: u32,
    /// Per-acceptor probability (0–100) that an `Accept` message is lost.
    pub accept_drop_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of a scenario run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Chosen values in slot order, delivered gap-free from slot 1.
    pub delivered: Vec<TaggedValue>,
    /// Number of slots chosen overall.
    pub chosen_slots: usize,
    /// Total `Accept` messages dropped.
    pub dropped_accepts: u64,
}

/// Runs one scenario deterministically.
pub fn run_scenario(s: &Scenario) -> Outcome {
    let mut rng = ChaCha8Rng::seed_from_u64(s.seed);
    let mut acceptors: Vec<Acceptor> = (0..s.acceptors).map(|_| Acceptor::new()).collect();
    let mut chosen: BTreeMap<Slot, TaggedValue> = BTreeMap::new();
    let mut dropped = 0u64;

    // Helper: broadcast Phase-2a messages with per-acceptor loss, feeding
    // Accepted responses straight back (synchronous round).
    fn drive_accepts(
        p: &mut Proposer,
        acceptors: &mut [Acceptor],
        msgs: Vec<PaxosMsg>,
        chosen: &mut BTreeMap<Slot, TaggedValue>,
        rng: &mut ChaCha8Rng,
        drop_percent: u32,
        dropped: &mut u64,
    ) {
        let mut queue = msgs;
        while !queue.is_empty() {
            let mut next = Vec::new();
            for msg in &queue {
                for (i, a) in acceptors.iter_mut().enumerate() {
                    if matches!(msg, PaxosMsg::Accept { .. })
                        && rng.gen_range(0..100) < drop_percent
                    {
                        *dropped += 1;
                        continue;
                    }
                    if let Some(PaxosMsg::Accepted { ballot, slot }) = a.handle(msg) {
                        let (newly, more) = p.on_accepted(i as u64, ballot, slot);
                        for s in newly {
                            chosen.insert(s, p.value_in(s).expect("proposed"));
                        }
                        next.extend(more);
                    }
                }
            }
            queue = next;
        }
    }

    // --- Primary 1 ---
    let mut p1 = Proposer::new(1, 1, s.acceptors, s.window);
    let prep = p1.prepare();
    let mut phase2 = Vec::new();
    for (i, a) in acceptors.iter_mut().enumerate() {
        if let Some(PaxosMsg::Promise { ballot, accepted }) = a.handle(&prep) {
            phase2.extend(p1.on_promise(i as u64, ballot, &accepted));
        }
    }
    drive_accepts(
        &mut p1,
        &mut acceptors,
        phase2,
        &mut chosen,
        &mut rng,
        s.accept_drop_percent,
        &mut dropped,
    );
    for _ in 0..s.ops_before_crash {
        let msgs = p1.submit();
        drive_accepts(
            &mut p1,
            &mut acceptors,
            msgs,
            &mut chosen,
            &mut rng,
            s.accept_drop_percent,
            &mut dropped,
        );
    }

    // --- Crash & takeover ---
    if s.crash_primary {
        drop(p1);
        let mut p2 = Proposer::new(2, 2, s.acceptors, s.window);
        let prep = p2.prepare();
        let mut phase2 = Vec::new();
        // The prepare quorum is a random majority — which acceptors answer
        // determines which old values the new primary learns.
        let mut order: Vec<usize> = (0..s.acceptors).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let majority = s.acceptors / 2 + 1;
        for &i in order.iter().take(majority) {
            if let Some(PaxosMsg::Promise { ballot, accepted }) = acceptors[i].handle(&prep) {
                phase2.extend(p2.on_promise(i as u64, ballot, &accepted));
            }
        }
        // Takeover traffic is delivered reliably (the interesting loss
        // already happened).
        drive_accepts(&mut p2, &mut acceptors, phase2, &mut chosen, &mut rng, 0, &mut dropped);
        for _ in 0..s.ops_after_takeover {
            let msgs = p2.submit();
            drive_accepts(&mut p2, &mut acceptors, msgs, &mut chosen, &mut rng, 0, &mut dropped);
        }
    }

    // --- Delivery: slot order, stopping at the first gap ---
    let mut delivered = Vec::new();
    let mut next = 1u64;
    while let Some(&v) = chosen.get(&next) {
        delivered.push(v);
        next += 1;
    }
    Outcome { delivered, chosen_slots: chosen.len(), dropped_accepts: dropped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::po::check_primary_order;

    #[test]
    fn lossless_crash_free_run_delivers_everything_in_order() {
        let o = run_scenario(&Scenario {
            acceptors: 3,
            window: 8,
            ops_before_crash: 20,
            crash_primary: false,
            ops_after_takeover: 0,
            accept_drop_percent: 0,
            seed: 1,
        });
        assert_eq!(o.delivered.len(), 20);
        check_primary_order(&o.delivered).unwrap();
    }

    #[test]
    fn single_outstanding_never_violates_po() {
        // The contrast the paper draws: with window = 1 the suffix-with-
        // holes phenomenon cannot arise.
        for seed in 0..200 {
            let o = run_scenario(&Scenario {
                acceptors: 3,
                window: 1,
                ops_before_crash: 10,
                crash_primary: true,
                ops_after_takeover: 5,
                accept_drop_percent: 40,
                seed,
            });
            check_primary_order(&o.delivered)
                .unwrap_or_else(|e| panic!("seed {seed} violated PO with window 1: {e}"));
        }
    }

    #[test]
    fn pipelined_crashy_lossy_runs_do_violate_po() {
        // With multiple outstanding proposals, loss + crash + takeover
        // produces primary-order violations in a measurable fraction of
        // seeds — the paper's Figure-1 phenomenon.
        let mut violations = 0;
        for seed in 0..200 {
            let o = run_scenario(&Scenario {
                acceptors: 3,
                window: 8,
                ops_before_crash: 10,
                crash_primary: true,
                ops_after_takeover: 5,
                accept_drop_percent: 40,
                seed,
            });
            if check_primary_order(&o.delivered).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected at least one primary-order violation across 200 seeds");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Scenario {
            acceptors: 5,
            window: 4,
            ops_before_crash: 8,
            crash_primary: true,
            ops_after_takeover: 3,
            accept_drop_percent: 30,
            seed: 99,
        };
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.dropped_accepts, b.dropped_accepts);
    }
}
