//! Naive Multi-Paxos: independent synod instances per log slot, a
//! pipelined proposer, majority quorums.
//!
//! This is deliberately the *textbook* construction the paper argues
//! against — no primary-order machinery, no epoch-tagged gap handling —
//! so its failure mode can be measured. It is still a correct total-order
//! broadcast (slot-order delivery of chosen values): the violations it
//! exhibits are of *primary order*, not of consensus.

use std::collections::BTreeMap;

/// A ballot number: `(round, proposer id)`, totally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Ballot {
    /// Monotone round.
    pub round: u64,
    /// Proposer id (ties broken by id).
    pub proposer: u64,
}

/// A log slot index (1-based).
pub type Slot = u64;

/// A broadcast value, tagged with its origin so primary order is checkable:
/// `origin` is the primary instance (epoch) that generated it, `seq` its
/// position in that primary's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedValue {
    /// Primary instance that generated the value.
    pub origin: u32,
    /// 1-based position within that primary's stream.
    pub seq: u32,
}

/// Messages of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaxosMsg {
    /// Phase 1a: claim all slots with `ballot`.
    Prepare {
        /// The ballot being claimed.
        ballot: Ballot,
    },
    /// Phase 1b: promise plus everything this acceptor accepted.
    Promise {
        /// Echoed ballot.
        ballot: Ballot,
        /// Accepted values: slot → (ballot, value).
        accepted: Vec<(Slot, Ballot, TaggedValue)>,
    },
    /// Phase 2a: propose `value` in `slot` at `ballot`.
    Accept {
        /// The ballot.
        ballot: Ballot,
        /// The slot.
        slot: Slot,
        /// The value.
        value: TaggedValue,
    },
    /// Phase 2b: accepted.
    Accepted {
        /// Echoed ballot.
        ballot: Ballot,
        /// Echoed slot.
        slot: Slot,
    },
}

/// A Paxos acceptor: one promised ballot, per-slot accepted values.
#[derive(Debug, Clone, Default)]
pub struct Acceptor {
    promised: Ballot,
    accepted: BTreeMap<Slot, (Ballot, TaggedValue)>,
}

impl Acceptor {
    /// Fresh acceptor.
    pub fn new() -> Acceptor {
        Acceptor::default()
    }

    /// Handles a message, returning the reply (if any). Nacks are modeled
    /// as silence — proposers work with quorums, not rejections.
    pub fn handle(&mut self, msg: &PaxosMsg) -> Option<PaxosMsg> {
        match msg {
            PaxosMsg::Prepare { ballot } => {
                if *ballot > self.promised {
                    self.promised = *ballot;
                    Some(PaxosMsg::Promise {
                        ballot: *ballot,
                        accepted: self.accepted.iter().map(|(&s, &(b, v))| (s, b, v)).collect(),
                    })
                } else {
                    None
                }
            }
            PaxosMsg::Accept { ballot, slot, value } => {
                if *ballot >= self.promised {
                    self.promised = *ballot;
                    self.accepted.insert(*slot, (*ballot, *value));
                    Some(PaxosMsg::Accepted { ballot: *ballot, slot: *slot })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// What this acceptor accepted in `slot`, if anything.
    pub fn accepted_in(&self, slot: Slot) -> Option<(Ballot, TaggedValue)> {
        self.accepted.get(&slot).copied()
    }
}

/// State of one slot at the proposer.
#[derive(Debug, Clone)]
pub struct SlotState {
    /// The value proposed in this slot at the current ballot.
    pub value: TaggedValue,
    /// Acceptors that sent `Accepted`.
    pub acks: Vec<u64>,
    /// Chosen (majority accepted).
    pub chosen: bool,
}

/// A pipelined Multi-Paxos proposer (the "primary" of the baseline).
///
/// On becoming leader it runs Phase 1 once for all slots; thereafter it
/// assigns client values to consecutive slots and keeps up to `window`
/// un-chosen slots in flight (the analogue of Zab's outstanding window).
#[derive(Debug)]
pub struct Proposer {
    /// This proposer's id (also the primary-instance tag for its values).
    pub id: u64,
    /// Current ballot (valid after Phase 1 wins).
    pub ballot: Ballot,
    /// Majority threshold (acceptors/2 + 1).
    majority: usize,
    /// Promise senders.
    promises: Vec<u64>,
    /// Union of accepted reports from promises: slot → best (ballot, value).
    learned: BTreeMap<Slot, (Ballot, TaggedValue)>,
    /// True once Phase 1 completed.
    pub leading: bool,
    /// Slot assignment cursor (next free slot).
    next_slot: Slot,
    /// In-flight and decided slots.
    pub slots: BTreeMap<Slot, SlotState>,
    /// Pipelining window.
    window: usize,
    /// Client values not yet assigned to slots.
    backlog: Vec<TaggedValue>,
    /// Sequence counter for values this proposer originates.
    next_seq: u32,
}

impl Proposer {
    /// A proposer over `acceptors` acceptors, claiming ballots with round
    /// `round`, pipelining up to `window` slots.
    pub fn new(id: u64, round: u64, acceptors: usize, window: usize) -> Proposer {
        Proposer {
            id,
            ballot: Ballot { round, proposer: id },
            majority: acceptors / 2 + 1,
            promises: Vec::new(),
            learned: BTreeMap::new(),
            leading: false,
            next_slot: 1,
            slots: BTreeMap::new(),
            window,
            backlog: Vec::new(),
            next_seq: 1,
        }
    }

    /// The Phase 1a message to broadcast.
    pub fn prepare(&self) -> PaxosMsg {
        PaxosMsg::Prepare { ballot: self.ballot }
    }

    /// Handles a promise from `acceptor`. When a majority promises, Phase 1
    /// completes: previously accepted values are re-proposed (highest
    /// ballot per slot), and the slot cursor moves past everything learned.
    /// Returns Phase 2a messages to broadcast when leadership is won.
    pub fn on_promise(
        &mut self,
        acceptor: u64,
        ballot: Ballot,
        accepted: &[(Slot, Ballot, TaggedValue)],
    ) -> Vec<PaxosMsg> {
        if ballot != self.ballot || self.leading {
            return Vec::new();
        }
        if !self.promises.contains(&acceptor) {
            self.promises.push(acceptor);
            for &(slot, b, v) in accepted {
                let entry = self.learned.entry(slot).or_insert((b, v));
                if b > entry.0 {
                    *entry = (b, v);
                }
            }
        }
        if self.promises.len() < self.majority {
            return Vec::new();
        }
        self.leading = true;
        // Re-propose every learned value at our ballot; this is where the
        // baseline inherits a *suffix with holes* of the old primary's
        // stream — the root of the primary-order violation.
        let mut out = Vec::new();
        let max_learned = self.learned.keys().copied().max().unwrap_or(0);
        for (&slot, &(_, value)) in &self.learned {
            self.slots.insert(slot, SlotState { value, acks: Vec::new(), chosen: false });
            out.push(PaxosMsg::Accept { ballot: self.ballot, slot, value });
        }
        // Gaps below the learned maximum must be filled before anything
        // later can be delivered; naive Multi-Paxos fills them with the
        // new primary's own next values.
        for slot in 1..=max_learned {
            if !self.slots.contains_key(&slot) {
                let value = self.next_value();
                self.slots.insert(slot, SlotState { value, acks: Vec::new(), chosen: false });
                out.push(PaxosMsg::Accept { ballot: self.ballot, slot, value });
            }
        }
        self.next_slot = max_learned + 1;
        out.extend(self.pump());
        out
    }

    fn next_value(&mut self) -> TaggedValue {
        let v = TaggedValue { origin: self.id as u32, seq: self.next_seq };
        self.next_seq += 1;
        v
    }

    /// Queues one client operation; returns Phase 2a messages that fit in
    /// the window.
    pub fn submit(&mut self) -> Vec<PaxosMsg> {
        let v = self.next_value();
        self.backlog.push(v);
        if self.leading {
            self.pump()
        } else {
            Vec::new()
        }
    }

    /// Assigns backlog values to slots while the window allows.
    fn pump(&mut self) -> Vec<PaxosMsg> {
        let mut out = Vec::new();
        while !self.backlog.is_empty() && self.in_flight() < self.window {
            let value = self.backlog.remove(0);
            let slot = self.next_slot;
            self.next_slot += 1;
            self.slots.insert(slot, SlotState { value, acks: Vec::new(), chosen: false });
            out.push(PaxosMsg::Accept { ballot: self.ballot, slot, value });
        }
        out
    }

    fn in_flight(&self) -> usize {
        self.slots.values().filter(|s| !s.chosen).count()
    }

    /// Handles an `Accepted`; returns newly chosen slots and any follow-up
    /// proposals the freed window admits.
    pub fn on_accepted(
        &mut self,
        acceptor: u64,
        ballot: Ballot,
        slot: Slot,
    ) -> (Vec<Slot>, Vec<PaxosMsg>) {
        if ballot != self.ballot {
            return (Vec::new(), Vec::new());
        }
        let mut chosen = Vec::new();
        if let Some(st) = self.slots.get_mut(&slot) {
            if !st.chosen && !st.acks.contains(&acceptor) {
                st.acks.push(acceptor);
                if st.acks.len() >= self.majority {
                    st.chosen = true;
                    chosen.push(slot);
                }
            }
        }
        let more = if chosen.is_empty() { Vec::new() } else { self.pump() };
        (chosen, more)
    }

    /// The value proposed in `slot` (for delivery once chosen).
    pub fn value_in(&self, slot: Slot) -> Option<TaggedValue> {
        self.slots.get(&slot).map(|s| s.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn promise_all(p: &mut Proposer, acceptors: &mut [Acceptor]) -> Vec<PaxosMsg> {
        let prep = p.prepare();
        let mut out = Vec::new();
        for (i, a) in acceptors.iter_mut().enumerate() {
            if let Some(PaxosMsg::Promise { ballot, accepted }) = a.handle(&prep) {
                out.extend(p.on_promise(i as u64, ballot, &accepted));
            }
        }
        out
    }

    #[test]
    fn ballot_order() {
        assert!(Ballot { round: 2, proposer: 1 } > Ballot { round: 1, proposer: 9 });
        assert!(Ballot { round: 1, proposer: 2 } > Ballot { round: 1, proposer: 1 });
    }

    #[test]
    fn fresh_leader_wins_phase_one_with_no_history() {
        let mut acceptors = vec![Acceptor::new(), Acceptor::new(), Acceptor::new()];
        let mut p = Proposer::new(1, 1, 3, 4);
        let msgs = promise_all(&mut p, &mut acceptors);
        assert!(p.leading);
        assert!(msgs.is_empty(), "nothing to re-propose");
    }

    #[test]
    fn values_get_chosen_by_majority() {
        let mut acceptors = vec![Acceptor::new(), Acceptor::new(), Acceptor::new()];
        let mut p = Proposer::new(1, 1, 3, 4);
        promise_all(&mut p, &mut acceptors);
        let accepts = p.submit();
        assert_eq!(accepts.len(), 1);
        let mut chosen = Vec::new();
        for (i, a) in acceptors.iter_mut().enumerate() {
            if let Some(PaxosMsg::Accepted { ballot, slot }) = a.handle(&accepts[0]) {
                let (c, _) = p.on_accepted(i as u64, ballot, slot);
                chosen.extend(c);
            }
        }
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn window_limits_in_flight_slots() {
        let mut acceptors = vec![Acceptor::new(), Acceptor::new(), Acceptor::new()];
        let mut p = Proposer::new(1, 1, 3, 2);
        promise_all(&mut p, &mut acceptors);
        let mut sent = 0;
        for _ in 0..5 {
            sent += p.submit().len();
        }
        assert_eq!(sent, 2, "window of 2 admits only 2 accepts");
    }

    #[test]
    fn acceptor_rejects_stale_ballots() {
        let mut a = Acceptor::new();
        let high = Ballot { round: 5, proposer: 1 };
        assert!(a.handle(&PaxosMsg::Prepare { ballot: high }).is_some());
        let low = Ballot { round: 1, proposer: 2 };
        assert!(a.handle(&PaxosMsg::Prepare { ballot: low }).is_none());
        assert!(a
            .handle(&PaxosMsg::Accept {
                ballot: low,
                slot: 1,
                value: TaggedValue { origin: 2, seq: 1 }
            })
            .is_none());
    }

    #[test]
    fn takeover_re_proposes_learned_values_and_fills_gaps() {
        let mut acceptors = vec![Acceptor::new(), Acceptor::new(), Acceptor::new()];
        // Old primary gets slot 2 accepted everywhere but slot 1 nowhere
        // (its Accept for slot 1 was "lost").
        let mut old = Proposer::new(1, 1, 3, 4);
        promise_all(&mut old, &mut acceptors);
        let _lost_slot1 = old.submit();
        let a2 = old.submit();
        for a in acceptors.iter_mut() {
            a.handle(&a2[0]);
        }
        // New primary takes over.
        let mut new = Proposer::new(2, 2, 3, 4);
        let msgs = promise_all(&mut new, &mut acceptors);
        // It re-proposes old slot 2 and fills slot 1 with its own value.
        let mut slots: Vec<(Slot, TaggedValue)> = msgs
            .iter()
            .filter_map(|m| match m {
                PaxosMsg::Accept { slot, value, .. } => Some((*slot, *value)),
                _ => None,
            })
            .collect();
        slots.sort_by_key(|&(s, _)| s);
        assert_eq!(slots[0].0, 1);
        assert_eq!(slots[0].1.origin, 2, "gap filled by the new primary");
        assert_eq!(slots[1].0, 2);
        assert_eq!(slots[1].1, TaggedValue { origin: 1, seq: 2 }, "old suffix survives");
    }
}
