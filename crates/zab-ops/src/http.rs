//! Tiny blocking HTTP/1.0 GET client for scraping admin endpoints.
//!
//! Stdlib-only: one `TcpStream` per request, connect/read timeouts so a
//! wedged node cannot hang `zabctl`, read-to-EOF body framing (the admin
//! server closes after each response, HTTP/1.0 style).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on a response we are willing to buffer (traces from a
/// large ring can run to a few MB; beyond this something is wrong).
const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// A scrape failure, tagged with the address it happened against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The node address the request targeted.
    pub addr: String,
    /// What went wrong, human-readable.
    pub msg: String,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.addr, self.msg)
    }
}

impl std::error::Error for HttpError {}

/// A parsed response: status code plus the full body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// Response body (headers stripped).
    pub body: String,
}

fn fail(addr: &str, msg: impl Into<String>) -> HttpError {
    HttpError { addr: addr.to_string(), msg: msg.into() }
}

/// Issues `GET path` against `addr` ("host:port") and returns the parsed
/// response. `timeout` bounds the connect and each read individually.
pub fn get(addr: &str, path: &str, timeout: Duration) -> Result<Response, HttpError> {
    let sock: SocketAddr = addr.parse().map_err(|e| fail(addr, format!("bad address: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| fail(addr, format!("connect: {e}")))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| fail(addr, format!("set timeout: {e}")))?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| fail(addr, format!("set timeout: {e}")))?;
    let req = format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).map_err(|e| fail(addr, format!("write: {e}")))?;

    let mut raw = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                if raw.len() > MAX_RESPONSE_BYTES {
                    return Err(fail(addr, "response too large"));
                }
            }
            Err(e) => return Err(fail(addr, format!("read: {e}"))),
        }
    }
    parse_response(addr, &raw)
}

fn parse_response(addr: &str, raw: &[u8]) -> Result<Response, HttpError> {
    let text = std::str::from_utf8(raw).map_err(|_| fail(addr, "non-utf8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| fail(addr, "truncated response (no header terminator)"))?;
    let status_line = head.lines().next().unwrap_or("");
    let mut parts = status_line.split_whitespace();
    let proto = parts.next().unwrap_or("");
    if !proto.starts_with("HTTP/") {
        return Err(fail(addr, format!("not an HTTP response: {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| fail(addr, format!("bad status line: {status_line:?}")))?;
    Ok(Response { status, body: body.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn gets_body_and_status_from_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 1024];
            let n = conn.read(&mut buf).expect("read");
            let req = String::from_utf8_lossy(&buf[..n]).to_string();
            conn.write_all(b"HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n\r\n{\"ok\":1}")
                .expect("write");
            req
        });
        let resp = get(&addr, "/health", Duration::from_secs(2)).expect("get");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"ok\":1}");
        let req = server.join().expect("join");
        assert!(req.starts_with("GET /health HTTP/1.0\r\n"), "request was {req:?}");
    }

    #[test]
    fn reports_connect_failure_with_address() {
        // Port 1 on loopback: nothing listens there.
        let err = get("127.0.0.1:1", "/health", Duration::from_millis(300)).unwrap_err();
        assert_eq!(err.addr, "127.0.0.1:1");
        assert!(err.msg.contains("connect"), "msg was {:?}", err.msg);
    }

    #[test]
    fn rejects_non_http_garbage() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 1024];
            let _ = conn.read(&mut buf);
            let _ = conn.write_all(b"SMTP ready\r\n\r\n");
        });
        let err = get(&addr, "/", Duration::from_secs(2)).unwrap_err();
        assert!(err.msg.contains("not an HTTP response"), "msg was {:?}", err.msg);
    }
}
