//! Ensemble observability plane for the Zab reproduction.
//!
//! Everything a replica knows about itself is already served over its
//! admin endpoint (`/metrics`, `/health`, `/trace`); this crate is the
//! cross-node half — scrape every node, line the answers up, and say
//! something about the *ensemble*:
//!
//! - [`scrape`] pulls `/health` and raw traces from an address list,
//!   tolerating partial answers.
//! - [`zab_trace::align`] (consumed here) estimates per-node clock
//!   offsets from causal wire edges and stitches per-node flight-recorder
//!   rings into one cross-node timeline; [`status`] renders the timeline
//!   for a single zxid — leader submit → wire-out → follower wire-in →
//!   deliver, on one clock.
//! - [`audit`] is the invariant watchdog: epoch monotonicity, single
//!   leader per epoch, follower committed ≤ leader committed, and
//!   delivered-prefix agreement via the rolling delivery hash the apply
//!   path maintains (`zab_core::DeliveryHash`).
//!
//! The `zabctl` binary wires these into `status`, `trace <zxid>`, and
//! `audit [--watch]` subcommands; see `src/bin/zabctl.rs` and the
//! DESIGN.md §9.3 walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod http;
pub mod json;
pub mod model;
pub mod scrape;
pub mod status;

pub use audit::{AuditState, Violation};
pub use model::{DeliveryWitness, LagRow, LatencySummary, NodeHealth};
pub use scrape::EnsembleSnapshot;

/// Parses a zxid argument: either packed decimal (`4294967299`) or
/// `epoch:counter` (`1:3`).
pub fn parse_zxid(s: &str) -> Result<u64, String> {
    if let Some((e, c)) = s.split_once(':') {
        let e: u64 = e.parse().map_err(|_| format!("bad epoch in {s:?}"))?;
        let c: u64 = c.parse().map_err(|_| format!("bad counter in {s:?}"))?;
        if e > u32::MAX as u64 || c > u32::MAX as u64 {
            return Err(format!("zxid parts out of range in {s:?}"));
        }
        Ok((e << 32) | c)
    } else {
        s.parse().map_err(|_| format!("bad zxid {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_zxid_accepts_both_forms() {
        assert_eq!(parse_zxid("4294967299"), Ok((1 << 32) | 3));
        assert_eq!(parse_zxid("1:3"), Ok((1 << 32) | 3));
        assert_eq!(parse_zxid("0:0"), Ok(0));
        assert!(parse_zxid("x").is_err());
        assert!(parse_zxid("1:x").is_err());
        assert!(parse_zxid("4294967296:1").is_err());
    }
}
