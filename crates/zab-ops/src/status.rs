//! `zabctl status` / `zabctl trace` output assembly and rendering.
//!
//! Both commands render twice: a human table for terminals and a JSON
//! document for scripts (`--json`), with the same facts in each.

use crate::model::NodeHealth;
use crate::scrape::EnsembleSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use zab_trace::TraceEvent;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn zxid_display(z: u64) -> String {
    format!("{}:{}", z >> 32, z & 0xffff_ffff)
}

/// Renders the ensemble summary as a human-readable table.
pub fn render_status_text(snap: &EnsembleSnapshot) -> String {
    let mut out = String::new();
    match snap.leader() {
        Some(l) => {
            let _ = writeln!(
                out,
                "ensemble: leader={} epoch={} committed={} topology={}",
                l.node, l.epoch, l.last_committed, l.topology
            );
        }
        None => {
            let _ = writeln!(out, "ensemble: no active leader");
        }
    }
    let _ = writeln!(
        out,
        "{:<4} {:<21} {:<10} {:<7} {:<6} {:<12} {:>7} {:>7}",
        "id", "addr", "role", "active", "epoch", "committed", "p50ms", "p99ms"
    );
    for n in &snap.nodes {
        let _ = writeln!(
            out,
            "{:<4} {:<21} {:<10} {:<7} {:<6} {:<12} {:>7} {:>7}",
            n.node,
            n.addr,
            n.role,
            n.active,
            n.epoch,
            n.last_committed,
            n.commit_latency_ms.p50,
            n.commit_latency_ms.p99
        );
    }
    if let Some(l) = snap.leader() {
        if !l.lag.is_empty() {
            let _ = writeln!(out, "replication lag (leader's view):");
            let _ =
                writeln!(out, "  {:<6} {:<12} {:>9} {:<8}", "peer", "acked", "lag_txns", "state");
            for r in &l.lag {
                let acked = r.acked_zxid.map_or_else(|| "-".to_string(), zxid_display);
                let lag = r.lag_txns.map_or_else(|| "?".to_string(), |n| n.to_string());
                let state = if r.syncing { "syncing" } else { "active" };
                let _ = writeln!(out, "  {:<6} {:<12} {:>9} {:<8}", r.peer, acked, lag, state);
            }
        }
        if !l.relay_groups.is_empty() {
            let _ = writeln!(out, "relay plan:");
            for (relay, members) in &l.relay_groups {
                let _ = writeln!(out, "  relay {relay} -> {members:?}");
            }
        }
    }
    for (addr, err) in &snap.errors {
        let _ = writeln!(out, "unreachable: {addr}: {err}");
    }
    out
}

fn node_json(n: &NodeHealth) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"node\":{},\"addr\":\"{}\",\"role\":\"{}\",\"active\":{},\"epoch\":{},\
         \"last_committed\":\"{}\",\"last_committed_zxid\":{},\
         \"commit_latency_ms\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}},\"lag\":[",
        n.node,
        esc(&n.addr),
        esc(&n.role),
        n.active,
        n.epoch,
        esc(&n.last_committed),
        n.last_committed_zxid,
        n.commit_latency_ms.count,
        n.commit_latency_ms.p50,
        n.commit_latency_ms.p99,
        n.commit_latency_ms.max
    );
    for (i, r) in n.lag.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"peer\":{},\"acked_zxid\":", r.peer);
        match r.acked_zxid {
            Some(z) => {
                let _ = write!(out, "{z}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"lag_txns\":");
        match r.lag_txns {
            Some(n) => {
                let _ = write!(out, "{n}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"syncing\":{}}}", r.syncing);
    }
    out.push_str("]}");
    out
}

/// Renders the ensemble summary as one JSON object. Top-level
/// `last_committed_zxid` is the leader's watermark (0 with no leader) so
/// scripts can grab a commit to trace without digging into the node list.
pub fn render_status_json(snap: &EnsembleSnapshot) -> String {
    let mut out = String::new();
    match snap.leader() {
        Some(l) => {
            let _ = write!(
                out,
                "{{\"leader\":{},\"epoch\":{},\"last_committed_zxid\":{},\
                 \"last_committed\":\"{}\",\"topology\":\"{}\"",
                l.node,
                l.epoch,
                l.last_committed_zxid,
                esc(&l.last_committed),
                esc(&l.topology)
            );
        }
        None => out.push_str("{\"leader\":null,\"epoch\":null,\"last_committed_zxid\":0"),
    }
    out.push_str(",\"nodes\":[");
    for (i, n) in snap.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&node_json(n));
    }
    out.push_str("],\"errors\":[");
    for (i, (addr, err)) in snap.errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"addr\":\"{}\",\"error\":\"{}\"}}", esc(addr), esc(err));
    }
    out.push_str("]}");
    out
}

/// Keeps the events relevant to `zxid`: point events on it, spans whose
/// inclusive range covers it.
pub fn filter_zxid(events: &[TraceEvent], zxid: u64) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| {
            if e.is_span() && e.zxid_end >= e.zxid {
                e.zxid <= zxid && zxid <= e.zxid_end
            } else {
                e.zxid == zxid
            }
        })
        .copied()
        .collect()
}

/// Renders a stitched cross-node timeline for one zxid. `events` must
/// already be aligned (see [`zab_trace::align::stitch`]); `offsets` is
/// the per-node clock-offset estimate used, for the header.
pub fn render_timeline_text(
    zxid: u64,
    events: &[TraceEvent],
    offsets: &BTreeMap<u64, i64>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "timeline for zxid {} ({})", zxid_display(zxid), zxid);
    let mut offs: Vec<String> = offsets.iter().map(|(n, o)| format!("{n}:{o:+}us")).collect();
    if offs.is_empty() {
        offs.push("none".to_string());
    }
    let _ = writeln!(out, "clock offsets vs reference: {}", offs.join(" "));
    if events.is_empty() {
        let _ = writeln!(out, "no events (ring may have wrapped past this zxid)");
        return out;
    }
    let t0 = events.iter().map(|e| e.ts_us).min().unwrap_or(0);
    let _ = writeln!(
        out,
        "{:>10} {:<5} {:<14} {:<6} {:>8}",
        "t(+us)", "node", "stage", "peer", "dur_us"
    );
    for e in events {
        let peer = if e.peer == 0 { "-".to_string() } else { e.peer.to_string() };
        let _ = writeln!(
            out,
            "{:>10} {:<5} {:<14} {:<6} {:>8}",
            e.ts_us - t0,
            e.node,
            e.stage.as_str(),
            peer,
            e.dur_us
        );
    }
    out
}

/// Renders the stitched timeline as JSON: the offsets used plus the
/// aligned events in raw-trace shape.
pub fn render_timeline_json(
    zxid: u64,
    events: &[TraceEvent],
    offsets: &BTreeMap<u64, i64>,
) -> String {
    let mut out = String::new();
    let _ =
        write!(out, "{{\"zxid\":{zxid},\"zxid_display\":\"{}\",\"offsets\":{{", zxid_display(zxid));
    for (i, (n, o)) in offsets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{n}\":{o}");
    }
    let _ = write!(out, "}},\"events\":{}}}", zab_trace::raw_trace_json(events));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeliveryWitness, LagRow, LatencySummary};
    use zab_trace::Stage;

    fn leader_with_lag() -> EnsembleSnapshot {
        let leader = NodeHealth {
            addr: "127.0.0.1:7461".to_string(),
            node: 1,
            role: "leading".to_string(),
            active: true,
            epoch: 1,
            leader: Some(1),
            last_committed_zxid: (1 << 32) | 9,
            last_committed: "1:9".to_string(),
            peers_reachable: vec![2],
            topology: "star".to_string(),
            relay_groups: Vec::new(),
            lag: vec![
                LagRow {
                    peer: 2,
                    acked_zxid: Some((1 << 32) | 9),
                    lag_txns: Some(0),
                    syncing: false,
                },
                LagRow { peer: 3, acked_zxid: None, lag_txns: Some(4), syncing: true },
            ],
            delivery: DeliveryWitness::default(),
            commit_latency_ms: LatencySummary { count: 5, p50: 2, p99: 8, max: 9 },
        };
        EnsembleSnapshot {
            nodes: vec![leader],
            errors: vec![("127.0.0.1:7463".to_string(), "connect: refused".to_string())],
        }
    }

    #[test]
    fn status_json_exposes_leader_watermark_and_lag() {
        let snap = leader_with_lag();
        let json = render_status_json(&snap);
        let parsed = crate::json::Json::parse(&json).expect("valid json");
        assert_eq!(parsed.get("leader").and_then(crate::json::Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("last_committed_zxid").and_then(crate::json::Json::as_u64),
            Some((1 << 32) | 9)
        );
        let lag = parsed.get("nodes").and_then(|n| n.idx(0)).and_then(|n| n.get("lag"));
        assert_eq!(
            lag.and_then(|l| l.idx(1))
                .and_then(|r| r.get("lag_txns"))
                .and_then(crate::json::Json::as_u64),
            Some(4)
        );
        assert_eq!(parsed.get("errors").map(|e| e.items().len()), Some(1));
    }

    #[test]
    fn status_text_shows_lag_table_and_errors() {
        let text = render_status_text(&leader_with_lag());
        assert!(text.contains("leader=1"), "text:\n{text}");
        assert!(text.contains("syncing"), "text:\n{text}");
        assert!(text.contains("unreachable: 127.0.0.1:7463"), "text:\n{text}");
    }

    #[test]
    fn zxid_filter_matches_points_and_spans() {
        let z = (1u64 << 32) | 5;
        let events = [
            TraceEvent {
                ts_us: 1,
                dur_us: 0,
                node: 1,
                zxid: z,
                zxid_end: z,
                stage: Stage::Submit,
                peer: 0,
            },
            TraceEvent {
                ts_us: 2,
                dur_us: 9,
                node: 1,
                zxid: (1 << 32) | 3,
                zxid_end: (1 << 32) | 7,
                stage: Stage::LogAppend,
                peer: 0,
            },
            TraceEvent {
                ts_us: 3,
                dur_us: 0,
                node: 2,
                zxid: (1 << 32) | 6,
                zxid_end: (1 << 32) | 6,
                stage: Stage::Deliver,
                peer: 0,
            },
        ];
        let hits = filter_zxid(&events, z);
        assert_eq!(hits.len(), 2);
        assert!(filter_zxid(&events, (9 << 32) | 1).is_empty());
    }

    #[test]
    fn timeline_renders_relative_times_and_offsets() {
        let z = (1u64 << 32) | 5;
        let events = [
            TraceEvent {
                ts_us: 100,
                dur_us: 0,
                node: 1,
                zxid: z,
                zxid_end: z,
                stage: Stage::WireOut,
                peer: 2,
            },
            TraceEvent {
                ts_us: 150,
                dur_us: 0,
                node: 2,
                zxid: z,
                zxid_end: z,
                stage: Stage::Deliver,
                peer: 0,
            },
        ];
        let offsets: BTreeMap<u64, i64> = [(1, 0i64), (2, -1000i64)].into_iter().collect();
        let text = render_timeline_text(z, &events, &offsets);
        assert!(text.contains("2:-1000us"), "text:\n{text}");
        assert!(text.contains("wire-out"), "text:\n{text}");
        let json = render_timeline_json(z, &events, &offsets);
        let parsed = crate::json::Json::parse(&json).expect("valid json");
        assert_eq!(
            parsed.get("offsets").and_then(|o| o.get("2")).and_then(crate::json::Json::as_f64),
            Some(-1000.0)
        );
        assert_eq!(parsed.get("events").map(|e| e.items().len()), Some(2));
    }
}
