//! Typed views of the admin-endpoint documents.
//!
//! `NodeHealth` is the parsed `/health` body; `parse_raw_trace` turns a
//! `/trace?format=raw` body back into [`zab_trace::TraceEvent`]s so the
//! stitcher can run on scraped data. Parsing is strict about the fields
//! the auditor reasons over (roles, watermarks, hashes) and lenient about
//! everything else.

use crate::json::Json;
use zab_trace::{Stage, TraceEvent};

/// One follower's replication lag, from the leader's `/health` `lag` array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagRow {
    /// The follower's server id.
    pub peer: u64,
    /// Its cumulative ack watermark (packed zxid), if active.
    pub acked_zxid: Option<u64>,
    /// Committed txns it has not acked, when the leader could compute it.
    pub lag_txns: Option<u64>,
    /// True while the leader is still catch-up syncing this peer.
    pub syncing: bool,
}

/// The delivered-prefix hash witness from `/health` `delivery`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryWitness {
    /// First zxid folded into the current chain (0 = nothing delivered).
    pub anchor_zxid: u64,
    /// Last zxid folded in.
    pub last_zxid: u64,
    /// Chain hash over the delivered prefix since the anchor.
    pub hash: u64,
    /// Stride checkpoints `(zxid, chain hash)`, oldest first.
    pub checkpoints: Vec<(u64, u64)>,
}

/// Commit-latency summary from the node's histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Interpolated median, ms.
    pub p50: u64,
    /// Interpolated 99th percentile, ms.
    pub p99: u64,
    /// Maximum, ms.
    pub max: u64,
}

/// One node's `/health` document, parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHealth {
    /// Admin address this was scraped from.
    pub addr: String,
    /// The node's server id.
    pub node: u64,
    /// `"leading"`, `"following"`, `"looking"`, or `"faulted"`.
    pub role: String,
    /// Serving its role (established leader / synced follower).
    pub active: bool,
    /// Current epoch (leader's own, or from last committed elsewhere).
    pub epoch: u64,
    /// Who this node thinks leads, if anyone.
    pub leader: Option<u64>,
    /// Highest committed zxid, packed.
    pub last_committed_zxid: u64,
    /// Highest committed zxid, display form (`"epoch:counter"`).
    pub last_committed: String,
    /// Reachable peer ids (from the `peers` map).
    pub peers_reachable: Vec<u64>,
    /// Configured dissemination topology (`"star"` / `"relay"`).
    pub topology: String,
    /// Live relay plan `(relay, members)`, when relaying.
    pub relay_groups: Vec<(u64, Vec<u64>)>,
    /// Per-follower lag (leaders only; empty elsewhere).
    pub lag: Vec<LagRow>,
    /// Delivered-prefix hash witness.
    pub delivery: DeliveryWitness,
    /// Commit-latency summary.
    pub commit_latency_ms: LatencySummary,
}

fn need<'a>(j: &'a Json, key: &'static str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("/health missing {key:?}"))
}

fn need_u64(j: &Json, key: &'static str) -> Result<u64, String> {
    need(j, key)?.as_u64().ok_or_else(|| format!("/health {key:?} is not a u64"))
}

fn parse_hex_hash(j: &Json, what: &str) -> Result<u64, String> {
    let s = j.as_str().ok_or_else(|| format!("{what} is not a hex string"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("{what} {s:?}: {e}"))
}

impl NodeHealth {
    /// Parses a `/health` body scraped from `addr`.
    pub fn parse(addr: &str, body: &str) -> Result<NodeHealth, String> {
        let j = Json::parse(body).map_err(|e| format!("/health from {addr}: {e}"))?;
        let delivery = need(&j, "delivery")?;
        let mut checkpoints = Vec::new();
        for cp in need(delivery, "checkpoints")?.items() {
            let z = cp.idx(0).and_then(Json::as_u64).ok_or("checkpoint zxid")?;
            let h = parse_hex_hash(cp.idx(1).unwrap_or(&Json::Null), "checkpoint hash")?;
            checkpoints.push((z, h));
        }
        let mut lag = Vec::new();
        for l in need(&j, "lag")?.items() {
            lag.push(LagRow {
                peer: need_u64(l, "peer")?,
                acked_zxid: l.get("acked_zxid").and_then(Json::as_u64),
                lag_txns: l.get("lag_txns").and_then(Json::as_u64),
                syncing: l.get("syncing").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        let mut peers_reachable = Vec::new();
        if let Some(peers) = need(&j, "peers")?.members() {
            for (id, ph) in peers {
                if ph.get("reachable").and_then(Json::as_bool) == Some(true) {
                    if let Ok(id) = id.parse() {
                        peers_reachable.push(id);
                    }
                }
            }
        }
        let mut relay_groups = Vec::new();
        if let Some(groups) = j.get("relay_groups").and_then(Json::members) {
            for (relay, members) in groups {
                let relay: u64 = relay.parse().map_err(|_| "relay id")?;
                let members = members.items().iter().filter_map(Json::as_u64).collect();
                relay_groups.push((relay, members));
            }
        }
        let lat = need(&j, "commit_latency_ms")?;
        Ok(NodeHealth {
            addr: addr.to_string(),
            node: need_u64(&j, "node")?,
            role: need(&j, "role")?.as_str().ok_or("role")?.to_string(),
            active: need(&j, "active")?.as_bool().ok_or("active")?,
            epoch: need_u64(&j, "epoch")?,
            leader: j.get("leader").and_then(Json::as_u64),
            last_committed_zxid: need_u64(&j, "last_committed_zxid")?,
            last_committed: need(&j, "last_committed")?
                .as_str()
                .ok_or("last_committed")?
                .to_string(),
            peers_reachable,
            topology: j.get("topology").and_then(Json::as_str).unwrap_or("star").to_string(),
            relay_groups,
            lag,
            delivery: DeliveryWitness {
                anchor_zxid: need_u64(delivery, "anchor_zxid")?,
                last_zxid: need_u64(delivery, "last_zxid")?,
                hash: parse_hex_hash(need(delivery, "hash")?, "delivery hash")?,
                checkpoints,
            },
            commit_latency_ms: LatencySummary {
                count: need_u64(lat, "count")?,
                p50: need_u64(lat, "p50")?,
                p99: need_u64(lat, "p99")?,
                max: need_u64(lat, "max")?,
            },
        })
    }
}

/// Parses a `/trace?format=raw` body back into trace events.
pub fn parse_raw_trace(addr: &str, body: &str) -> Result<Vec<TraceEvent>, String> {
    let j = Json::parse(body).map_err(|e| format!("/trace from {addr}: {e}"))?;
    let mut events = Vec::with_capacity(j.items().len());
    for e in j.items() {
        let stage_name = e.get("stage").and_then(Json::as_str).ok_or("event stage")?;
        let stage =
            Stage::parse(stage_name).ok_or_else(|| format!("unknown stage {stage_name:?}"))?;
        events.push(TraceEvent {
            ts_us: need_u64(e, "ts_us")?,
            dur_us: e.get("dur_us").and_then(Json::as_u64).unwrap_or(0),
            node: need_u64(e, "node")?,
            zxid: need_u64(e, "zxid")?,
            zxid_end: e.get("zxid_end").and_then(Json::as_u64).unwrap_or(0),
            stage,
            peer: e.get("peer").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    // A representative /health body, shaped exactly like admin.rs emits.
    const HEALTH: &str = concat!(
        r#"{"node":1,"role":"leading","active":true,"epoch":1,"leader":1,"#,
        r#""last_committed":"1:3","last_committed_zxid":4294967299,"#,
        r#""peers":{"2":{"reachable":true,"failed_attempts":0},"3":{"reachable":false,"failed_attempts":4}},"#,
        r#""syncing":[],"topology":"star","relay_groups":{},"#,
        r#""lag":[{"peer":2,"acked_zxid":4294967299,"acked":"1:3","lag_txns":0,"syncing":false},"#,
        r#"{"peer":3,"acked_zxid":null,"acked":null,"lag_txns":null,"syncing":true}],"#,
        r#""delivery":{"anchor_zxid":4294967297,"last_zxid":4294967299,"hash":"00000000deadbeef","#,
        r#""checkpoints":[[4294967360,"0000000000000abc"]]},"#,
        r#""commit_latency_ms":{"count":7,"p50":2,"p99":9,"max":11}}"#
    );

    #[test]
    fn parses_full_health_document() {
        let h = NodeHealth::parse("127.0.0.1:7461", HEALTH).expect("parse");
        assert_eq!(h.node, 1);
        assert_eq!(h.role, "leading");
        assert!(h.active);
        assert_eq!(h.leader, Some(1));
        assert_eq!(h.last_committed_zxid, (1 << 32) | 3);
        assert_eq!(h.peers_reachable, vec![2]);
        assert_eq!(h.lag.len(), 2);
        assert_eq!(h.lag[0].lag_txns, Some(0));
        assert_eq!(h.lag[1].acked_zxid, None);
        assert!(h.lag[1].syncing);
        assert_eq!(h.delivery.hash, 0xdead_beef);
        assert_eq!(h.delivery.checkpoints, vec![((1 << 32) | 64, 0xabc)]);
        assert_eq!(h.commit_latency_ms.p99, 9);
    }

    #[test]
    fn rejects_health_missing_required_fields() {
        let err = NodeHealth::parse("a", r#"{"node":1}"#).unwrap_err();
        assert!(err.contains("delivery"), "err was {err:?}");
        assert!(NodeHealth::parse("a", "not json").is_err());
    }

    #[test]
    fn raw_trace_round_trips_through_exporter() {
        let events = vec![
            TraceEvent {
                ts_us: 10,
                dur_us: 2,
                node: 1,
                zxid: (1 << 32) | 1,
                zxid_end: 0,
                stage: Stage::WireOut,
                peer: 2,
            },
            TraceEvent {
                ts_us: 15,
                dur_us: 0,
                node: 2,
                zxid: (1 << 32) | 1,
                zxid_end: 0,
                stage: Stage::Deliver,
                peer: 0,
            },
        ];
        let body = zab_trace::raw_trace_json(&events);
        let back = parse_raw_trace("x", &body).expect("parse");
        assert_eq!(back, events);
    }

    #[test]
    fn raw_trace_rejects_unknown_stage() {
        let err = parse_raw_trace(
            "x",
            r#"[{"ts_us":1,"dur_us":0,"node":1,"zxid":2,"zxid_end":0,"stage":"warp","peer":0}]"#,
        )
        .unwrap_err();
        assert!(err.contains("warp"), "err was {err:?}");
    }
}
