//! Minimal dependency-free JSON parser for re-ingesting admin-endpoint
//! documents (`/health`, `/trace?format=raw`).
//!
//! Scope-matched to what the endpoints emit: objects, arrays, strings
//! with the standard escapes, numbers, booleans, null. Numbers are held
//! as `f64` — exact for every integer the endpoints serve below 2⁵³,
//! which covers packed zxids at any realistic epoch (hashes, the one
//! truly 64-bit quantity, travel as hex strings for exactly this reason).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

/// Parse failure: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }

    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element by index.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// The array items, or an empty slice for non-arrays.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// The object members, if this is an object.
    pub fn members(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integral number as u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for the `null` literal (distinct from "absent").
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.i }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':', "expected ':'")?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return Err(self.err("unterminated string")) };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else { return Err(self.err("truncated escape")) };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogates are not paired (the endpoints
                            // never emit them); replace rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multibyte UTF-8.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && self.b[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("bad number"))?;
        s.parse::<f64>().map(Json::Num).map_err(|_| JsonError { msg: "bad number", at: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_health_shaped_document() {
        let doc = r#"{"node":1,"role":"leading","active":true,"leader":null,
            "lag":[{"peer":2,"acked_zxid":4294967297,"lag_txns":0,"syncing":false}],
            "delivery":{"hash":"00ab","checkpoints":[[4294967360,"0cd"]]},
            "last_committed":"1:9"}"#;
        let j = Json::parse(doc).expect("parse");
        assert_eq!(j.get("node").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("role").and_then(Json::as_str), Some("leading"));
        assert_eq!(j.get("active").and_then(Json::as_bool), Some(true));
        assert!(j.get("leader").is_some_and(Json::is_null));
        let lag = j.get("lag").expect("lag");
        assert_eq!(
            lag.idx(0).and_then(|e| e.get("acked_zxid")).and_then(Json::as_u64),
            Some((1 << 32) | 1)
        );
        let cp = j.get("delivery").and_then(|d| d.get("checkpoints")).expect("cps");
        assert_eq!(cp.idx(0).and_then(|p| p.idx(1)).and_then(Json::as_str), Some("0cd"));
    }

    #[test]
    fn parses_escapes_numbers_and_nesting() {
        let j = Json::parse(r#"{"s":"a\"b\nAç","n":-2.5e2,"a":[1,[2,{}]]}"#).expect("parse");
        assert_eq!(j.get("s").and_then(Json::as_str), Some("a\"b\nAç"));
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(-250.0));
        assert_eq!(
            j.get("a").and_then(|a| a.idx(1)).and_then(|a| a.idx(0)).and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "{\"a\":}", "[1,]", "\"unterminated", "tru", "{}x", "", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_negatives_and_fractions() {
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
    }
}
