//! Ensemble scraping: pull `/health` and `/trace` from every node.
//!
//! A partial ensemble is still useful — a scrape returns whatever nodes
//! answered plus the per-node errors, and callers decide how much they
//! need (status renders what it got; the auditor flags unreachable nodes
//! but still checks the reachable ones).

use crate::http;
use crate::model::{parse_raw_trace, NodeHealth};
use std::time::Duration;
use zab_trace::TraceEvent;

/// Default per-request timeout.
pub const SCRAPE_TIMEOUT: Duration = Duration::from_secs(3);

/// One scrape round over the whole ensemble.
#[derive(Debug)]
pub struct EnsembleSnapshot {
    /// Nodes that answered `/health`, in the order scraped.
    pub nodes: Vec<NodeHealth>,
    /// Nodes that did not, as `(addr, error)`.
    pub errors: Vec<(String, String)>,
}

impl EnsembleSnapshot {
    /// The leader's health, if an established leader answered.
    pub fn leader(&self) -> Option<&NodeHealth> {
        self.nodes.iter().find(|n| n.role == "leading" && n.active)
    }

    /// The node with server id `id`, if it answered.
    pub fn node(&self, id: u64) -> Option<&NodeHealth> {
        self.nodes.iter().find(|n| n.node == id)
    }
}

/// Scrapes `/health` from one node.
pub fn health(addr: &str, timeout: Duration) -> Result<NodeHealth, String> {
    let resp = http::get(addr, "/health", timeout).map_err(|e| e.to_string())?;
    if resp.status != 200 {
        return Err(format!("{addr}: /health returned {}", resp.status));
    }
    NodeHealth::parse(addr, &resp.body)
}

/// Scrapes `/health` from every address. For leader-relative invariants
/// (follower committed ≤ leader committed) the leader is re-scraped
/// *after* all followers, so its watermark is at least as fresh as any
/// follower reading — a follower can then never legitimately appear
/// ahead of it.
pub fn ensemble(addrs: &[String], timeout: Duration) -> EnsembleSnapshot {
    let mut nodes = Vec::new();
    let mut errors = Vec::new();
    for addr in addrs {
        match health(addr, timeout) {
            Ok(h) => nodes.push(h),
            Err(e) => errors.push((addr.clone(), e)),
        }
    }
    // Second pass: refresh the leader last so cross-node watermark
    // comparisons are sound under monotone reads.
    let leader_addr =
        nodes.iter().find(|n| n.role == "leading" && n.active).map(|n| n.addr.clone());
    if let Some(addr) = leader_addr {
        if let Ok(fresh) = health(&addr, timeout) {
            if let Some(slot) = nodes.iter_mut().find(|n| n.addr == addr) {
                *slot = fresh;
            }
        }
    }
    EnsembleSnapshot { nodes, errors }
}

/// Scrapes raw trace events from every address that answers, tagging
/// nothing — events already carry their recording node id. Unreachable
/// nodes are reported in the error list.
pub fn traces(addrs: &[String], timeout: Duration) -> (Vec<TraceEvent>, Vec<(String, String)>) {
    let mut events = Vec::new();
    let mut errors = Vec::new();
    for addr in addrs {
        let result = http::get(addr, "/trace?format=raw", timeout)
            .map_err(|e| e.to_string())
            .and_then(|resp| {
                if resp.status != 200 {
                    return Err(format!("{addr}: /trace returned {}", resp.status));
                }
                parse_raw_trace(addr, &resp.body)
            });
        match result {
            Ok(mut ev) => events.append(&mut ev),
            Err(e) => errors.push((addr.clone(), e)),
        }
    }
    (events, errors)
}
