//! Live invariant watchdog over scraped ensemble state.
//!
//! Each audit round takes one [`EnsembleSnapshot`] and checks:
//!
//! - **epoch monotonicity** — a node's epoch never decreases between
//!   rounds (state carried in [`AuditState`]; first sighting just seeds).
//! - **single leader** — at most one active leader per epoch.
//! - **committed bound** — no follower's committed watermark exceeds the
//!   leader's. Sound because the scraper refreshes the leader *after*
//!   the followers, so its watermark is at least as fresh as any
//!   follower reading (both watermarks are monotone).
//! - **delivered-prefix agreement** — any two nodes whose delivery-hash
//!   chains share an anchor must agree on the chain hash at every common
//!   comparison point (stride checkpoints plus equal `last_zxid`
//!   frontiers). Chains with different anchors (a replica that booted
//!   late and re-anchored mid-epoch) are incomparable, not in violation.
//!
//! These are witnesses of the paper's Zab guarantees as seen from the
//! outside: a primary order violation that corrupts or reorders the
//! delivered prefix shows up as a hash divergence; a botched election
//! shows up as an epoch regression or a double leader.

use crate::model::NodeHealth;
use crate::scrape::EnsembleSnapshot;
use std::collections::BTreeMap;

/// One invariant violation found during an audit round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed: `"epoch-regression"`, `"double-leader"`,
    /// `"committed-ahead-of-leader"`, `"delivery-hash-divergence"`,
    /// or `"unreachable"`.
    pub kind: &'static str,
    /// Server id of the offending node (the first of the pair, for
    /// pairwise checks), or 0 when unknown (unreachable address).
    pub node: u64,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] node {}: {}", self.kind, self.node, self.detail)
    }
}

/// Cross-round watchdog state (per-node epoch high-water marks).
#[derive(Debug, Default)]
pub struct AuditState {
    max_epoch: BTreeMap<u64, u64>,
    /// Audit rounds completed.
    pub rounds: u64,
}

impl AuditState {
    /// Fresh state: the first round only seeds epoch watermarks.
    pub fn new() -> AuditState {
        AuditState::default()
    }

    /// Runs every invariant over one snapshot; returns the violations.
    /// `flag_unreachable` adds a violation per address that failed to
    /// scrape (watch mode wants this; one-shot `status` does not).
    pub fn check_round(
        &mut self,
        snap: &EnsembleSnapshot,
        flag_unreachable: bool,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        if flag_unreachable {
            for (addr, err) in &snap.errors {
                out.push(Violation {
                    kind: "unreachable",
                    node: 0,
                    detail: format!("{addr}: {err}"),
                });
            }
        }
        self.check_epoch_monotonicity(&snap.nodes, &mut out);
        check_single_leader(&snap.nodes, &mut out);
        check_committed_bound(&snap.nodes, &mut out);
        check_delivery_agreement(&snap.nodes, &mut out);
        self.rounds += 1;
        out
    }

    fn check_epoch_monotonicity(&mut self, nodes: &[NodeHealth], out: &mut Vec<Violation>) {
        for n in nodes {
            let prev = self.max_epoch.entry(n.node).or_insert(n.epoch);
            if n.epoch < *prev {
                out.push(Violation {
                    kind: "epoch-regression",
                    node: n.node,
                    detail: format!("epoch went backwards: {} -> {}", prev, n.epoch),
                });
            } else {
                *prev = n.epoch;
            }
        }
    }
}

fn check_single_leader(nodes: &[NodeHealth], out: &mut Vec<Violation>) {
    let mut leaders_by_epoch: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for n in nodes {
        if n.role == "leading" && n.active {
            leaders_by_epoch.entry(n.epoch).or_default().push(n.node);
        }
    }
    for (epoch, leaders) in leaders_by_epoch {
        if leaders.len() > 1 {
            out.push(Violation {
                kind: "double-leader",
                node: leaders[0],
                detail: format!("epoch {epoch} has {} active leaders: {leaders:?}", leaders.len()),
            });
        }
    }
}

fn check_committed_bound(nodes: &[NodeHealth], out: &mut Vec<Violation>) {
    let Some(leader) = nodes.iter().find(|n| n.role == "leading" && n.active) else {
        return;
    };
    for n in nodes {
        if n.node == leader.node {
            continue;
        }
        // Only comparable within the leader's epoch: a follower still
        // replaying an older epoch is behind, never "ahead".
        if n.last_committed_zxid > leader.last_committed_zxid {
            out.push(Violation {
                kind: "committed-ahead-of-leader",
                node: n.node,
                detail: format!(
                    "committed {} > leader {} ({})",
                    n.last_committed, leader.last_committed, leader.node
                ),
            });
        }
    }
}

/// Comparison points of one node's chain: every checkpoint plus the
/// current frontier `(last_zxid, hash)`.
fn chain_points(n: &NodeHealth) -> BTreeMap<u64, u64> {
    let mut pts: BTreeMap<u64, u64> = n.delivery.checkpoints.iter().copied().collect();
    if n.delivery.last_zxid != 0 {
        pts.insert(n.delivery.last_zxid, n.delivery.hash);
    }
    pts
}

fn check_delivery_agreement(nodes: &[NodeHealth], out: &mut Vec<Violation>) {
    for (i, a) in nodes.iter().enumerate() {
        for b in &nodes[i + 1..] {
            // Incomparable unless both chains start at the same zxid.
            if a.delivery.anchor_zxid == 0 || a.delivery.anchor_zxid != b.delivery.anchor_zxid {
                continue;
            }
            let pa = chain_points(a);
            let pb = chain_points(b);
            for (zxid, ha) in &pa {
                if let Some(hb) = pb.get(zxid) {
                    if ha != hb {
                        out.push(Violation {
                            kind: "delivery-hash-divergence",
                            node: a.node,
                            detail: format!(
                                "nodes {} and {} disagree at zxid {}:{} \
                                 ({ha:016x} vs {hb:016x})",
                                a.node,
                                b.node,
                                zxid >> 32,
                                zxid & 0xffff_ffff
                            ),
                        });
                        // One divergence per pair is enough signal; the
                        // earliest common point localizes it.
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeliveryWitness, LatencySummary};

    fn node(id: u64, role: &str, epoch: u64, committed: u64) -> NodeHealth {
        NodeHealth {
            addr: format!("127.0.0.1:{}", 7460 + id),
            node: id,
            role: role.to_string(),
            active: true,
            epoch,
            leader: Some(1),
            last_committed_zxid: committed,
            last_committed: format!("{}:{}", committed >> 32, committed & 0xffff_ffff),
            peers_reachable: Vec::new(),
            topology: "star".to_string(),
            relay_groups: Vec::new(),
            lag: Vec::new(),
            delivery: DeliveryWitness::default(),
            commit_latency_ms: LatencySummary::default(),
        }
    }

    fn snap(nodes: Vec<NodeHealth>) -> EnsembleSnapshot {
        EnsembleSnapshot { nodes, errors: Vec::new() }
    }

    const Z: fn(u64, u64) -> u64 = |e, c| (e << 32) | c;

    #[test]
    fn clean_round_has_no_violations() {
        let mut st = AuditState::new();
        let v = st.check_round(
            &snap(vec![
                node(1, "leading", 1, Z(1, 5)),
                node(2, "following", 1, Z(1, 5)),
                node(3, "following", 1, Z(1, 4)),
            ]),
            true,
        );
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn epoch_regression_is_flagged_across_rounds() {
        let mut st = AuditState::new();
        assert!(st.check_round(&snap(vec![node(2, "following", 3, Z(3, 1))]), false).is_empty());
        let v = st.check_round(&snap(vec![node(2, "following", 2, Z(2, 9))]), false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "epoch-regression");
        assert_eq!(v[0].node, 2);
    }

    #[test]
    fn double_leader_and_committed_bound_are_flagged() {
        let mut st = AuditState::new();
        let v = st.check_round(
            &snap(vec![
                node(1, "leading", 2, Z(2, 3)),
                node(2, "leading", 2, Z(2, 3)),
                node(3, "following", 2, Z(2, 7)),
            ]),
            false,
        );
        assert!(v.iter().any(|x| x.kind == "double-leader"), "violations: {v:?}");
        assert!(
            v.iter().any(|x| x.kind == "committed-ahead-of-leader" && x.node == 3),
            "violations: {v:?}"
        );
    }

    #[test]
    fn delivery_divergence_detected_at_common_checkpoint() {
        let mut a = node(1, "leading", 1, Z(1, 200));
        let mut b = node(2, "following", 1, Z(1, 200));
        a.delivery = DeliveryWitness {
            anchor_zxid: Z(1, 1),
            last_zxid: Z(1, 200),
            hash: 0x1111,
            checkpoints: vec![(Z(1, 64), 0xAA), (Z(1, 128), 0xBB)],
        };
        // Same anchor, same stride, corrupted hash at 128.
        b.delivery = DeliveryWitness {
            anchor_zxid: Z(1, 1),
            last_zxid: Z(1, 192),
            hash: 0x2222,
            checkpoints: vec![(Z(1, 64), 0xAA), (Z(1, 128), 0xFF)],
        };
        let v = AuditState::new().check_round(&snap(vec![a, b]), false);
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert_eq!(v[0].kind, "delivery-hash-divergence");
        assert!(v[0].detail.contains("1:128"), "detail: {}", v[0].detail);
    }

    #[test]
    fn different_anchors_are_incomparable_not_violations() {
        let mut a = node(1, "leading", 1, Z(1, 200));
        let mut b = node(3, "following", 1, Z(1, 200));
        a.delivery = DeliveryWitness {
            anchor_zxid: Z(1, 1),
            last_zxid: Z(1, 128),
            hash: 0x1,
            checkpoints: vec![(Z(1, 64), 0x2)],
        };
        // Node 3 booted late: chain re-anchored at 1:100 — hashes at the
        // same zxids legitimately differ.
        b.delivery = DeliveryWitness {
            anchor_zxid: Z(1, 100),
            last_zxid: Z(1, 128),
            hash: 0x9,
            checkpoints: vec![(Z(1, 128), 0x8)],
        };
        let v = AuditState::new().check_round(&snap(vec![a, b]), false);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn unreachable_nodes_flagged_only_in_watch_mode() {
        let s = EnsembleSnapshot {
            nodes: vec![node(1, "leading", 1, Z(1, 1))],
            errors: vec![("127.0.0.1:9".to_string(), "connect refused".to_string())],
        };
        assert!(AuditState::new().check_round(&s, false).is_empty());
        let v = AuditState::new().check_round(&s, true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "unreachable");
    }
}
