//! `zabctl` — ensemble inspector for the Zab reproduction.
//!
//! ```text
//! zabctl --nodes 127.0.0.1:7461,127.0.0.1:7462,127.0.0.1:7463 status [--json]
//! zabctl --nodes ... trace <zxid> [--json]       zxid: packed or epoch:counter
//! zabctl --nodes ... audit [--watch] [--interval-ms N] [--rounds N] [--json]
//! ```
//!
//! `--nodes` may also come from the `ZABCTL_NODES` environment variable.
//! Exit codes: 0 clean, 1 violations found or nothing scrapable, 2 usage.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;
use zab_ops::{audit::AuditState, scrape, status};

const USAGE: &str = "usage: zabctl --nodes <addr,addr,...> [--json] [--timeout-ms N] \
                     <status | trace <zxid> | audit [--watch] [--interval-ms N] [--rounds N]>";

struct Opts {
    nodes: Vec<String>,
    json: bool,
    timeout: Duration,
    watch: bool,
    interval: Duration,
    rounds: Option<u64>,
    cmd: Cmd,
}

enum Cmd {
    Status,
    Trace(u64),
    Audit,
}

fn parse_args(mut args: Vec<String>) -> Result<Opts, String> {
    let mut nodes: Option<String> = std::env::var("ZABCTL_NODES").ok();
    let mut json = false;
    let mut timeout_ms = 3000u64;
    let mut watch = false;
    let mut interval_ms = 1000u64;
    let mut rounds: Option<u64> = None;
    let mut positional: Vec<String> = Vec::new();

    let next_value = |args: &mut Vec<String>, flag: &str| -> Result<String, String> {
        if args.is_empty() {
            return Err(format!("{flag} needs a value"));
        }
        Ok(args.remove(0))
    };
    while !args.is_empty() {
        let a = args.remove(0);
        match a.as_str() {
            "--nodes" => nodes = Some(next_value(&mut args, "--nodes")?),
            "--json" => json = true,
            "--timeout-ms" => {
                timeout_ms = next_value(&mut args, "--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms needs an integer".to_string())?;
            }
            "--watch" => watch = true,
            "--once" => watch = false,
            "--interval-ms" => {
                interval_ms = next_value(&mut args, "--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms needs an integer".to_string())?;
            }
            "--rounds" => {
                rounds = Some(
                    next_value(&mut args, "--rounds")?
                        .parse()
                        .map_err(|_| "--rounds needs an integer".to_string())?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            _ => positional.push(a),
        }
    }
    let nodes: Vec<String> = nodes
        .ok_or("--nodes (or ZABCTL_NODES) is required")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if nodes.is_empty() {
        return Err("--nodes list is empty".to_string());
    }
    let cmd = match positional.first().map(String::as_str) {
        Some("status") => Cmd::Status,
        Some("trace") => {
            let z = positional.get(1).ok_or("trace needs a zxid")?;
            Cmd::Trace(zab_ops::parse_zxid(z)?)
        }
        Some("audit") => Cmd::Audit,
        Some(other) => return Err(format!("unknown command {other:?}")),
        None => return Err("a command is required".to_string()),
    };
    Ok(Opts {
        nodes,
        json,
        timeout: Duration::from_millis(timeout_ms.max(1)),
        watch,
        interval: Duration::from_millis(interval_ms.max(10)),
        rounds,
        cmd,
    })
}

fn run_status(opts: &Opts) -> ExitCode {
    let snap = scrape::ensemble(&opts.nodes, opts.timeout);
    if opts.json {
        println!("{}", status::render_status_json(&snap));
    } else {
        print!("{}", status::render_status_text(&snap));
    }
    if snap.nodes.is_empty() {
        eprintln!("zabctl: no node answered /health");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_trace(opts: &Opts, zxid: u64) -> ExitCode {
    let snap = scrape::ensemble(&opts.nodes, opts.timeout);
    let reference = snap
        .leader()
        .map(|l| l.node)
        .unwrap_or_else(|| snap.nodes.first().map(|n| n.node).unwrap_or(0));
    let (events, errors) = scrape::traces(&opts.nodes, opts.timeout);
    for (addr, err) in &errors {
        eprintln!("zabctl: trace scrape failed for {addr}: {err}");
    }
    if events.is_empty() && !errors.is_empty() {
        eprintln!("zabctl: no node answered /trace");
        return ExitCode::FAILURE;
    }
    // Align on the full event set (more wire edges -> better offsets),
    // then narrow to the requested zxid.
    let (aligned, offsets) = zab_trace::align::stitch(&events, reference);
    let timeline = status::filter_zxid(&aligned, zxid);
    let shown: BTreeMap<u64, i64> = offsets;
    if opts.json {
        println!("{}", status::render_timeline_json(zxid, &timeline, &shown));
    } else {
        print!("{}", status::render_timeline_text(zxid, &timeline, &shown));
    }
    ExitCode::SUCCESS
}

fn run_audit(opts: &Opts) -> ExitCode {
    let mut state = AuditState::new();
    let mut total = 0u64;
    let max_rounds = opts.rounds.unwrap_or(if opts.watch { u64::MAX } else { 1 });
    for round in 0..max_rounds {
        if round > 0 {
            std::thread::sleep(opts.interval);
        }
        let snap = scrape::ensemble(&opts.nodes, opts.timeout);
        let violations = state.check_round(&snap, opts.watch);
        total += violations.len() as u64;
        if opts.json {
            let mut out = String::from("{\"round\":");
            out.push_str(&round.to_string());
            out.push_str(",\"nodes\":");
            out.push_str(&snap.nodes.len().to_string());
            out.push_str(",\"violations\":[");
            for (i, v) in violations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"kind\":\"{}\",\"node\":{},\"detail\":\"{}\"}}",
                    v.kind,
                    v.node,
                    v.detail.replace('\\', "\\\\").replace('"', "\\\"")
                ));
            }
            out.push_str("]}");
            println!("{out}");
        } else {
            if violations.is_empty() {
                println!(
                    "audit round {round}: ok ({} nodes, {} unreachable)",
                    snap.nodes.len(),
                    snap.errors.len()
                );
            }
            for v in &violations {
                println!("audit round {round}: VIOLATION {v}");
            }
        }
        if snap.nodes.is_empty() && !opts.watch {
            eprintln!("zabctl: no node answered /health");
            return ExitCode::FAILURE;
        }
    }
    if total > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("zabctl: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match opts.cmd {
        Cmd::Status => run_status(&opts),
        Cmd::Trace(z) => run_trace(&opts, z),
        Cmd::Audit => run_audit(&opts),
    }
}
