//! End-to-end `zabctl` plumbing against live real-TCP ensembles: the
//! scrape → stitch → render path must show a cross-node causal timeline
//! for a committed zxid, the leader's lag table must expose a catch-up
//! straggler and then clear, and the invariant watchdog must stay silent
//! on a healthy run.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use zab_core::ServerId;
use zab_node::{apps::BytesApp, NodeConfig, Replica, Role};
use zab_ops::{audit::AuditState, json::Json, scrape, status};
use zab_trace::Stage;

fn address_book(n: u64) -> BTreeMap<ServerId, SocketAddr> {
    (1..=n)
        .map(|i| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            (ServerId(i), addr)
        })
        .collect()
}

fn wait_for_leader(
    replicas: &BTreeMap<ServerId, Replica<BytesApp>>,
    timeout: Duration,
) -> ServerId {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        for (&id, r) in replicas {
            if matches!(r.role(), Role::Leading { established: true, .. }) {
                return id;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("no leader within {timeout:?}");
}

fn wait_for_all_active(replicas: &BTreeMap<ServerId, Replica<BytesApp>>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        let all = replicas.values().all(|r| {
            matches!(
                r.role(),
                Role::Leading { established: true, .. } | Role::Following { active: true, .. }
            )
        });
        if all {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("ensemble never became fully active");
}

fn admin_addrs(replicas: &BTreeMap<ServerId, Replica<BytesApp>>) -> Vec<String> {
    replicas.values().map(|r| r.admin_addr().expect("admin bound").to_string()).collect()
}

/// Polls the leader's scraped committed watermark until it reaches `want`.
fn wait_for_committed(addrs: &[String], want: u64, timeout: Duration) -> u64 {
    let deadline = Instant::now() + timeout;
    loop {
        let snap = scrape::ensemble(addrs, scrape::SCRAPE_TIMEOUT);
        if let Some(l) = snap.leader() {
            if (l.last_committed_zxid & 0xffff_ffff) >= want {
                return l.last_committed_zxid;
            }
        }
        assert!(Instant::now() < deadline, "committed never reached counter {want}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn stitched_timeline_and_clean_audit_on_a_live_ensemble() {
    const N: u32 = 20;
    let book = address_book(3);
    let replicas: BTreeMap<ServerId, Replica<BytesApp>> = book
        .keys()
        .map(|&id| {
            let cfg =
                NodeConfig::new(id, book.clone()).with_admin("127.0.0.1:0".parse().expect("addr"));
            (id, Replica::start(cfg, BytesApp::new()).expect("start"))
        })
        .collect();
    let leader = wait_for_leader(&replicas, Duration::from_secs(10));
    wait_for_all_active(&replicas, Duration::from_secs(10));
    for i in 0..N {
        replicas[&leader].submit(i.to_le_bytes().to_vec());
    }
    let addrs = admin_addrs(&replicas);
    wait_for_committed(&addrs, N as u64, Duration::from_secs(10));
    // Give followers a beat to apply and the health publishers to tick.
    std::thread::sleep(Duration::from_millis(300));

    // ---- status: leader identified, every node answers, lag table clean.
    let snap = scrape::ensemble(&addrs, scrape::SCRAPE_TIMEOUT);
    assert!(snap.errors.is_empty(), "scrape errors: {:?}", snap.errors);
    assert_eq!(snap.nodes.len(), 3);
    let l = snap.leader().expect("leader in snapshot");
    assert_eq!(l.node, leader.0);
    let status_json = status::render_status_json(&snap);
    let parsed = Json::parse(&status_json).expect("status json parses");
    assert_eq!(parsed.get("leader").and_then(Json::as_u64), Some(leader.0));
    assert!(parsed.get("last_committed_zxid").and_then(Json::as_u64).unwrap_or(0) > 0);

    // ---- trace: a committed zxid's stitched timeline spans the cluster.
    let zxid = l.last_committed_zxid;
    let (events, errors) = scrape::traces(&addrs, scrape::SCRAPE_TIMEOUT);
    assert!(errors.is_empty(), "trace errors: {errors:?}");
    let (aligned, offsets) = zab_trace::align::stitch(&events, leader.0);
    // Every node participated in the alignment graph.
    for id in book.keys() {
        assert!(offsets.contains_key(&id.0), "node {id:?} missing from offsets: {offsets:?}");
    }
    let timeline = status::filter_zxid(&aligned, zxid);
    let has = |node: u64, stage: Stage| timeline.iter().any(|e| e.node == node && e.stage == stage);
    assert!(has(leader.0, Stage::Submit), "leader submit missing: {timeline:?}");
    assert!(has(leader.0, Stage::WireOut), "leader wire-out missing");
    let followers: Vec<u64> = book.keys().map(|i| i.0).filter(|&i| i != leader.0).collect();
    for &f in &followers {
        assert!(has(f, Stage::WireIn), "follower {f} wire-in missing");
        assert!(has(f, Stage::Deliver), "follower {f} deliver missing");
    }
    // On the stitched clock the leader's submit precedes every follower
    // delivery (alignment error is bounded by one-way loopback delay,
    // orders of magnitude under the submit→deliver pipeline latency).
    let submit_ts = timeline
        .iter()
        .filter(|e| e.node == leader.0 && e.stage == Stage::Submit)
        .map(|e| e.ts_us)
        .min()
        .expect("submit ts");
    for &f in &followers {
        let deliver_ts = timeline
            .iter()
            .filter(|e| e.node == f && e.stage == Stage::Deliver)
            .map(|e| e.ts_us)
            .max()
            .expect("deliver ts");
        assert!(
            submit_ts <= deliver_ts,
            "follower {f} delivered at {deliver_ts} before stitched submit {submit_ts}"
        );
    }
    let timeline_json = status::render_timeline_json(zxid, &timeline, &offsets);
    let parsed = Json::parse(&timeline_json).expect("timeline json parses");
    assert!(parsed.get("events").map(|e| e.items().len()).unwrap_or(0) >= 4);

    // ---- audit: a healthy run produces zero violations, twice.
    let mut auditor = AuditState::new();
    for round in 0..2 {
        let snap = scrape::ensemble(&addrs, scrape::SCRAPE_TIMEOUT);
        let violations = auditor.check_round(&snap, true);
        assert!(violations.is_empty(), "round {round} violations: {violations:?}");
    }
}

#[test]
fn lag_table_shows_a_catching_up_follower_then_clears() {
    // Nodes 1 and 2 form a quorum and commit a multi-MB backlog; node 3
    // starts late and catch-up syncs through the leader's paced shipper
    // at 2 MiB/s, leaving a multi-second window where the leader's
    // /health lag table must show it syncing with positive lag.
    const BACKLOG: u32 = 600;
    const PAYLOAD: usize = 8 * 1024;
    let book = address_book(3);
    let make_cfg = |id: ServerId, book: &BTreeMap<ServerId, SocketAddr>| {
        let mut cfg =
            NodeConfig::new(id, book.clone()).with_admin("127.0.0.1:0".parse().expect("addr"));
        cfg.cluster.sync_rate_bytes_per_sec = 2 << 20; // ~2.4 s to ship the backlog
        cfg
    };
    let mut replicas: BTreeMap<ServerId, Replica<BytesApp>> = [ServerId(1), ServerId(2)]
        .into_iter()
        .map(|id| (id, Replica::start(make_cfg(id, &book), BytesApp::new()).expect("start")))
        .collect();
    let leader = wait_for_leader(&replicas, Duration::from_secs(10));
    for _ in 0..BACKLOG {
        replicas[&leader].submit(vec![7u8; PAYLOAD]);
    }
    let addrs = admin_addrs(&replicas);
    wait_for_committed(&addrs, BACKLOG as u64, Duration::from_secs(30));

    // Late joiner: must sync the whole backlog through the paced stream.
    replicas.insert(
        ServerId(3),
        Replica::start(make_cfg(ServerId(3), &book), BytesApp::new()).expect("start"),
    );
    let leader_addr = replicas[&leader].admin_addr().expect("admin").to_string();

    // (b) during catch-up: peer 3 appears in the lag table as syncing
    // with positive lag (queued sync txns it has not applied).
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut saw_stall = false;
    while Instant::now() < deadline && !saw_stall {
        if let Ok(h) = scrape::health(&leader_addr, scrape::SCRAPE_TIMEOUT) {
            if let Some(row) = h.lag.iter().find(|r| r.peer == 3) {
                if row.syncing && row.lag_txns.unwrap_or(0) > 0 {
                    saw_stall = true;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(saw_stall, "never observed peer 3 syncing with positive lag");

    // ...and after catch-up the same row drains to zero, active.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(h) = scrape::health(&leader_addr, scrape::SCRAPE_TIMEOUT) {
            if let Some(row) = h.lag.iter().find(|r| r.peer == 3) {
                if !row.syncing && row.lag_txns == Some(0) {
                    break;
                }
            }
        }
        assert!(Instant::now() < deadline, "peer 3 never caught up to zero lag");
        std::thread::sleep(Duration::from_millis(50));
    }

    // A full-ensemble audit after convergence is clean: same-anchor
    // delivery chains agree at their common checkpoints.
    let addrs = admin_addrs(&replicas);
    std::thread::sleep(Duration::from_millis(300));
    let snap = scrape::ensemble(&addrs, scrape::SCRAPE_TIMEOUT);
    assert_eq!(snap.nodes.len(), 3, "errors: {:?}", snap.errors);
    let violations = AuditState::new().check_round(&snap, true);
    assert!(violations.is_empty(), "violations: {violations:?}");
}
