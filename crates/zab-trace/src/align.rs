//! Cross-node clock alignment for flight-recorder streams.
//!
//! Every node's recorder timestamps events with its own monotonic clock,
//! whose origin is arbitrary (process start). Merging raw streams from
//! several nodes therefore produces garbage orderings — a follower's
//! `wire-in` can appear *before* the leader's `wire-out` that caused it.
//!
//! The fix is the classic causal-edge bound: a frame is enqueued before it
//! is decoded, so for a message sender *s* → receiver *r* with local
//! timestamps `t_out` (at *s*) and `t_in` (at *r*), the clock offset
//! `d = o_r − o_s` (how far *r*'s clock runs ahead of *s*'s) satisfies
//! `d < t_in − t_out`. Messages flowing the other way bound `d` from
//! below: `d > t_out' − t_in'`. Zab traffic is naturally bidirectional —
//! PROPOSE/COMMIT flow leader→follower while ACKs flow back — so both
//! bounds exist for every live pair, and the midpoint of the interval is
//! the offset estimate (its error is bounded by the one-way-delay
//! asymmetry, microseconds on a LAN). Nodes with no direct edge to the
//! reference (e.g. relay-tree leaves) align transitively through whatever
//! path of edges exists.

use crate::{Stage, TraceEvent};
use std::collections::{BTreeMap, VecDeque};

/// Offset bounds for one ordered node pair `(a, b)`: `d = o_b − o_a`,
/// microseconds.
#[derive(Debug, Clone, Copy, Default)]
struct PairBounds {
    /// `min(t_in@b − t_out@a)` over a→b messages.
    upper: Option<i64>,
    /// `max(t_out@b − t_in@a)` over b→a messages.
    lower: Option<i64>,
}

impl PairBounds {
    /// Midpoint when both bounds exist, else the single bound; `None` when
    /// no edge was observed.
    fn estimate(&self) -> Option<i64> {
        match (self.lower, self.upper) {
            (Some(lo), Some(hi)) => Some(lo.midpoint(hi)),
            (Some(lo), None) => Some(lo),
            (None, Some(hi)) => Some(hi),
            (None, None) => None,
        }
    }
}

/// Estimates each node's clock offset relative to `reference`, in
/// microseconds, from the wire-out/wire-in causal edges in `events`.
///
/// An offset `o` for node `n` means `n`'s clock reads `o` µs ahead of the
/// reference clock at the same instant; subtract it to map `n`'s
/// timestamps onto the reference timeline (see [`apply_offsets`]). The
/// reference itself maps to 0. Nodes with no edge path to the reference
/// are absent from the result.
pub fn estimate_offsets(events: &[TraceEvent], reference: u64) -> BTreeMap<u64, i64> {
    // Wire events grouped by (sender, receiver, zxid), each side in ts
    // order. The k-th out pairs with the k-th in: the transport channel is
    // FIFO, so ordinal matching survives a zxid appearing in several
    // messages on one pair (PROPOSE then COMMIT).
    let mut outs: BTreeMap<(u64, u64, u64), Vec<u64>> = BTreeMap::new();
    let mut ins: BTreeMap<(u64, u64, u64), Vec<u64>> = BTreeMap::new();
    for e in events {
        match e.stage {
            Stage::WireOut if e.peer != 0 => {
                outs.entry((e.node, e.peer, e.zxid)).or_default().push(e.ts_us)
            }
            Stage::WireIn if e.peer != 0 => {
                ins.entry((e.peer, e.node, e.zxid)).or_default().push(e.ts_us)
            }
            _ => {}
        }
    }
    let mut bounds: BTreeMap<(u64, u64), PairBounds> = BTreeMap::new();
    for (key @ &(sender, receiver, _), out_ts) in &outs {
        let Some(in_ts) = ins.get(key) else { continue };
        for (&t_out, &t_in) in out_ts.iter().zip(in_ts) {
            let diff = t_in as i64 - t_out as i64;
            // Forward edge for (sender → receiver): upper bound on
            // o_receiver − o_sender…
            let fwd = bounds.entry((sender, receiver)).or_default();
            fwd.upper = Some(fwd.upper.map_or(diff, |u| u.min(diff)));
            // …which is equally a lower bound of −diff on the reverse
            // ordered pair.
            let rev = bounds.entry((receiver, sender)).or_default();
            rev.lower = Some(rev.lower.map_or(-diff, |l| l.max(-diff)));
        }
    }

    // BFS from the reference, composing pairwise estimates along the
    // first-discovered path.
    let mut offsets: BTreeMap<u64, i64> = BTreeMap::new();
    offsets.insert(reference, 0);
    let mut queue = VecDeque::from([reference]);
    while let Some(a) = queue.pop_front() {
        let base = offsets[&a];
        for (&(from, to), b) in &bounds {
            if from != a || offsets.contains_key(&to) {
                continue;
            }
            if let Some(d) = b.estimate() {
                offsets.insert(to, base + d);
                queue.push_back(to);
            }
        }
    }
    offsets
}

/// Maps every event onto the reference timeline by subtracting its node's
/// offset (saturating at 0). Events from nodes absent in `offsets` pass
/// through unchanged — callers that care can check membership first.
pub fn apply_offsets(events: &[TraceEvent], offsets: &BTreeMap<u64, i64>) -> Vec<TraceEvent> {
    events
        .iter()
        .map(|e| {
            let off = offsets.get(&e.node).copied().unwrap_or(0);
            let ts = (e.ts_us as i64 - off).max(0) as u64;
            TraceEvent { ts_us: ts, ..*e }
        })
        .collect()
}

/// One-call stitcher: estimates offsets against `reference`, rebases every
/// event, and returns the merged stream sorted by aligned time plus the
/// offsets used. The result is safe to feed to [`crate::timelines`] /
/// [`crate::stage_deltas`] / [`crate::chrome_trace_json`] for a true
/// cross-node causal view.
pub fn stitch(events: &[TraceEvent], reference: u64) -> (Vec<TraceEvent>, BTreeMap<u64, i64>) {
    let offsets = estimate_offsets(events, reference);
    let mut aligned = apply_offsets(events, &offsets);
    aligned.sort_by_key(|e| (e.ts_us, e.node, e.zxid, e.stage));
    (aligned, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u64, ts_us: u64, stage: Stage, zxid: u64, peer: u64) -> TraceEvent {
        TraceEvent { ts_us, dur_us: 0, node, zxid, zxid_end: zxid, stage, peer }
    }

    /// Leader 1 and follower 2; follower clock runs 1000 µs ahead. A
    /// PROPOSE takes 50 µs out, the ACK 50 µs back: symmetric delay, so
    /// the midpoint recovers the offset exactly.
    #[test]
    fn symmetric_pair_recovers_exact_offset() {
        let events = vec![
            ev(1, 100, Stage::WireOut, 7, 2), // propose leaves leader (true 100)
            ev(2, 1150, Stage::WireIn, 7, 1), // arrives (true 150, clock +1000)
            ev(2, 1200, Stage::WireOut, 7, 1), // ack leaves follower (true 200)
            ev(1, 250, Stage::WireIn, 7, 2),  // arrives back (true 250)
        ];
        let off = estimate_offsets(&events, 1);
        assert_eq!(off.get(&1), Some(&0));
        assert_eq!(off.get(&2), Some(&1000));

        let (aligned, _) = stitch(&events, 1);
        let ts: Vec<(u64, u64)> = aligned.iter().map(|e| (e.node, e.ts_us)).collect();
        // Causal order restored on the shared timeline.
        assert_eq!(ts, vec![(1, 100), (2, 150), (2, 200), (1, 250)]);
    }

    /// Only forward edges (no acks seen): the upper bound alone is used,
    /// which still restores causal order even if it absorbs the one-way
    /// delay.
    #[test]
    fn one_sided_edges_fall_back_to_single_bound() {
        let events = vec![ev(1, 100, Stage::WireOut, 3, 2), ev(2, 5150, Stage::WireIn, 3, 1)];
        let off = estimate_offsets(&events, 1);
        assert_eq!(off.get(&2), Some(&5050));
        let aligned = apply_offsets(&events, &off);
        assert!(aligned[0].ts_us <= aligned[1].ts_us);
    }

    /// Relay tree: node 3 only talks to node 2, which talks to leader 1.
    /// The offset composes transitively through the BFS.
    #[test]
    fn transitive_alignment_through_relay() {
        let events = vec![
            // 1 ↔ 2, follower 2 clock +1000.
            ev(1, 100, Stage::WireOut, 9, 2),
            ev(2, 1150, Stage::WireIn, 9, 1),
            ev(2, 1200, Stage::WireOut, 9, 1),
            ev(1, 250, Stage::WireIn, 9, 2),
            // 2 ↔ 3 (relay hop), node 3 clock +5000 (i.e. +4000 vs node 2).
            ev(2, 1300, Stage::WireOut, 9, 3),
            ev(3, 5350, Stage::WireIn, 9, 2),
            ev(3, 5400, Stage::WireOut, 9, 2),
            ev(2, 1450, Stage::WireIn, 9, 3),
        ];
        let off = estimate_offsets(&events, 1);
        assert_eq!(off.get(&2), Some(&1000));
        assert_eq!(off.get(&3), Some(&5000));
    }

    /// A node with no wire edges at all stays unaligned rather than
    /// getting a fabricated offset.
    #[test]
    fn disconnected_node_is_absent() {
        let events = vec![
            ev(1, 100, Stage::WireOut, 3, 2),
            ev(2, 180, Stage::WireIn, 3, 1),
            ev(9, 777, Stage::Deliver, 3, 0),
        ];
        let off = estimate_offsets(&events, 1);
        assert!(off.contains_key(&2));
        assert!(!off.contains_key(&9));
        // Pass-through keeps the unaligned event intact.
        let aligned = apply_offsets(&events, &off);
        assert_eq!(aligned[2].ts_us, 777);
    }

    /// Repeated messages for one zxid on one pair (PROPOSE then COMMIT)
    /// pair ordinally, not cross-wise — bounds stay consistent.
    #[test]
    fn ordinal_pairing_survives_repeated_zxids() {
        let events = vec![
            ev(1, 100, Stage::WireOut, 4, 2), // propose out
            ev(1, 300, Stage::WireOut, 4, 2), // commit out
            ev(2, 650, Stage::WireIn, 4, 1),  // propose in (+500 clock, 50 delay)
            ev(2, 860, Stage::WireIn, 4, 1),  // commit in (60 delay)
            ev(2, 700, Stage::WireOut, 4, 1), // ack out (true 200)
            ev(1, 250, Stage::WireIn, 4, 2),  // ack in
        ];
        let off = estimate_offsets(&events, 1);
        let d = *off.get(&2).unwrap();
        assert!((450..=560).contains(&d), "estimate {d} out of bound range");
    }
}
