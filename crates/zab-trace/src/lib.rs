//! Per-transaction flight recorder (DESIGN.md §9).
//!
//! Zab's correctness argument is *causal*: every committed transaction has
//! a precise lifecycle — admit → submit → propose-enqueue → wire-out →
//! wire-in → ack-rx → quorum → commit-out → watermark-advance → deliver —
//! whose
//! interleaving across replicas is exactly what the paper's primary-order
//! guarantee constrains. Aggregate metrics (`zab-metrics`) say *how often*
//! and *how slow*; this crate records *where zxid ⟨e, c⟩ spent its time,
//! and on which replica*.
//!
//! ## Design
//!
//! - [`TraceEvent`] is a fixed-size `Copy` record: `{ts_us, dur_us, node,
//!   zxid, zxid_end, stage, peer}`. The zxid **is** the trace id — it is
//!   globally unique, totally ordered, and already on every PROPOSE / ACK /
//!   COMMIT frame, so cross-node correlation needs **no new wire bytes**:
//!   the receive side simply re-keys on the decoded zxid.
//! - [`Recorder`] owns per-thread ring buffers with a configurable
//!   capacity and overwrite-oldest semantics: memory is bounded at
//!   `threads × capacity × size_of::<TraceEvent>()` no matter how long the
//!   node runs. Each thread writes only to its own single-producer ring;
//!   readers snapshot slots through atomics, so there is no lock on the
//!   record path at all. The fast path lives in one thread-local cache
//!   line (`HotRing`): recorder id, a mirrored head, the raw slot
//!   pointer, and an inlined TSC→µs timestamp scale. A hit is one
//!   (possibly cold) load of that line, a `rdtsc`, and buffered slot
//!   stores — ~6-7 ns marginal cost even with caches thrashed, because
//!   there is no dependent pointer chase left to stall on. Misses
//!   (first event on a thread, or a thread alternating recorders) fall
//!   back to a registry walk that re-primes the line. A runtime gate
//!   ([`Recorder::set_enabled`]) pauses recording without
//!   reconfiguration; the check shares the cache line the fast path
//!   already loads, so it is free when tracing is on.
//! - [`Tracer`] is the cheap, cloneable handle threaded through the
//!   layers. A disabled tracer (the default everywhere) is a no-op that
//!   costs one branch.
//! - The exporter merges rings into per-zxid causal timelines
//!   ([`timelines`]) and renders Chrome trace-event JSON
//!   ([`chrome_trace_json`]) loadable in `chrome://tracing` or Perfetto:
//!   one process per node, one track per zxid, storage spans on track 0.
//!
//! Deterministic simulations drive the recorder from a
//! [`zab_metrics::ManualClock`]; real nodes use [`zab_metrics::WallClock`].
//! No external dependencies, consistent with the vendored-offline policy.

#![deny(missing_docs)]

pub mod align;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use zab_metrics::Clock;

/// Where in the transaction lifecycle an event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// A client arrived at the admission gate (before any queueing). The
    /// delta to [`Stage::Submit`] is exactly the admission cost: gate
    /// wait plus command-queue time, the quantity the offered-load bench
    /// attributes when it degrades under overload.
    Admit,
    /// A client handed the payload to the replica (leader submit gate).
    Submit,
    /// The leader assigned a zxid and enqueued the proposal.
    ProposeEnqueue,
    /// A frame carrying this zxid was enqueued to a peer connection.
    WireOut,
    /// A frame carrying this zxid was decoded off a peer connection.
    WireIn,
    /// The leader received (or self-generated) an ack covering this zxid.
    AckRx,
    /// A quorum of acks formed; the transaction is committed.
    Quorum,
    /// The commit watermark covering this zxid was broadcast.
    CommitOut,
    /// A follower advanced its commit watermark to this zxid.
    WatermarkAdvance,
    /// The transaction was handed to the application.
    Deliver,
    /// Storage appended a batch covering `zxid..=zxid_end` (span).
    LogAppend,
    /// Storage flushed (fsync) the batch covering `zxid..=zxid_end` (span).
    LogFsync,
}

impl Stage {
    /// Every stage, in lifecycle order.
    pub const ALL: [Stage; 12] = [
        Stage::Admit,
        Stage::Submit,
        Stage::ProposeEnqueue,
        Stage::WireOut,
        Stage::WireIn,
        Stage::AckRx,
        Stage::Quorum,
        Stage::CommitOut,
        Stage::WatermarkAdvance,
        Stage::Deliver,
        Stage::LogAppend,
        Stage::LogFsync,
    ];

    /// Inverse of [`Stage::as_str`]: parses a stable stage name back, for
    /// tools that re-ingest exported traces.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.as_str() == s)
    }

    /// Stable human-readable name (used in exports and endpoints).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::Submit => "submit",
            Stage::ProposeEnqueue => "propose-enqueue",
            Stage::WireOut => "wire-out",
            Stage::WireIn => "wire-in",
            Stage::AckRx => "ack-rx",
            Stage::Quorum => "quorum",
            Stage::CommitOut => "commit-out",
            Stage::WatermarkAdvance => "watermark-advance",
            Stage::Deliver => "deliver",
            Stage::LogAppend => "log-append",
            Stage::LogFsync => "log-fsync",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One fixed-size flight-recorder record.
///
/// `zxid` is the packed `(epoch << 32) | counter` transaction id. Point
/// events have `zxid_end == zxid` and `dur_us == 0`; storage spans cover
/// the inclusive zxid range `zxid..=zxid_end` and carry a duration.
/// `peer == 0` means "no peer" (server ids start at 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic microseconds (recorder clock origin).
    pub ts_us: u64,
    /// Span duration in microseconds; 0 for instant events.
    pub dur_us: u64,
    /// Recording node's server id.
    pub node: u64,
    /// Packed zxid (range start for storage spans).
    pub zxid: u64,
    /// Packed zxid range end (== `zxid` for point events).
    pub zxid_end: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Peer server id involved, or 0.
    pub peer: u64,
}

impl TraceEvent {
    /// True when this event covers a zxid range (storage span).
    pub fn is_span(&self) -> bool {
        self.zxid_end != self.zxid || self.dur_us != 0
    }
}

/// Renders a packed zxid as the conventional `epoch:counter`.
pub fn zxid_display(zxid: u64) -> String {
    format!("{}:{}", zxid >> 32, zxid & 0xffff_ffff)
}

/// One event slot, stored as seven relaxed atomics (a [`TraceEvent`]'s
/// fields word by word; `stage` travels as its discriminant index).
struct Slot {
    words: [AtomicU64; 7],
}

impl Slot {
    fn empty() -> Slot {
        Slot { words: [0, 0, 0, 0, 0, 0, 0].map(AtomicU64::new) }
    }

    fn store(&self, ev: &TraceEvent) {
        let w = [ev.ts_us, ev.dur_us, ev.node, ev.zxid, ev.zxid_end, ev.stage as u64, ev.peer];
        for (slot, v) in self.words.iter().zip(w) {
            slot.store(v, Ordering::Relaxed);
        }
    }

    fn load(&self) -> Option<TraceEvent> {
        let w: [u64; 7] = [0usize, 1, 2, 3, 4, 5, 6].map(|i| self.words[i].load(Ordering::Relaxed));
        let stage = Stage::ALL.get(w[5] as usize).copied()?;
        Some(TraceEvent {
            ts_us: w[0],
            dur_us: w[1],
            node: w[2],
            zxid: w[3],
            zxid_end: w[4],
            stage,
            peer: w[6],
        })
    }
}

/// Fixed-capacity overwrite-oldest event ring; one per recording thread,
/// so the write side is **single-producer by construction** and needs no
/// lock: a push is seven relaxed word stores plus one release bump of
/// `head`. Readers (rare: `/trace` scrapes, test snapshots) copy slots
/// and then conservatively discard any slot the writer could have been
/// rewriting during the copy — the ring trades a slot or two of
/// freshness under concurrent load for a record path with zero atomic
/// read-modify-writes.
struct Ring {
    slots: Box<[Slot]>,
    /// Number of completed events ever pushed; slot `head % cap` is
    /// written *before* `head` is bumped (release), so every event with
    /// index < head is fully stored.
    head: AtomicU64,
    /// Events with index < `cleared` are hidden from readers.
    cleared: AtomicU64,
    /// The single producing thread. A reader on this thread knows no
    /// push is in flight and can skip the overwrite guard.
    owner: std::thread::ThreadId,
}

/// Recovers from mutex poisoning: the guarded data is plain-old-data
/// whose invariants hold after any partial write, so continuing is safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Ring {
    /// A ring owned by the calling thread (the one that will push).
    fn new(cap: usize) -> Ring {
        let slots: Vec<Slot> = (0..cap.max(1)).map(|_| Slot::empty()).collect();
        Ring {
            slots: slots.into(),
            head: AtomicU64::new(0),
            cleared: AtomicU64::new(0),
            owner: std::thread::current().id(),
        }
    }

    /// Single-producer push of event index `h` (each ring is owned by
    /// exactly one recording thread; see [`THREAD_RINGS`]). The caller
    /// supplies `h` from its private head cache so the hot path issues
    /// only *stores* — between two records the workload has usually
    /// evicted the ring's lines, and a store merely queues in the store
    /// buffer where a load of `head` would stall on the miss.
    fn push_at(&self, h: u64, ev: TraceEvent) {
        let cap = self.slots.len() as u64;
        if let Some(slot) = self.slots.get((h % cap) as usize) {
            slot.store(&ev);
        }
        self.head.store(h + 1, Ordering::Release);
    }

    /// Events oldest → newest.
    ///
    /// Any slot the writer may have touched during the copy is discarded:
    /// after copying, the head is re-read as `h2`; the writer has begun
    /// at most event `h2`, so only slots holding events with index
    /// strictly above `h2 − cap` are certainly intact.
    fn events(&self) -> Vec<TraceEvent> {
        let cap = self.slots.len() as u64;
        let h1 = self.head.load(Ordering::Acquire);
        let lo = self.cleared.load(Ordering::Acquire).max(h1.saturating_sub(cap));
        let copied: Vec<(u64, Option<TraceEvent>)> = (lo..h1)
            .map(|e| (e, self.slots.get((e % cap) as usize).and_then(Slot::load)))
            .collect();
        let h2 = self.head.load(Ordering::Acquire);
        // On the owning thread no push can be in flight, so event `h2`
        // has not begun and the `+ 1` in-flight guard is unnecessary.
        let reserve = if std::thread::current().id() == self.owner { 0 } else { 1 };
        let safe_lo = lo.max((h2 + reserve).saturating_sub(cap));
        copied.into_iter().filter(|(e, _)| *e >= safe_lo).filter_map(|(_, ev)| ev).collect()
    }

    fn clear(&self) {
        self.cleared.store(self.head.load(Ordering::Acquire), Ordering::Release);
    }

    fn dropped(&self) -> u64 {
        // Events evicted by overwrite: everything pushed beyond capacity.
        self.head.load(Ordering::Acquire).saturating_sub(self.slots.len() as u64)
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// One thread-local registry entry: this thread's ring in recorder `id`,
/// held *strongly* so the raw pointers in [`HOT`] stay valid — no
/// `Weak::upgrade`, no `Arc` clone, zero refcount traffic per event.
/// `alive` mirrors the owning recorder's liveness token; entries whose
/// recorder has dropped are pruned on the next cache miss (recorder ids
/// are never reused, so a stale entry can only waste memory, never alias
/// a new recorder).
struct ThreadRing {
    id: u64,
    ring: Arc<Ring>,
    alive: Weak<()>,
}

/// The registry vector, wrapped so its drop (thread teardown) also wipes
/// [`HOT`] — after the `Arc<Ring>`s here are gone, the hot entry's raw
/// pointers must never be dereferenced again.
struct RingRegistry(Vec<ThreadRing>);

impl Drop for RingRegistry {
    fn drop(&mut self) {
        let _ = HOT.try_with(|h| h.set(HotRing::EMPTY));
    }
}

/// The timestamp source, denormalized into [`HotRing`] so the hot path
/// reads the clock without touching the (usually cache-cold) clock
/// object behind the recorder's `Arc<dyn Clock>`.
#[derive(Clone, Copy)]
enum HotClock {
    /// `µs = (rdtsc − origin) × mult >> 32`, from
    /// [`Clock::raw_tsc_scale`] — the read is pure register arithmetic.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    Tsc { origin: u64, mult: u64 },
    /// Anything else (manual clocks, non-TSC hosts): fall back to the
    /// recorder's `dyn Clock`.
    Fallback,
}

impl HotClock {
    fn of(clock: &dyn Clock) -> HotClock {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        if let Some((origin, mult)) = clock.raw_tsc_scale() {
            return HotClock::Tsc { origin, mult };
        }
        let _ = clock;
        HotClock::Fallback
    }

    fn now(self, fallback: &dyn Clock) -> u64 {
        match self {
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            HotClock::Tsc { origin, mult } => {
                // SAFETY: `_rdtsc` reads the time-stamp counter register;
                // it accesses no memory and exists on every x86-64 CPU.
                let t = unsafe { core::arch::x86_64::_rdtsc() };
                ((u128::from(t.wrapping_sub(origin)) * u128::from(mult)) >> 32) as u64
            }
            HotClock::Fallback => fallback.now_micros(),
        }
    }
}

/// The single-cache-line fast path: everything one record needs, flat.
///
/// Rationale: a replica records ~16 events per transaction, and between
/// two events the workload evicts whatever the recorder touched, so at
/// saturation every pointer the record path chases is a cold load. The
/// natural chain — TLS vec → entry → `Arc<Ring>` → slots — is three
/// *dependent* misses (~100 ns/event measured, vs ~30 ns warm). This
/// struct flattens the chain: slot pointer, capacity, producer head, and
/// the TSC clock scale all live in one thread-local line, so a hit costs
/// one potentially-cold load plus stores (which only queue in the store
/// buffer, never stall).
///
/// # Safety invariants
///
/// `slots`/`shared_head` point into the `Ring` of the [`ThreadRing`]
/// entry with the same `id` in this thread's [`THREAD_RINGS`], which
/// holds the ring strongly. They are dereferenced only when `id` matches
/// the *calling* recorder — proof the recorder is alive, so registry
/// pruning (dead recorders only) cannot have dropped that entry. The
/// registry's drop wipes this cache, covering thread teardown.
#[derive(Clone, Copy)]
struct HotRing {
    /// Owning recorder id; 0 (never allocated) marks the empty cache.
    id: u64,
    /// Producer's exact copy of `Ring::head` (this thread is the only
    /// writer; the cold path re-reads the shared head, so the two can
    /// never diverge).
    head: u64,
    /// Ring capacity (≥ 1).
    cap: u64,
    slots: *const Slot,
    shared_head: *const AtomicU64,
    clock: HotClock,
}

impl HotRing {
    const EMPTY: HotRing = HotRing {
        id: 0,
        head: 0,
        cap: 1,
        slots: std::ptr::null(),
        shared_head: std::ptr::null(),
        clock: HotClock::Fallback,
    };
}

thread_local! {
    /// One-entry direct-mapped record cache (see [`HotRing`]). Threads
    /// recording into several recorders alternately (the simulator) miss
    /// here and take the registry path below, which is merely the old
    /// speed.
    static HOT: Cell<HotRing> = const { Cell::new(HotRing::EMPTY) };

    /// Per-thread registry: recorder id → this thread's ring in that
    /// recorder. Owns the `Arc<Ring>`s that keep [`HOT`]'s pointers valid.
    static THREAD_RINGS: RefCell<RingRegistry> = const { RefCell::new(RingRegistry(Vec::new())) };
}

/// A node's flight recorder: the set of per-thread rings plus the clock
/// they timestamp against.
///
/// Memory is bounded by `ring_count() × capacity × size_of::<TraceEvent>()`
/// where `ring_count` is the number of distinct threads that ever recorded
/// (event-loop, disk thread, per-connection reader threads).
pub struct Recorder {
    id: u64,
    node: u64,
    /// Runtime gate (default on). Sits beside `id`/`node` so the check
    /// shares the cache line every record already loads — pausing is an
    /// operational control (shed tracing cost under incident load, or
    /// A/B it in place), not a config rebuild.
    enabled: std::sync::atomic::AtomicBool,
    capacity: usize,
    clock: Arc<dyn Clock>,
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Liveness token observed (weakly) by thread-local cache entries.
    alive: Arc<()>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("node", &self.node)
            .field("capacity", &self.capacity)
            .field("rings", &self.ring_count())
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// A recorder for `node` with per-thread ring capacity `capacity`
    /// (clamped to ≥ 1), timestamping from `clock`.
    pub fn new(node: u64, capacity: usize, clock: Arc<dyn Clock>) -> Arc<Recorder> {
        Arc::new(Recorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            node,
            enabled: std::sync::atomic::AtomicBool::new(true),
            capacity: capacity.max(1),
            clock,
            rings: Mutex::new(Vec::new()),
            alive: Arc::new(()),
        })
    }

    /// Pauses (`false`) or resumes (`true`) recording at runtime. Paused
    /// records cost one relaxed load and a branch; already-recorded
    /// events stay readable. Takes effect promptly on every recording
    /// thread (relaxed visibility — a handful of straggler events around
    /// the toggle is fine for a flight recorder).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled (see [`Recorder::set_enabled`]).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The node id stamped on every event.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Per-thread ring capacity, in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of per-thread rings allocated so far.
    pub fn ring_count(&self) -> usize {
        lock(&self.rings).len()
    }

    /// Upper bound on resident events: `ring_count × capacity`. The
    /// recorder never holds more than this regardless of traffic.
    pub fn max_resident_events(&self) -> usize {
        self.ring_count() * self.capacity
    }

    /// Current recorder clock, microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Total events evicted by overwrite across all rings.
    pub fn dropped(&self) -> u64 {
        lock(&self.rings).iter().map(|r| r.dropped()).sum()
    }

    /// Records an instant event at the current clock reading.
    pub fn record(&self, stage: Stage, zxid: u64, peer: u64) {
        if !self.is_enabled() {
            return;
        }
        HOT.with(|hot| {
            let h = hot.get();
            let ts_us =
                if h.id == self.id { h.clock.now(&*self.clock) } else { self.clock.now_micros() };
            let ev =
                TraceEvent { ts_us, dur_us: 0, node: self.node, zxid, zxid_end: zxid, stage, peer };
            self.push_event(hot, h, ev);
        });
    }

    /// Records a span covering zxids `zxid..=zxid_end` from `start_us` to
    /// `end_us` (recorder clock readings; see [`Recorder::now_us`]).
    pub fn record_span(&self, stage: Stage, zxid: u64, zxid_end: u64, start_us: u64, end_us: u64) {
        if !self.is_enabled() {
            return;
        }
        let ev = TraceEvent {
            ts_us: start_us,
            dur_us: end_us.saturating_sub(start_us),
            node: self.node,
            zxid,
            zxid_end: zxid_end.max(zxid),
            stage,
            peer: 0,
        };
        HOT.with(|hot| self.push_event(hot, hot.get(), ev));
    }

    /// Pushes `ev` through the single-line fast path when the hot cache
    /// is ours, else through the registry (creating this thread's ring on
    /// first use) and re-primes the cache.
    fn push_event(&self, hot: &Cell<HotRing>, h: HotRing, ev: TraceEvent) {
        if h.id == self.id {
            let idx = (h.head % h.cap) as usize;
            // SAFETY: `h.id == self.id` means this *live* recorder's
            // entry in THREAD_RINGS still holds the `Arc<Ring>` these
            // pointers target (pruning removes dead recorders only, and
            // registry drop wipes the cache), `idx < cap == slots.len()`,
            // and this thread is the ring's only producer.
            unsafe {
                (*h.slots.add(idx)).store(&ev);
                (*h.shared_head).store(h.head + 1, Ordering::Release);
            }
            hot.set(HotRing { head: h.head + 1, ..h });
            return;
        }
        self.push_cold(hot, ev);
    }

    /// Registry-path push: find or create this thread's ring, push via
    /// the shared head (the producer-side truth the fast path mirrors),
    /// and take over the hot cache for this recorder.
    fn push_cold(&self, hot: &Cell<HotRing>, ev: TraceEvent) {
        THREAD_RINGS.with(|cell| {
            let mut reg = cell.borrow_mut();
            let entry = match reg.0.iter().position(|e| e.id == self.id) {
                Some(i) => &reg.0[i],
                None => {
                    // Miss: prune entries whose recorders have dropped,
                    // then register a new ring for this (thread, recorder).
                    reg.0.retain(|e| e.alive.strong_count() > 0);
                    let ring = Arc::new(Ring::new(self.capacity));
                    lock(&self.rings).push(Arc::clone(&ring));
                    reg.0.push(ThreadRing {
                        id: self.id,
                        ring,
                        alive: Arc::downgrade(&self.alive),
                    });
                    match reg.0.last() {
                        Some(e) => e,
                        None => return, // unreachable: just pushed
                    }
                }
            };
            let ring = &entry.ring;
            let head = ring.head.load(Ordering::Relaxed);
            ring.push_at(head, ev);
            hot.set(HotRing {
                id: self.id,
                head: head + 1,
                cap: ring.slots.len() as u64,
                slots: ring.slots.as_ptr(),
                shared_head: &ring.head,
                clock: HotClock::of(&*self.clock),
            });
        });
    }

    /// Copies out every ring, merged and sorted by `(ts_us, node)`.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<Ring>> = lock(&self.rings).clone();
        let mut out: Vec<TraceEvent> = rings.iter().flat_map(|r| r.events()).collect();
        out.sort_by_key(|e| (e.ts_us, e.zxid, e.stage));
        out
    }

    /// Like [`Recorder::snapshot`] but clears the rings afterwards.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<Ring>> = lock(&self.rings).clone();
        let mut out: Vec<TraceEvent> = rings.iter().flat_map(|r| r.events()).collect();
        for r in &rings {
            r.clear();
        }
        out.sort_by_key(|e| (e.ts_us, e.zxid, e.stage));
        out
    }
}

/// The cheap handle layers record through. Disabled by default (one-branch
/// no-op), so standalone automata and tests pay nothing.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Recorder>>);

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(r) => write!(f, "Tracer(node {})", r.node()),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// A tracer recording into `recorder`.
    pub fn new(recorder: Arc<Recorder>) -> Tracer {
        Tracer(Some(recorder))
    }

    /// True when events are actually recorded.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The backing recorder, if enabled.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.0.as_ref()
    }

    /// Current recorder clock in microseconds (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.0.as_ref().map_or(0, |r| r.now_us())
    }

    /// Records an instant event (no-op when disabled).
    #[inline]
    pub fn instant(&self, stage: Stage, zxid: u64, peer: u64) {
        if let Some(r) = &self.0 {
            r.record(stage, zxid, peer);
        }
    }

    /// Records a zxid-range span (no-op when disabled).
    #[inline]
    pub fn span(&self, stage: Stage, zxid: u64, zxid_end: u64, start_us: u64, end_us: u64) {
        if let Some(r) = &self.0 {
            r.record_span(stage, zxid, zxid_end, start_us, end_us);
        }
    }
}

/// Merges event sets from several recorders (e.g. every node of an
/// ensemble) into one stream sorted by `(ts_us, node)`.
pub fn merge(groups: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = groups.into_iter().flatten().collect();
    out.sort_by_key(|e| (e.ts_us, e.node, e.zxid, e.stage));
    out
}

/// Groups events into per-zxid causal timelines, each sorted by
/// `(ts_us, node)`.
///
/// Keys are the zxids of point events; a storage span covering
/// `zxid..=zxid_end` is attached to every key inside its range, so a
/// transaction's timeline includes the append/fsync it rode in.
pub fn timelines(events: &[TraceEvent]) -> BTreeMap<u64, Vec<TraceEvent>> {
    let mut map: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for e in events {
        if !e.is_span() {
            map.entry(e.zxid).or_default();
        }
    }
    for e in events {
        if e.is_span() {
            // Attach to existing point-event keys inside the range only:
            // bounded by the number of transactions actually observed.
            let keys: Vec<u64> = map.range(e.zxid..=e.zxid_end).map(|(&z, _)| z).collect();
            for z in keys {
                if let Some(v) = map.get_mut(&z) {
                    v.push(*e);
                }
            }
        } else if let Some(v) = map.get_mut(&e.zxid) {
            v.push(*e);
        }
    }
    for v in map.values_mut() {
        v.sort_by_key(|e| (e.ts_us, e.node, e.stage));
    }
    map
}

/// Time spent between two consecutive lifecycle stages of one transaction
/// on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDelta {
    /// Recording node.
    pub node: u64,
    /// Transaction.
    pub zxid: u64,
    /// Earlier stage.
    pub from: Stage,
    /// Later stage.
    pub to: Stage,
    /// Microseconds between the two events.
    pub delta_us: u64,
}

/// Computes consecutive-stage deltas per `(node, zxid)`: the time-in-stage
/// breakdown `broadcast_bench --trace-out` aggregates into histograms.
/// Storage spans are excluded (they cover ranges, not one transaction).
pub fn stage_deltas(events: &[TraceEvent]) -> Vec<StageDelta> {
    let mut per_key: BTreeMap<(u64, u64), Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if !e.is_span() {
            per_key.entry((e.node, e.zxid)).or_default().push(e);
        }
    }
    let mut out = Vec::new();
    for ((node, zxid), mut evs) in per_key {
        evs.sort_by_key(|e| (e.ts_us, e.stage));
        for w in evs.windows(2) {
            out.push(StageDelta {
                node,
                zxid,
                from: w[0].stage,
                to: w[1].stage,
                delta_us: w[1].ts_us.saturating_sub(w[0].ts_us),
            });
        }
    }
    out
}

/// Renders events as Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// object format), loadable in `chrome://tracing` and Perfetto.
///
/// Layout: one *process* per node; *thread* 0 is the storage lane
/// (append/fsync spans, `ph:"X"`); each distinct zxid gets its own
/// numbered track shared across nodes, so one transaction's lifecycle
/// lines up vertically across the ensemble. Instant events use `ph:"i"`
/// with thread scope.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Stable lane per zxid, shared across nodes.
    let mut lanes: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        if !e.is_span() {
            let next = lanes.len() as u64 + 1;
            lanes.entry(e.zxid).or_insert(next);
        }
    }
    let mut nodes: Vec<u64> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();

    let mut s = String::with_capacity(events.len() * 96 + 1024);
    s.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: &mut String, item: &str| {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(item);
    };
    for &n in &nodes {
        push(
            &mut s,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
                 \"args\":{{\"name\":\"zab node {n}\"}}}}"
            ),
        );
        push(
            &mut s,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
                 \"args\":{{\"name\":\"storage\"}}}}"
            ),
        );
        for (&zxid, &lane) in &lanes {
            push(
                &mut s,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":{lane},\
                     \"args\":{{\"name\":\"zxid {}\"}}}}",
                    zxid_display(zxid)
                ),
            );
        }
    }
    for e in events {
        let mut item = String::with_capacity(128);
        if e.is_span() {
            let _ = write!(
                item,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0,\
                 \"args\":{{\"zxid_first\":\"{}\",\"zxid_last\":\"{}\"}}}}",
                e.stage,
                e.ts_us,
                e.dur_us,
                e.node,
                zxid_display(e.zxid),
                zxid_display(e.zxid_end)
            );
        } else {
            let lane = lanes.get(&e.zxid).copied().unwrap_or(0);
            let _ = write!(
                item,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"zxid\":\"{}\"",
                e.stage,
                e.ts_us,
                e.node,
                lane,
                zxid_display(e.zxid)
            );
            if e.peer != 0 {
                let _ = write!(item, ",\"peer\":{}", e.peer);
            }
            item.push_str("}}");
        }
        push(&mut s, &item);
    }
    s.push_str("]}");
    s
}

/// Renders events as a flat JSON array of objects with the raw
/// [`TraceEvent`] fields (`ts_us`, `dur_us`, `node`, `zxid`, `zxid_end`,
/// `stage`, `peer`) — the machine-readable counterpart of
/// [`chrome_trace_json`], served by the admin endpoint's
/// `/trace?format=raw` for ensemble tools that re-ingest events (see
/// `zab-ops`). Stages use their [`Stage::as_str`] names; parse back with
/// [`Stage::parse`].
pub fn raw_trace_json(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(events.len() * 96 + 16);
    s.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"ts_us\":{},\"dur_us\":{},\"node\":{},\"zxid\":{},\"zxid_end\":{},\
             \"stage\":\"{}\",\"peer\":{}}}",
            e.ts_us, e.dur_us, e.node, e.zxid, e.zxid_end, e.stage, e.peer
        );
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zab_metrics::ManualClock;

    fn recorder(cap: usize) -> (Arc<Recorder>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Recorder::new(7, cap, clock.clone()), clock)
    }

    #[test]
    fn records_and_snapshots_in_time_order() {
        let (rec, clock) = recorder(16);
        let t = Tracer::new(rec.clone());
        clock.set_micros(10);
        t.instant(Stage::Submit, 1, 0);
        clock.set_micros(30);
        t.instant(Stage::Deliver, 1, 0);
        clock.set_micros(20);
        t.instant(Stage::ProposeEnqueue, 1, 0);
        let evs = rec.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.ts_us).collect::<Vec<_>>(),
            vec![10, 20, 30],
            "snapshot must sort by timestamp"
        );
        assert!(evs.iter().all(|e| e.node == 7));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let (rec, clock) = recorder(4);
        let t = Tracer::new(rec.clone());
        for i in 0..10u64 {
            clock.set_micros(i);
            t.instant(Stage::WireOut, i, 0);
        }
        let evs = rec.snapshot();
        assert_eq!(evs.len(), 4, "bounded at capacity");
        assert_eq!(evs.iter().map(|e| e.zxid).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn memory_stays_bounded_under_load() {
        let (rec, _clock) = recorder(128);
        let t = Tracer::new(rec.clone());
        for i in 0..100_000u64 {
            t.instant(Stage::WireIn, i, 1);
        }
        assert!(rec.snapshot().len() <= rec.max_resident_events());
        assert_eq!(rec.ring_count(), 1, "single thread → single ring");
    }

    #[test]
    fn each_thread_gets_its_own_ring() {
        let (rec, clock) = recorder(64);
        clock.set_micros(5);
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let t = Tracer::new(rec.clone());
                std::thread::spawn(move || {
                    for j in 0..10 {
                        t.instant(Stage::WireIn, i * 100 + j, i + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(rec.ring_count(), 4);
        assert_eq!(rec.snapshot().len(), 40);
    }

    #[test]
    fn drain_clears() {
        let (rec, _clock) = recorder(8);
        let t = Tracer::new(rec.clone());
        t.instant(Stage::Quorum, 3, 0);
        assert_eq!(rec.drain().len(), 1);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.instant(Stage::Submit, 1, 0);
        t.span(Stage::LogAppend, 1, 2, 0, 10);
        assert_eq!(t.now_us(), 0);
    }

    #[test]
    fn two_recorders_on_one_thread_do_not_cross_streams() {
        let clock = Arc::new(ManualClock::new());
        let a = Recorder::new(1, 8, clock.clone());
        let b = Recorder::new(2, 8, clock);
        Tracer::new(a.clone()).instant(Stage::Submit, 10, 0);
        Tracer::new(b.clone()).instant(Stage::Deliver, 20, 0);
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(a.snapshot()[0].zxid, 10);
        assert_eq!(b.snapshot().len(), 1);
        assert_eq!(b.snapshot()[0].zxid, 20);
    }

    #[test]
    fn timelines_group_by_zxid_and_attach_covering_spans() {
        let (rec, clock) = recorder(32);
        let t = Tracer::new(rec.clone());
        let z1 = (4u64 << 32) | 1;
        let z2 = (4u64 << 32) | 2;
        clock.set_micros(10);
        t.instant(Stage::ProposeEnqueue, z1, 0);
        clock.set_micros(11);
        t.instant(Stage::ProposeEnqueue, z2, 0);
        t.span(Stage::LogFsync, z1, z2, 12, 40);
        clock.set_micros(50);
        t.instant(Stage::Deliver, z1, 0);
        let tl = timelines(&rec.snapshot());
        assert_eq!(tl.len(), 2);
        let t1 = &tl[&z1];
        assert_eq!(
            t1.iter().map(|e| e.stage).collect::<Vec<_>>(),
            vec![Stage::ProposeEnqueue, Stage::LogFsync, Stage::Deliver]
        );
        assert!(tl[&z2].iter().any(|e| e.stage == Stage::LogFsync), "span covers z2 too");
    }

    #[test]
    fn stage_deltas_pair_consecutive_stages() {
        let (rec, clock) = recorder(32);
        let t = Tracer::new(rec.clone());
        clock.set_micros(100);
        t.instant(Stage::Submit, 9, 0);
        clock.set_micros(130);
        t.instant(Stage::ProposeEnqueue, 9, 0);
        clock.set_micros(190);
        t.instant(Stage::Deliver, 9, 0);
        let deltas = stage_deltas(&rec.snapshot());
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].from, Stage::Submit);
        assert_eq!(deltas[0].to, Stage::ProposeEnqueue);
        assert_eq!(deltas[0].delta_us, 30);
        assert_eq!(deltas[1].delta_us, 60);
    }

    #[test]
    fn chrome_export_shape() {
        let (rec, clock) = recorder(32);
        let t = Tracer::new(rec.clone());
        let z = (3u64 << 32) | 7;
        clock.set_micros(1000);
        t.instant(Stage::Submit, z, 0);
        clock.set_micros(1500);
        t.instant(Stage::AckRx, z, 2);
        t.span(Stage::LogAppend, z, z, 1100, 1300);
        let json = chrome_trace_json(&rec.snapshot());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("zab node 7"));
        assert!(json.contains("\"zxid\":\"3:7\""));
        assert!(json.contains("\"peer\":2"));
        assert!(json.contains("\"ph\":\"X\""), "storage span rendered as complete event");
        assert!(json.contains("\"dur\":200"));
        // Balanced braces — cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn merge_sorts_across_nodes() {
        let clock = Arc::new(ManualClock::new());
        let a = Recorder::new(1, 8, clock.clone());
        let b = Recorder::new(2, 8, clock.clone());
        clock.set_micros(20);
        Tracer::new(a.clone()).instant(Stage::WireOut, 5, 2);
        clock.set_micros(10);
        Tracer::new(b.clone()).instant(Stage::WireIn, 5, 1);
        let merged = merge(vec![a.snapshot(), b.snapshot()]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].node, 2);
        assert_eq!(merged[1].node, 1);
    }

    #[test]
    fn zxid_display_unpacks() {
        assert_eq!(zxid_display((4 << 32) | 17), "4:17");
        assert_eq!(zxid_display(0), "0:0");
    }
}
