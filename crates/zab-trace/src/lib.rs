//! Per-transaction flight recorder (DESIGN.md §9).
//!
//! Zab's correctness argument is *causal*: every committed transaction has
//! a precise lifecycle — admit → submit → propose-enqueue → wire-out →
//! wire-in → ack-rx → quorum → commit-out → watermark-advance → deliver —
//! whose
//! interleaving across replicas is exactly what the paper's primary-order
//! guarantee constrains. Aggregate metrics (`zab-metrics`) say *how often*
//! and *how slow*; this crate records *where zxid ⟨e, c⟩ spent its time,
//! and on which replica*.
//!
//! ## Design
//!
//! - [`TraceEvent`] is a fixed-size `Copy` record: `{ts_us, dur_us, node,
//!   zxid, zxid_end, stage, peer}`. The zxid **is** the trace id — it is
//!   globally unique, totally ordered, and already on every PROPOSE / ACK /
//!   COMMIT frame, so cross-node correlation needs **no new wire bytes**:
//!   the receive side simply re-keys on the decoded zxid.
//! - [`Recorder`] owns per-thread ring buffers with a configurable
//!   capacity and overwrite-oldest semantics: memory is bounded at
//!   `threads × capacity × size_of::<TraceEvent>()` no matter how long the
//!   node runs. Each thread writes to its own ring behind a private,
//!   uncontended mutex; the only cross-thread synchronization is a
//!   thread-local lookup plus that uncontended lock (lock-light, not
//!   lock-free — honest and sufficient: the hot path is two atomics-free
//!   loads, one `Mutex` acquire with no contention, and a slot write).
//! - [`Tracer`] is the cheap, cloneable handle threaded through the
//!   layers. A disabled tracer (the default everywhere) is a no-op that
//!   costs one branch.
//! - The exporter merges rings into per-zxid causal timelines
//!   ([`timelines`]) and renders Chrome trace-event JSON
//!   ([`chrome_trace_json`]) loadable in `chrome://tracing` or Perfetto:
//!   one process per node, one track per zxid, storage spans on track 0.
//!
//! Deterministic simulations drive the recorder from a
//! [`zab_metrics::ManualClock`]; real nodes use [`zab_metrics::WallClock`].
//! No external dependencies, consistent with the vendored-offline policy.

#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use zab_metrics::Clock;

/// Where in the transaction lifecycle an event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// A client arrived at the admission gate (before any queueing). The
    /// delta to [`Stage::Submit`] is exactly the admission cost: gate
    /// wait plus command-queue time, the quantity the offered-load bench
    /// attributes when it degrades under overload.
    Admit,
    /// A client handed the payload to the replica (leader submit gate).
    Submit,
    /// The leader assigned a zxid and enqueued the proposal.
    ProposeEnqueue,
    /// A frame carrying this zxid was enqueued to a peer connection.
    WireOut,
    /// A frame carrying this zxid was decoded off a peer connection.
    WireIn,
    /// The leader received (or self-generated) an ack covering this zxid.
    AckRx,
    /// A quorum of acks formed; the transaction is committed.
    Quorum,
    /// The commit watermark covering this zxid was broadcast.
    CommitOut,
    /// A follower advanced its commit watermark to this zxid.
    WatermarkAdvance,
    /// The transaction was handed to the application.
    Deliver,
    /// Storage appended a batch covering `zxid..=zxid_end` (span).
    LogAppend,
    /// Storage flushed (fsync) the batch covering `zxid..=zxid_end` (span).
    LogFsync,
}

impl Stage {
    /// Every stage, in lifecycle order.
    pub const ALL: [Stage; 12] = [
        Stage::Admit,
        Stage::Submit,
        Stage::ProposeEnqueue,
        Stage::WireOut,
        Stage::WireIn,
        Stage::AckRx,
        Stage::Quorum,
        Stage::CommitOut,
        Stage::WatermarkAdvance,
        Stage::Deliver,
        Stage::LogAppend,
        Stage::LogFsync,
    ];

    /// Stable human-readable name (used in exports and endpoints).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::Submit => "submit",
            Stage::ProposeEnqueue => "propose-enqueue",
            Stage::WireOut => "wire-out",
            Stage::WireIn => "wire-in",
            Stage::AckRx => "ack-rx",
            Stage::Quorum => "quorum",
            Stage::CommitOut => "commit-out",
            Stage::WatermarkAdvance => "watermark-advance",
            Stage::Deliver => "deliver",
            Stage::LogAppend => "log-append",
            Stage::LogFsync => "log-fsync",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One fixed-size flight-recorder record.
///
/// `zxid` is the packed `(epoch << 32) | counter` transaction id. Point
/// events have `zxid_end == zxid` and `dur_us == 0`; storage spans cover
/// the inclusive zxid range `zxid..=zxid_end` and carry a duration.
/// `peer == 0` means "no peer" (server ids start at 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic microseconds (recorder clock origin).
    pub ts_us: u64,
    /// Span duration in microseconds; 0 for instant events.
    pub dur_us: u64,
    /// Recording node's server id.
    pub node: u64,
    /// Packed zxid (range start for storage spans).
    pub zxid: u64,
    /// Packed zxid range end (== `zxid` for point events).
    pub zxid_end: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Peer server id involved, or 0.
    pub peer: u64,
}

impl TraceEvent {
    /// True when this event covers a zxid range (storage span).
    pub fn is_span(&self) -> bool {
        self.zxid_end != self.zxid || self.dur_us != 0
    }
}

/// Renders a packed zxid as the conventional `epoch:counter`.
pub fn zxid_display(zxid: u64) -> String {
    format!("{}:{}", zxid >> 32, zxid & 0xffff_ffff)
}

/// Fixed-capacity overwrite-oldest event ring; one per recording thread.
struct Ring {
    slots: Mutex<RingInner>,
}

struct RingInner {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next slot to write once full (oldest slot).
    next: usize,
    /// Events evicted by overwrite.
    dropped: u64,
}

/// Recovers from mutex poisoning: the ring holds plain-old-data whose
/// invariants hold after any partial write, so continuing is safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            slots: Mutex::new(RingInner { buf: Vec::new(), cap: cap.max(1), next: 0, dropped: 0 }),
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut r = lock(&self.slots);
        if r.buf.len() < r.cap {
            r.buf.push(ev);
        } else {
            let i = r.next;
            r.buf[i] = ev;
            r.next = (i + 1) % r.cap;
            r.dropped += 1;
        }
    }

    /// Events oldest → newest.
    fn events(&self) -> Vec<TraceEvent> {
        let r = lock(&self.slots);
        let mut out = Vec::with_capacity(r.buf.len());
        out.extend_from_slice(&r.buf[r.next..]);
        out.extend_from_slice(&r.buf[..r.next]);
        out
    }

    fn clear(&self) {
        let mut r = lock(&self.slots);
        r.buf.clear();
        r.next = 0;
    }

    fn dropped(&self) -> u64 {
        lock(&self.slots).dropped
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache: recorder id → this thread's ring in that
    /// recorder. Weak so a dropped recorder's rings are reclaimed; stale
    /// entries are pruned on the next cache miss.
    static THREAD_RINGS: RefCell<Vec<(u64, Weak<Ring>)>> = const { RefCell::new(Vec::new()) };
}

/// A node's flight recorder: the set of per-thread rings plus the clock
/// they timestamp against.
///
/// Memory is bounded by `ring_count() × capacity × size_of::<TraceEvent>()`
/// where `ring_count` is the number of distinct threads that ever recorded
/// (event-loop, disk thread, per-connection reader threads).
pub struct Recorder {
    id: u64,
    node: u64,
    capacity: usize,
    clock: Arc<dyn Clock>,
    rings: Mutex<Vec<Arc<Ring>>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("node", &self.node)
            .field("capacity", &self.capacity)
            .field("rings", &self.ring_count())
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// A recorder for `node` with per-thread ring capacity `capacity`
    /// (clamped to ≥ 1), timestamping from `clock`.
    pub fn new(node: u64, capacity: usize, clock: Arc<dyn Clock>) -> Arc<Recorder> {
        Arc::new(Recorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            node,
            capacity: capacity.max(1),
            clock,
            rings: Mutex::new(Vec::new()),
        })
    }

    /// The node id stamped on every event.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Per-thread ring capacity, in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of per-thread rings allocated so far.
    pub fn ring_count(&self) -> usize {
        lock(&self.rings).len()
    }

    /// Upper bound on resident events: `ring_count × capacity`. The
    /// recorder never holds more than this regardless of traffic.
    pub fn max_resident_events(&self) -> usize {
        self.ring_count() * self.capacity
    }

    /// Current recorder clock, microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Total events evicted by overwrite across all rings.
    pub fn dropped(&self) -> u64 {
        lock(&self.rings).iter().map(|r| r.dropped()).sum()
    }

    /// This thread's ring, creating and registering it on first use.
    fn ring(&self) -> Arc<Ring> {
        THREAD_RINGS.with(|cell| {
            let mut cache = cell.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(id, _)| *id == self.id) {
                if let Some(ring) = weak.upgrade() {
                    return ring;
                }
            }
            // Miss (or stale): prune dead recorders, register a new ring.
            cache.retain(|(id, weak)| *id != self.id && weak.strong_count() > 0);
            let ring = Arc::new(Ring::new(self.capacity));
            lock(&self.rings).push(Arc::clone(&ring));
            cache.push((self.id, Arc::downgrade(&ring)));
            ring
        })
    }

    /// Records an instant event at the current clock reading.
    pub fn record(&self, stage: Stage, zxid: u64, peer: u64) {
        let ev = TraceEvent {
            ts_us: self.clock.now_micros(),
            dur_us: 0,
            node: self.node,
            zxid,
            zxid_end: zxid,
            stage,
            peer,
        };
        self.ring().push(ev);
    }

    /// Records a span covering zxids `zxid..=zxid_end` from `start_us` to
    /// `end_us` (recorder clock readings; see [`Recorder::now_us`]).
    pub fn record_span(&self, stage: Stage, zxid: u64, zxid_end: u64, start_us: u64, end_us: u64) {
        let ev = TraceEvent {
            ts_us: start_us,
            dur_us: end_us.saturating_sub(start_us),
            node: self.node,
            zxid,
            zxid_end: zxid_end.max(zxid),
            stage,
            peer: 0,
        };
        self.ring().push(ev);
    }

    /// Copies out every ring, merged and sorted by `(ts_us, node)`.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<Ring>> = lock(&self.rings).clone();
        let mut out: Vec<TraceEvent> = rings.iter().flat_map(|r| r.events()).collect();
        out.sort_by_key(|e| (e.ts_us, e.zxid, e.stage));
        out
    }

    /// Like [`Recorder::snapshot`] but clears the rings afterwards.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<Ring>> = lock(&self.rings).clone();
        let mut out: Vec<TraceEvent> = rings.iter().flat_map(|r| r.events()).collect();
        for r in &rings {
            r.clear();
        }
        out.sort_by_key(|e| (e.ts_us, e.zxid, e.stage));
        out
    }
}

/// The cheap handle layers record through. Disabled by default (one-branch
/// no-op), so standalone automata and tests pay nothing.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Recorder>>);

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(r) => write!(f, "Tracer(node {})", r.node()),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// A tracer recording into `recorder`.
    pub fn new(recorder: Arc<Recorder>) -> Tracer {
        Tracer(Some(recorder))
    }

    /// True when events are actually recorded.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The backing recorder, if enabled.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.0.as_ref()
    }

    /// Current recorder clock in microseconds (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.0.as_ref().map_or(0, |r| r.now_us())
    }

    /// Records an instant event (no-op when disabled).
    #[inline]
    pub fn instant(&self, stage: Stage, zxid: u64, peer: u64) {
        if let Some(r) = &self.0 {
            r.record(stage, zxid, peer);
        }
    }

    /// Records a zxid-range span (no-op when disabled).
    #[inline]
    pub fn span(&self, stage: Stage, zxid: u64, zxid_end: u64, start_us: u64, end_us: u64) {
        if let Some(r) = &self.0 {
            r.record_span(stage, zxid, zxid_end, start_us, end_us);
        }
    }
}

/// Merges event sets from several recorders (e.g. every node of an
/// ensemble) into one stream sorted by `(ts_us, node)`.
pub fn merge(groups: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = groups.into_iter().flatten().collect();
    out.sort_by_key(|e| (e.ts_us, e.node, e.zxid, e.stage));
    out
}

/// Groups events into per-zxid causal timelines, each sorted by
/// `(ts_us, node)`.
///
/// Keys are the zxids of point events; a storage span covering
/// `zxid..=zxid_end` is attached to every key inside its range, so a
/// transaction's timeline includes the append/fsync it rode in.
pub fn timelines(events: &[TraceEvent]) -> BTreeMap<u64, Vec<TraceEvent>> {
    let mut map: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    for e in events {
        if !e.is_span() {
            map.entry(e.zxid).or_default();
        }
    }
    for e in events {
        if e.is_span() {
            // Attach to existing point-event keys inside the range only:
            // bounded by the number of transactions actually observed.
            let keys: Vec<u64> = map.range(e.zxid..=e.zxid_end).map(|(&z, _)| z).collect();
            for z in keys {
                if let Some(v) = map.get_mut(&z) {
                    v.push(*e);
                }
            }
        } else if let Some(v) = map.get_mut(&e.zxid) {
            v.push(*e);
        }
    }
    for v in map.values_mut() {
        v.sort_by_key(|e| (e.ts_us, e.node, e.stage));
    }
    map
}

/// Time spent between two consecutive lifecycle stages of one transaction
/// on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDelta {
    /// Recording node.
    pub node: u64,
    /// Transaction.
    pub zxid: u64,
    /// Earlier stage.
    pub from: Stage,
    /// Later stage.
    pub to: Stage,
    /// Microseconds between the two events.
    pub delta_us: u64,
}

/// Computes consecutive-stage deltas per `(node, zxid)`: the time-in-stage
/// breakdown `broadcast_bench --trace-out` aggregates into histograms.
/// Storage spans are excluded (they cover ranges, not one transaction).
pub fn stage_deltas(events: &[TraceEvent]) -> Vec<StageDelta> {
    let mut per_key: BTreeMap<(u64, u64), Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if !e.is_span() {
            per_key.entry((e.node, e.zxid)).or_default().push(e);
        }
    }
    let mut out = Vec::new();
    for ((node, zxid), mut evs) in per_key {
        evs.sort_by_key(|e| (e.ts_us, e.stage));
        for w in evs.windows(2) {
            out.push(StageDelta {
                node,
                zxid,
                from: w[0].stage,
                to: w[1].stage,
                delta_us: w[1].ts_us.saturating_sub(w[0].ts_us),
            });
        }
    }
    out
}

/// Renders events as Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// object format), loadable in `chrome://tracing` and Perfetto.
///
/// Layout: one *process* per node; *thread* 0 is the storage lane
/// (append/fsync spans, `ph:"X"`); each distinct zxid gets its own
/// numbered track shared across nodes, so one transaction's lifecycle
/// lines up vertically across the ensemble. Instant events use `ph:"i"`
/// with thread scope.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Stable lane per zxid, shared across nodes.
    let mut lanes: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        if !e.is_span() {
            let next = lanes.len() as u64 + 1;
            lanes.entry(e.zxid).or_insert(next);
        }
    }
    let mut nodes: Vec<u64> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();

    let mut s = String::with_capacity(events.len() * 96 + 1024);
    s.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: &mut String, item: &str| {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(item);
    };
    for &n in &nodes {
        push(
            &mut s,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
                 \"args\":{{\"name\":\"zab node {n}\"}}}}"
            ),
        );
        push(
            &mut s,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
                 \"args\":{{\"name\":\"storage\"}}}}"
            ),
        );
        for (&zxid, &lane) in &lanes {
            push(
                &mut s,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":{lane},\
                     \"args\":{{\"name\":\"zxid {}\"}}}}",
                    zxid_display(zxid)
                ),
            );
        }
    }
    for e in events {
        let mut item = String::with_capacity(128);
        if e.is_span() {
            let _ = write!(
                item,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0,\
                 \"args\":{{\"zxid_first\":\"{}\",\"zxid_last\":\"{}\"}}}}",
                e.stage,
                e.ts_us,
                e.dur_us,
                e.node,
                zxid_display(e.zxid),
                zxid_display(e.zxid_end)
            );
        } else {
            let lane = lanes.get(&e.zxid).copied().unwrap_or(0);
            let _ = write!(
                item,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"zxid\":\"{}\"",
                e.stage,
                e.ts_us,
                e.node,
                lane,
                zxid_display(e.zxid)
            );
            if e.peer != 0 {
                let _ = write!(item, ",\"peer\":{}", e.peer);
            }
            item.push_str("}}");
        }
        push(&mut s, &item);
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zab_metrics::ManualClock;

    fn recorder(cap: usize) -> (Arc<Recorder>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Recorder::new(7, cap, clock.clone()), clock)
    }

    #[test]
    fn records_and_snapshots_in_time_order() {
        let (rec, clock) = recorder(16);
        let t = Tracer::new(rec.clone());
        clock.set_micros(10);
        t.instant(Stage::Submit, 1, 0);
        clock.set_micros(30);
        t.instant(Stage::Deliver, 1, 0);
        clock.set_micros(20);
        t.instant(Stage::ProposeEnqueue, 1, 0);
        let evs = rec.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.ts_us).collect::<Vec<_>>(),
            vec![10, 20, 30],
            "snapshot must sort by timestamp"
        );
        assert!(evs.iter().all(|e| e.node == 7));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let (rec, clock) = recorder(4);
        let t = Tracer::new(rec.clone());
        for i in 0..10u64 {
            clock.set_micros(i);
            t.instant(Stage::WireOut, i, 0);
        }
        let evs = rec.snapshot();
        assert_eq!(evs.len(), 4, "bounded at capacity");
        assert_eq!(evs.iter().map(|e| e.zxid).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn memory_stays_bounded_under_load() {
        let (rec, _clock) = recorder(128);
        let t = Tracer::new(rec.clone());
        for i in 0..100_000u64 {
            t.instant(Stage::WireIn, i, 1);
        }
        assert!(rec.snapshot().len() <= rec.max_resident_events());
        assert_eq!(rec.ring_count(), 1, "single thread → single ring");
    }

    #[test]
    fn each_thread_gets_its_own_ring() {
        let (rec, clock) = recorder(64);
        clock.set_micros(5);
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let t = Tracer::new(rec.clone());
                std::thread::spawn(move || {
                    for j in 0..10 {
                        t.instant(Stage::WireIn, i * 100 + j, i + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(rec.ring_count(), 4);
        assert_eq!(rec.snapshot().len(), 40);
    }

    #[test]
    fn drain_clears() {
        let (rec, _clock) = recorder(8);
        let t = Tracer::new(rec.clone());
        t.instant(Stage::Quorum, 3, 0);
        assert_eq!(rec.drain().len(), 1);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.instant(Stage::Submit, 1, 0);
        t.span(Stage::LogAppend, 1, 2, 0, 10);
        assert_eq!(t.now_us(), 0);
    }

    #[test]
    fn two_recorders_on_one_thread_do_not_cross_streams() {
        let clock = Arc::new(ManualClock::new());
        let a = Recorder::new(1, 8, clock.clone());
        let b = Recorder::new(2, 8, clock);
        Tracer::new(a.clone()).instant(Stage::Submit, 10, 0);
        Tracer::new(b.clone()).instant(Stage::Deliver, 20, 0);
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(a.snapshot()[0].zxid, 10);
        assert_eq!(b.snapshot().len(), 1);
        assert_eq!(b.snapshot()[0].zxid, 20);
    }

    #[test]
    fn timelines_group_by_zxid_and_attach_covering_spans() {
        let (rec, clock) = recorder(32);
        let t = Tracer::new(rec.clone());
        let z1 = (4u64 << 32) | 1;
        let z2 = (4u64 << 32) | 2;
        clock.set_micros(10);
        t.instant(Stage::ProposeEnqueue, z1, 0);
        clock.set_micros(11);
        t.instant(Stage::ProposeEnqueue, z2, 0);
        t.span(Stage::LogFsync, z1, z2, 12, 40);
        clock.set_micros(50);
        t.instant(Stage::Deliver, z1, 0);
        let tl = timelines(&rec.snapshot());
        assert_eq!(tl.len(), 2);
        let t1 = &tl[&z1];
        assert_eq!(
            t1.iter().map(|e| e.stage).collect::<Vec<_>>(),
            vec![Stage::ProposeEnqueue, Stage::LogFsync, Stage::Deliver]
        );
        assert!(tl[&z2].iter().any(|e| e.stage == Stage::LogFsync), "span covers z2 too");
    }

    #[test]
    fn stage_deltas_pair_consecutive_stages() {
        let (rec, clock) = recorder(32);
        let t = Tracer::new(rec.clone());
        clock.set_micros(100);
        t.instant(Stage::Submit, 9, 0);
        clock.set_micros(130);
        t.instant(Stage::ProposeEnqueue, 9, 0);
        clock.set_micros(190);
        t.instant(Stage::Deliver, 9, 0);
        let deltas = stage_deltas(&rec.snapshot());
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].from, Stage::Submit);
        assert_eq!(deltas[0].to, Stage::ProposeEnqueue);
        assert_eq!(deltas[0].delta_us, 30);
        assert_eq!(deltas[1].delta_us, 60);
    }

    #[test]
    fn chrome_export_shape() {
        let (rec, clock) = recorder(32);
        let t = Tracer::new(rec.clone());
        let z = (3u64 << 32) | 7;
        clock.set_micros(1000);
        t.instant(Stage::Submit, z, 0);
        clock.set_micros(1500);
        t.instant(Stage::AckRx, z, 2);
        t.span(Stage::LogAppend, z, z, 1100, 1300);
        let json = chrome_trace_json(&rec.snapshot());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("zab node 7"));
        assert!(json.contains("\"zxid\":\"3:7\""));
        assert!(json.contains("\"peer\":2"));
        assert!(json.contains("\"ph\":\"X\""), "storage span rendered as complete event");
        assert!(json.contains("\"dur\":200"));
        // Balanced braces — cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn merge_sorts_across_nodes() {
        let clock = Arc::new(ManualClock::new());
        let a = Recorder::new(1, 8, clock.clone());
        let b = Recorder::new(2, 8, clock.clone());
        clock.set_micros(20);
        Tracer::new(a.clone()).instant(Stage::WireOut, 5, 2);
        clock.set_micros(10);
        Tracer::new(b.clone()).instant(Stage::WireIn, 5, 1);
        let merged = merge(vec![a.snapshot(), b.snapshot()]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].node, 2);
        assert_eq!(merged[1].node, 1);
    }

    #[test]
    fn zxid_display_unpacks() {
        assert_eq!(zxid_display((4 << 32) | 17), "4:17");
        assert_eq!(zxid_display(0), "0:0");
    }
}
