//! The simulated application: a replicated log whose state is its history.
//!
//! Choosing "the full applied sequence" as the application state makes the
//! correctness checker exact: a snapshot transfer carries the entire
//! sequence, so after any combination of DIFF/TRUNC/SNAP syncs every
//! node's application state is directly comparable entry-by-entry.

use zab_core::{Txn, Zxid};
use zab_wire::codec::{WireRead, WireWrite};

/// FNV-1a hash of a payload; applied entries store hashes, not payloads,
/// to keep big simulations cheap.
pub fn payload_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One applied entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    /// The transaction id.
    pub zxid: Zxid,
    /// FNV-1a of the payload.
    pub hash: u64,
}

/// The replicated application state machine used by the simulator.
#[derive(Debug, Clone, Default)]
pub struct ReplicatedLog {
    entries: Vec<Applied>,
}

impl ReplicatedLog {
    /// Empty state.
    pub fn new() -> ReplicatedLog {
        ReplicatedLog::default()
    }

    /// Applies one delivered transaction.
    ///
    /// # Panics
    ///
    /// Panics if delivery regresses (zxid not greater than the last
    /// applied) — the simulator treats that as a checker-level fatal.
    pub fn apply(&mut self, txn: &Txn) {
        if let Some(last) = self.entries.last() {
            assert!(
                txn.zxid > last.zxid,
                "delivery out of order: {} after {}",
                txn.zxid,
                last.zxid
            );
        }
        self.entries.push(Applied { zxid: txn.zxid, hash: payload_hash(&txn.data) });
    }

    /// The applied sequence.
    pub fn entries(&self) -> &[Applied] {
        &self.entries
    }

    /// Number of applied transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been applied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Zxid of the last applied transaction.
    pub fn last_zxid(&self) -> Zxid {
        self.entries.last().map_or(Zxid::ZERO, |e| e.zxid)
    }

    /// Serializes the full state (for SNAP synchronization).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + self.entries.len() * 16);
        buf.put_u32_le_wire(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u64_le_wire(e.zxid.0);
            buf.put_u64_le_wire(e.hash);
        }
        buf
    }

    /// Replaces the state with a received snapshot.
    ///
    /// # Panics
    ///
    /// Panics on a malformed snapshot; the simulator only feeds snapshots
    /// produced by [`ReplicatedLog::snapshot`].
    pub fn install(&mut self, snapshot: &[u8]) {
        let mut cur = snapshot;
        let n = cur.get_u32_le_wire().expect("snapshot header") as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let zxid = Zxid(cur.get_u64_le_wire().expect("snapshot entry"));
            let hash = cur.get_u64_le_wire().expect("snapshot entry");
            entries.push(Applied { zxid, hash });
        }
        assert!(cur.is_empty(), "snapshot has trailing bytes");
        self.entries = entries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zab_core::Epoch;

    fn txn(c: u32, data: &[u8]) -> Txn {
        Txn::new(Zxid::new(Epoch(1), c), data.to_vec())
    }

    #[test]
    fn apply_accumulates_in_order() {
        let mut log = ReplicatedLog::new();
        log.apply(&txn(1, b"a"));
        log.apply(&txn(2, b"b"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_zxid(), Zxid::new(Epoch(1), 2));
    }

    #[test]
    #[should_panic(expected = "delivery out of order")]
    fn out_of_order_apply_panics() {
        let mut log = ReplicatedLog::new();
        log.apply(&txn(2, b"b"));
        log.apply(&txn(1, b"a"));
    }

    #[test]
    fn snapshot_install_round_trips() {
        let mut log = ReplicatedLog::new();
        for c in 1..=10 {
            log.apply(&txn(c, &c.to_le_bytes()));
        }
        let snap = log.snapshot();
        let mut other = ReplicatedLog::new();
        other.install(&snap);
        assert_eq!(other.entries(), log.entries());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let log = ReplicatedLog::new();
        let mut other = ReplicatedLog::new();
        other.install(&log.snapshot());
        assert!(other.is_empty());
    }

    #[test]
    fn hash_distinguishes_payloads() {
        assert_ne!(payload_hash(b"a"), payload_hash(b"b"));
        assert_ne!(payload_hash(b""), payload_hash(b"\0"));
    }
}
