//! The simulated application: a replicated log whose state is its history.
//!
//! Choosing "the full applied sequence" as the application state makes the
//! correctness checker exact: a snapshot transfer carries the entire
//! sequence, so after any combination of DIFF/TRUNC/SNAP syncs every
//! node's application state is directly comparable entry-by-entry.

use std::fmt;
use zab_core::{Txn, Zxid};
use zab_wire::codec::{WireRead, WireWrite};

/// A snapshot that could not be decoded. Snapshot bytes arrive over a
/// (simulated) wire or from (simulated) disk, so decoding failures are
/// node-level faults to degrade on, never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the promised entries did.
    Truncated {
        /// Entries the header promised.
        expected: usize,
        /// Entries decoded before the bytes ran out.
        decoded: usize,
    },
    /// Bytes remain after the last promised entry.
    TrailingBytes {
        /// How many.
        excess: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { expected, decoded } => {
                write!(f, "snapshot truncated: {decoded} of {expected} entries decoded")
            }
            SnapshotError::TrailingBytes { excess } => {
                write!(f, "snapshot has {excess} trailing bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a hash of a payload; applied entries store hashes, not payloads,
/// to keep big simulations cheap.
pub fn payload_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One applied entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    /// The transaction id.
    pub zxid: Zxid,
    /// FNV-1a of the payload.
    pub hash: u64,
}

/// The replicated application state machine used by the simulator.
#[derive(Debug, Clone, Default)]
pub struct ReplicatedLog {
    entries: Vec<Applied>,
}

impl ReplicatedLog {
    /// Empty state.
    pub fn new() -> ReplicatedLog {
        ReplicatedLog::default()
    }

    /// Applies one delivered transaction.
    ///
    /// # Panics
    ///
    /// Panics if delivery regresses (zxid not greater than the last
    /// applied) — the simulator treats that as a checker-level fatal.
    pub fn apply(&mut self, txn: &Txn) {
        if let Some(last) = self.entries.last() {
            assert!(
                txn.zxid > last.zxid,
                "delivery out of order: {} after {}",
                txn.zxid,
                last.zxid
            );
        }
        self.entries.push(Applied { zxid: txn.zxid, hash: payload_hash(&txn.data) });
    }

    /// The applied sequence.
    pub fn entries(&self) -> &[Applied] {
        &self.entries
    }

    /// Number of applied transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been applied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Zxid of the last applied transaction.
    pub fn last_zxid(&self) -> Zxid {
        self.entries.last().map_or(Zxid::ZERO, |e| e.zxid)
    }

    /// Serializes the full state (for SNAP synchronization).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + self.entries.len() * 16);
        buf.put_u32_le_wire(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u64_le_wire(e.zxid.0);
            buf.put_u64_le_wire(e.hash);
        }
        buf
    }

    /// Replaces the state with a received snapshot. On `Err` the current
    /// state is unchanged; the caller surfaces the error as a node fault.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the bytes are truncated or have trailing
    /// garbage.
    pub fn install(&mut self, snapshot: &[u8]) -> Result<(), SnapshotError> {
        let mut cur = snapshot;
        let n = cur
            .get_u32_le_wire()
            .map_err(|_| SnapshotError::Truncated { expected: 0, decoded: 0 })?
            as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for decoded in 0..n {
            let truncated = SnapshotError::Truncated { expected: n, decoded };
            let zxid = Zxid(cur.get_u64_le_wire().map_err(|_| truncated.clone())?);
            let hash = cur.get_u64_le_wire().map_err(|_| truncated)?;
            entries.push(Applied { zxid, hash });
        }
        if !cur.is_empty() {
            return Err(SnapshotError::TrailingBytes { excess: cur.len() });
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zab_core::Epoch;

    fn txn(c: u32, data: &[u8]) -> Txn {
        Txn::new(Zxid::new(Epoch(1), c), data.to_vec())
    }

    #[test]
    fn apply_accumulates_in_order() {
        let mut log = ReplicatedLog::new();
        log.apply(&txn(1, b"a"));
        log.apply(&txn(2, b"b"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_zxid(), Zxid::new(Epoch(1), 2));
    }

    #[test]
    #[should_panic(expected = "delivery out of order")]
    fn out_of_order_apply_panics() {
        let mut log = ReplicatedLog::new();
        log.apply(&txn(2, b"b"));
        log.apply(&txn(1, b"a"));
    }

    #[test]
    fn snapshot_install_round_trips() {
        let mut log = ReplicatedLog::new();
        for c in 1..=10 {
            log.apply(&txn(c, &c.to_le_bytes()));
        }
        let snap = log.snapshot();
        let mut other = ReplicatedLog::new();
        other.install(&snap).expect("well-formed snapshot");
        assert_eq!(other.entries(), log.entries());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let log = ReplicatedLog::new();
        let mut other = ReplicatedLog::new();
        other.install(&log.snapshot()).expect("well-formed snapshot");
        assert!(other.is_empty());
    }

    #[test]
    fn malformed_snapshots_error_and_leave_state_intact() {
        let mut log = ReplicatedLog::new();
        log.apply(&txn(1, b"a"));
        log.apply(&txn(2, b"b"));
        let good = log.snapshot();

        let mut victim = ReplicatedLog::new();
        victim.apply(&txn(9, b"prior"));
        let prior = victim.entries().to_vec();

        // Truncated header.
        assert_eq!(
            victim.install(&good[..3]),
            Err(SnapshotError::Truncated { expected: 0, decoded: 0 })
        );
        // Truncated mid-entry: the second entry's bytes are cut short.
        assert_eq!(
            victim.install(&good[..good.len() - 1]),
            Err(SnapshotError::Truncated { expected: 2, decoded: 1 })
        );
        // Trailing garbage after the promised entries.
        let mut trailing = good.clone();
        trailing.extend_from_slice(b"xx");
        assert_eq!(victim.install(&trailing), Err(SnapshotError::TrailingBytes { excess: 2 }));
        // A header promising far more entries than the bytes hold.
        let mut hungry = good.clone();
        hungry[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(victim.install(&hungry), Err(SnapshotError::Truncated { .. })));

        assert_eq!(victim.entries(), prior, "failed install mutated state");
        victim.install(&good).expect("good snapshot still installs");
        assert_eq!(victim.entries(), log.entries());
    }

    #[test]
    fn hash_distinguishes_payloads() {
        assert_ne!(payload_hash(b"a"), payload_hash(b"b"));
        assert_ne!(payload_hash(b""), payload_hash(b"\0"));
    }
}
