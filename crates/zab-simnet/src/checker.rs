//! The PO-atomic-broadcast correctness checker.
//!
//! Checks the safety properties of the paper (§4) over the applied logs of
//! all nodes. Because the simulated application state is the full applied
//! sequence (see [`crate::app`]), the checks are exact even across SNAP
//! synchronizations:
//!
//! - **Total order / agreement (safety part)**: any two applied logs are
//!   prefix-compatible and agree on payloads at equal zxids.
//! - **PO delivery order**: each log is strictly ascending by zxid. With
//!   ZooKeeper zxids this implies *local primary order* (same-epoch
//!   transactions deliver in counter order) and *global primary order*
//!   (earlier-epoch transactions never deliver after later-epoch ones).
//! - **Epoch contiguity** (local primary order, gap part): within an
//!   epoch, delivered counters are contiguous starting at 1 — a primary's
//!   k-th change never commits unless changes 1..k-1 did.
//! - **Integrity / no duplication**: every applied payload hash was
//!   broadcast by a client, and no zxid appears twice in one log.

use crate::app::Applied;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use zab_core::ServerId;

/// A safety violation found by the checker. Any of these failing means the
/// implementation broke PO atomic broadcast — they are bugs, never
/// tolerable outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckerError {
    /// Two nodes' applied logs disagree at some position.
    Divergence {
        /// First node.
        a: ServerId,
        /// Second node.
        b: ServerId,
        /// Index of the first disagreement.
        index: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// A node applied transactions out of zxid order.
    OutOfOrder {
        /// The node.
        node: ServerId,
        /// Index of the offending entry.
        index: usize,
    },
    /// Counters within an epoch have a gap or do not start at 1.
    EpochGap {
        /// The node.
        node: ServerId,
        /// Index of the offending entry.
        index: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// The same zxid was applied twice by one node.
    Duplicate {
        /// The node.
        node: ServerId,
        /// Index of the second occurrence.
        index: usize,
    },
    /// A node applied a payload no client ever submitted.
    ForeignPayload {
        /// The node.
        node: ServerId,
        /// Index of the offending entry.
        index: usize,
    },
}

impl fmt::Display for CheckerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckerError::Divergence { a, b, index, detail } => {
                write!(f, "divergence between {a} and {b} at index {index}: {detail}")
            }
            CheckerError::OutOfOrder { node, index } => {
                write!(f, "{node} applied out of zxid order at index {index}")
            }
            CheckerError::EpochGap { node, index, detail } => {
                write!(f, "{node} epoch-counter gap at index {index}: {detail}")
            }
            CheckerError::Duplicate { node, index } => {
                write!(f, "{node} applied a duplicate zxid at index {index}")
            }
            CheckerError::ForeignPayload { node, index } => {
                write!(f, "{node} applied a never-broadcast payload at index {index}")
            }
        }
    }
}

impl Error for CheckerError {}

/// Checks one node's applied log in isolation.
pub fn check_local(
    node: ServerId,
    log: &[Applied],
    broadcast_hashes: Option<&BTreeSet<u64>>,
) -> Result<(), CheckerError> {
    for (i, pair) in log.windows(2).enumerate() {
        if pair[1].zxid <= pair[0].zxid {
            if pair[1].zxid == pair[0].zxid {
                return Err(CheckerError::Duplicate { node, index: i + 1 });
            }
            return Err(CheckerError::OutOfOrder { node, index: i + 1 });
        }
    }
    // Epoch contiguity: counters within each epoch are 1,2,3,... in order.
    let mut prev: Option<zab_core::Zxid> = None;
    for (i, e) in log.iter().enumerate() {
        let z = e.zxid;
        match prev {
            Some(p) if p.epoch() == z.epoch() => {
                if z.counter() != p.counter() + 1 {
                    return Err(CheckerError::EpochGap {
                        node,
                        index: i,
                        detail: format!("{} follows {}", z, p),
                    });
                }
            }
            _ => {
                if z.counter() != 1 {
                    return Err(CheckerError::EpochGap {
                        node,
                        index: i,
                        detail: format!("epoch {} starts at counter {}", z.epoch(), z.counter()),
                    });
                }
            }
        }
        prev = Some(z);
    }
    if let Some(known) = broadcast_hashes {
        for (i, e) in log.iter().enumerate() {
            if !known.contains(&e.hash) {
                return Err(CheckerError::ForeignPayload { node, index: i });
            }
        }
    }
    Ok(())
}

/// Checks that `a`'s and `b`'s logs are prefix-compatible and agree on
/// content.
pub fn check_pairwise(
    (a, log_a): (ServerId, &[Applied]),
    (b, log_b): (ServerId, &[Applied]),
) -> Result<(), CheckerError> {
    let n = log_a.len().min(log_b.len());
    for i in 0..n {
        if log_a[i].zxid != log_b[i].zxid {
            return Err(CheckerError::Divergence {
                a,
                b,
                index: i,
                detail: format!("zxid {} vs {}", log_a[i].zxid, log_b[i].zxid),
            });
        }
        if log_a[i].hash != log_b[i].hash {
            return Err(CheckerError::Divergence {
                a,
                b,
                index: i,
                detail: format!("payloads differ at zxid {}", log_a[i].zxid),
            });
        }
    }
    Ok(())
}

/// Runs all checks over every node's applied log.
///
/// `broadcast_hashes`, when provided, enables the integrity check.
pub fn check_all(
    logs: &[(ServerId, &[Applied])],
    broadcast_hashes: Option<&BTreeSet<u64>>,
) -> Result<(), CheckerError> {
    for &(node, log) in logs {
        check_local(node, log, broadcast_hashes)?;
    }
    for (i, &a) in logs.iter().enumerate() {
        for &b in &logs[i + 1..] {
            check_pairwise(a, b)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zab_core::{Epoch, Zxid};

    fn e(ep: u32, c: u32, h: u64) -> Applied {
        Applied { zxid: Zxid::new(Epoch(ep), c), hash: h }
    }

    #[test]
    fn clean_logs_pass() {
        let a = vec![e(1, 1, 10), e(1, 2, 20), e(2, 1, 30)];
        let b = vec![e(1, 1, 10), e(1, 2, 20)];
        check_all(&[(ServerId(1), &a), (ServerId(2), &b)], None).unwrap();
    }

    #[test]
    fn divergent_content_detected() {
        let a = vec![e(1, 1, 10)];
        let b = vec![e(1, 1, 99)];
        let err = check_all(&[(ServerId(1), &a), (ServerId(2), &b)], None).unwrap_err();
        assert!(matches!(err, CheckerError::Divergence { .. }));
    }

    #[test]
    fn divergent_zxids_detected() {
        let a = vec![e(1, 1, 10), e(1, 2, 20)];
        let b = vec![e(1, 1, 10), e(2, 1, 20)];
        let err = check_all(&[(ServerId(1), &a), (ServerId(2), &b)], None).unwrap_err();
        assert!(matches!(err, CheckerError::Divergence { index: 1, .. }));
    }

    #[test]
    fn out_of_order_detected() {
        let a = vec![e(1, 2, 10), e(1, 1, 20)];
        let err = check_local(ServerId(1), &a, None).unwrap_err();
        assert!(matches!(err, CheckerError::OutOfOrder { index: 1, .. }));
    }

    #[test]
    fn duplicate_detected() {
        let a = vec![e(1, 1, 10), e(1, 1, 10)];
        let err = check_local(ServerId(1), &a, None).unwrap_err();
        assert!(matches!(err, CheckerError::Duplicate { index: 1, .. }));
    }

    #[test]
    fn epoch_gap_detected() {
        let a = vec![e(1, 1, 10), e(1, 3, 20)];
        let err = check_local(ServerId(1), &a, None).unwrap_err();
        assert!(matches!(err, CheckerError::EpochGap { index: 1, .. }));
    }

    #[test]
    fn epoch_not_starting_at_one_detected() {
        let a = vec![e(1, 1, 10), e(2, 2, 20)];
        let err = check_local(ServerId(1), &a, None).unwrap_err();
        assert!(matches!(err, CheckerError::EpochGap { index: 1, .. }));
    }

    #[test]
    fn foreign_payload_detected() {
        let a = vec![e(1, 1, 10)];
        let known: BTreeSet<u64> = [20u64].into_iter().collect();
        let err = check_local(ServerId(1), &a, Some(&known)).unwrap_err();
        assert!(matches!(err, CheckerError::ForeignPayload { index: 0, .. }));
    }

    #[test]
    fn later_epoch_after_earlier_is_fine_with_counter_reset() {
        let a = vec![e(1, 1, 1), e(1, 2, 2), e(3, 1, 3), e(3, 2, 4)];
        check_local(ServerId(1), &a, None).unwrap();
    }
}
