//! The discrete-event simulation engine.
//!
//! See the crate docs for what is modeled. The engine is strictly
//! deterministic: a seed fully determines a run, including fault timing,
//! link latencies, and event tie-breaking (events are ordered by
//! `(time, sequence-number)`).

use crate::app::{payload_hash, ReplicatedLog};
use crate::checker::{check_all, CheckerError};
use crate::stats::{OpRecord, SimStats};
use crate::workload::{op_id_of, op_payload, ClosedLoopSpec, OpenLoopSpec};
use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;
use zab_core::{
    Action, ClusterConfig, CoreMetrics, Input, Message, PersistToken, ServerId, Topology, Zab,
};
use zab_election::{Election, ElectionAction, ElectionConfig, ElectionInput, Notification, Vote};
use zab_log::{FaultOp, FaultPlan, LogMetrics, MemStorage, Storage};
use zab_metrics::{Clock, Gauge, ManualClock, Registry};
use zab_trace::{Recorder, Stage, TraceEvent, Tracer};

/// What travels on a simulated link.
#[derive(Debug, Clone)]
pub enum Wire {
    /// A Zab protocol message.
    Zab(Message),
    /// A Fast Leader Election notification.
    Election(Notification),
}

/// Event kinds, exposed for trace inspection in tests.
#[derive(Debug, Clone)]
pub enum SimEventKind {
    /// Periodic clock tick for one node.
    Tick { node: ServerId, incarnation: u64 },
    /// Message arrival.
    Deliver { from: ServerId, to: ServerId, wire: Wire, link_epoch: u64, size: usize },
    /// A disk flush completed.
    FlushDone { node: ServerId, incarnation: u64 },
    /// A TCP-level disconnect notice.
    Disconnect { node: ServerId, peer: ServerId },
    /// The workload issues (or re-issues) an operation.
    Issue { op_id: u64 },
    /// The workload checks an operation for timeout.
    OpTimeout { op_id: u64 },
}

struct EventEntry {
    time_us: u64,
    seq: u64,
    kind: SimEventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time_us == other.time_us && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.time_us, other.seq).cmp(&(self.time_us, self.seq))
    }
}

/// A simulated process: storage + election + protocol automaton + app.
struct Node {
    up: bool,
    /// Fail-stopped on a storage error: protocol participation halted
    /// (no acking, no leading) but the applied state keeps serving reads.
    faulted: bool,
    incarnation: u64,
    storage: MemStorage,
    election: Option<Election>,
    zab: Option<Zab>,
    app: ReplicatedLog,
    /// Disk: tokens applied but not yet covered by a started flush.
    pending_tokens: Vec<PersistToken>,
    /// Max token covered by the in-flight flush, if one is running.
    flushing_token: Option<PersistToken>,
    /// Deliveries since the last log compaction.
    delivered_since_compact: u64,
    /// Per-incarnation metrics registry (replaced on every boot, so
    /// counters describe the current incarnation only). Latency
    /// histograms use a [`ManualClock`] pinned at zero — metric values
    /// stay fully deterministic.
    metrics: Arc<Registry>,
    /// Cached `node.commits_delivered` gauge: total applied entries,
    /// whether delivered by the protocol or installed via snapshot.
    commits_delivered: Arc<Gauge>,
    /// Flight recorder, timed by the shared virtual-time clock. Unlike
    /// the metrics registry it is *not* reset on reboot: a chaos dump
    /// should show what the node was doing before it crashed.
    recorder: Arc<Recorder>,
}

enum LocalInput {
    Zab(Input),
    Election(ElectionInput),
}

/// Closed- or open-loop workload state.
enum Workload {
    Closed(ClosedLoopSpec),
    Open(OpenLoopSpec),
}

/// Only injected I/O errors are tolerable storage failures; a `Corrupt`
/// error from the simulated store means the protocol wrote out of order —
/// an implementation bug that must fail the run loudly, not degrade.
fn assert_io_fault(e: &zab_log::StorageError) {
    assert!(
        matches!(e, zab_log::StorageError::Io(_)),
        "simulated storage rejected a protocol write (implementation bug): {e}"
    );
}

/// Configures and builds a [`Sim`].
#[derive(Debug, Clone)]
pub struct SimBuilder {
    n: u64,
    seed: u64,
    latency_us: (u64, u64),
    egress_bytes_per_us: Option<f64>,
    flush_latency_us: u64,
    tick_interval_us: u64,
    disconnect_detect_us: u64,
    max_outstanding: usize,
    snap_threshold: u64,
    ping_interval_ms: u64,
    follower_timeout_ms: u64,
    leader_timeout_ms: u64,
    compact_every: Option<u64>,
    sync_rate_bytes_per_sec: Option<u64>,
    trace_capacity: usize,
    topology: Topology,
}

impl SimBuilder {
    /// A cluster of `n` servers with LAN-like defaults: 100–200 µs one-way
    /// latency, 1 Gb/s (125 B/µs) node egress, 1 ms disk flush.
    pub fn new(n: u64) -> SimBuilder {
        SimBuilder {
            n,
            seed: 42,
            latency_us: (100, 200),
            egress_bytes_per_us: Some(125.0),
            flush_latency_us: 1_000,
            tick_interval_us: 1_000,
            disconnect_detect_us: 10_000,
            max_outstanding: 1000,
            snap_threshold: 100_000,
            ping_interval_ms: 50,
            follower_timeout_ms: 400,
            leader_timeout_ms: 400,
            compact_every: None,
            sync_rate_bytes_per_sec: None,
            trace_capacity: 4096,
            topology: Topology::Star,
        }
    }

    /// RNG seed; a seed fully determines the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// One-way link latency range in microseconds (uniform).
    pub fn latency_us(mut self, min: u64, max: u64) -> Self {
        assert!(min <= max);
        self.latency_us = (min, max);
        self
    }

    /// Node egress bandwidth in bytes/µs (`None` = infinite).
    pub fn egress_bandwidth(mut self, bytes_per_us: Option<f64>) -> Self {
        self.egress_bytes_per_us = bytes_per_us;
        self
    }

    /// Disk flush latency in microseconds.
    pub fn flush_latency_us(mut self, us: u64) -> Self {
        self.flush_latency_us = us;
        self
    }

    /// Leader pipelining window (the paper's outstanding-transactions knob).
    pub fn max_outstanding(mut self, n: usize) -> Self {
        self.max_outstanding = n;
        self
    }

    /// DIFF-vs-SNAP threshold (transactions).
    pub fn snap_threshold(mut self, n: u64) -> Self {
        self.snap_threshold = n;
        self
    }

    /// Compact the log into a snapshot every `k` deliveries per node
    /// (ZooKeeper's periodic snapshotting); `None` disables.
    pub fn compact_every(mut self, k: Option<u64>) -> Self {
        self.compact_every = k;
        self
    }

    /// Catch-up sync shipping budget in bytes/second shared by all
    /// concurrent syncs (0 disables pacing); `None` keeps the
    /// [`ClusterConfig`] default.
    pub fn sync_rate(mut self, bytes_per_sec: u64) -> Self {
        self.sync_rate_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// Flight-recorder capacity per node, in events (bounded memory; the
    /// ring overwrites the oldest events once full).
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events.max(1);
        self
    }

    /// Broadcast dissemination topology (default [`Topology::Star`]).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Failure-detection timeouts, in milliseconds.
    pub fn timeouts_ms(mut self, follower: u64, leader: u64, ping: u64) -> Self {
        self.follower_timeout_ms = follower;
        self.leader_timeout_ms = leader;
        self.ping_interval_ms = ping;
        self
    }

    /// Builds the simulator and boots every node (storage empty, elections
    /// begin at t=0).
    pub fn build(self) -> Sim {
        let ids: Vec<ServerId> = (1..=self.n).map(ServerId).collect();
        let mut cluster = ClusterConfig::majority(ids.clone());
        cluster.max_outstanding = self.max_outstanding;
        cluster.snap_threshold = self.snap_threshold;
        cluster.ping_interval_ms = self.ping_interval_ms;
        cluster.follower_timeout_ms = self.follower_timeout_ms;
        cluster.leader_timeout_ms = self.leader_timeout_ms;
        if let Some(rate) = self.sync_rate_bytes_per_sec {
            cluster.sync_rate_bytes_per_sec = rate;
        }
        cluster.topology = self.topology;
        let election_cfg = ElectionConfig::new(ids.clone());
        let trace_clock = Arc::new(ManualClock::new());
        let mut sim = Sim {
            cfg: self.clone(),
            cluster,
            election_cfg,
            now_us: 0,
            seq: 0,
            events: BinaryHeap::new(),
            nodes: BTreeMap::new(),
            groups: ids.iter().map(|&id| (id, 0)).collect(),
            link_epochs: BTreeMap::new(),
            link_last_arrival: BTreeMap::new(),
            egress_free: ids.iter().map(|&id| (id, 0)).collect(),
            egress_bytes: ids.iter().map(|&id| (id, 0)).collect(),
            rng: ChaCha8Rng::seed_from_u64(self.seed),
            stats: SimStats::default(),
            broadcast_hashes: BTreeSet::new(),
            workload: None,
            wl_next_op: 0,
            wl_issued: 0,
            wl_in_flight: BTreeMap::new(),
            message_loss: 0.0,
            clock_skew_ms: BTreeMap::new(),
            trace_clock: Arc::clone(&trace_clock),
        };
        for &id in &ids {
            let registry = Arc::new(Registry::new());
            let commits_delivered = registry.gauge("node.commits_delivered");
            let recorder = Recorder::new(
                id.0,
                self.trace_capacity,
                Arc::clone(&trace_clock) as Arc<dyn Clock>,
            );
            sim.nodes.insert(
                id,
                Node {
                    up: true,
                    faulted: false,
                    incarnation: 0,
                    storage: MemStorage::new(),
                    election: None,
                    zab: None,
                    app: ReplicatedLog::new(),
                    pending_tokens: Vec::new(),
                    flushing_token: None,
                    delivered_since_compact: 0,
                    metrics: registry,
                    commits_delivered,
                    recorder,
                },
            );
        }
        for &id in &ids {
            sim.boot_node(id);
        }
        sim
    }
}

/// The deterministic cluster simulator. Construct via [`SimBuilder`].
pub struct Sim {
    cfg: SimBuilder,
    cluster: ClusterConfig,
    election_cfg: ElectionConfig,
    now_us: u64,
    seq: u64,
    events: BinaryHeap<EventEntry>,
    nodes: BTreeMap<ServerId, Node>,
    /// Partition group per node; connected iff equal groups.
    groups: BTreeMap<ServerId, u32>,
    /// Per ordered pair: connection incarnation (bumped on any cut).
    link_epochs: BTreeMap<(ServerId, ServerId), u64>,
    /// Per ordered pair: last scheduled arrival (FIFO enforcement).
    link_last_arrival: BTreeMap<(ServerId, ServerId), u64>,
    /// Per node: when its NIC egress becomes free.
    egress_free: BTreeMap<ServerId, u64>,
    /// Per node: total protocol bytes pushed onto its NIC (the quantity
    /// the relay tree is supposed to flatten at the leader).
    egress_bytes: BTreeMap<ServerId, u64>,
    rng: ChaCha8Rng,
    stats: SimStats,
    /// Payload hashes of everything clients submitted (for the checker).
    broadcast_hashes: BTreeSet<u64>,
    workload: Option<Workload>,
    wl_next_op: u64,
    wl_issued: u64,
    /// op id → issue time.
    wl_in_flight: BTreeMap<u64, u64>,
    /// Probability each sent message is silently dropped in flight.
    message_loss: f64,
    /// Per-node clock offset applied to every `now_ms` it observes.
    clock_skew_ms: BTreeMap<ServerId, i64>,
    /// Virtual-time clock every flight recorder reads: advanced in
    /// lockstep with `now_us`, so trace timestamps are deterministic.
    trace_clock: Arc<ManualClock>,
}

impl Sim {
    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Ensemble member ids.
    pub fn members(&self) -> Vec<ServerId> {
        self.nodes.keys().copied().collect()
    }

    /// Collected statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The established leader with the highest epoch, if any.
    pub fn leader(&self) -> Option<ServerId> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.up)
            .filter_map(|(&id, n)| match &n.zab {
                Some(Zab::Leader(l)) if l.is_established() => Some((l.epoch(), id)),
                _ => None,
            })
            .max()
            .map(|(_, id)| id)
    }

    /// The applied log of a node.
    pub fn applied_log(&self, id: ServerId) -> &[crate::app::Applied] {
        self.nodes[&id].app.entries()
    }

    /// A point-in-time snapshot of a node's metrics registry. The
    /// registry is rebuilt on every (re)boot, so the figures describe
    /// the node's current incarnation only.
    pub fn node_metrics(&self, id: ServerId) -> zab_metrics::Snapshot {
        self.nodes[&id].metrics.snapshot()
    }

    /// Total protocol bytes this node has pushed onto its NIC since the
    /// simulation started (crashes do not reset it).
    pub fn egress_bytes(&self, id: ServerId) -> u64 {
        self.egress_bytes.get(&id).copied().unwrap_or(0)
    }

    /// The node's view of the dissemination tree: `(relay, members)`
    /// pairs — the full plan on the leader, the node's own group on a
    /// relay follower, empty on a leaf / star / down node.
    pub fn relay_topology(&self, id: ServerId) -> Vec<(ServerId, Vec<ServerId>)> {
        match &self.nodes[&id].zab {
            Some(zab) => zab.relay_topology(),
            None => Vec::new(),
        }
    }

    /// A snapshot of a node's flight recorder. Unlike the metrics
    /// registry the recorder survives crashes and reboots, so the trace
    /// covers every incarnation (timed by deterministic virtual time).
    pub fn trace_events(&self, id: ServerId) -> Vec<TraceEvent> {
        self.nodes[&id].recorder.snapshot()
    }

    /// A node's flight recorder (for capacity/drop introspection).
    pub fn trace_recorder(&self, id: ServerId) -> Arc<Recorder> {
        Arc::clone(&self.nodes[&id].recorder)
    }

    /// Runs until `deadline_us`, or the event queue empties.
    pub fn run_until(&mut self, deadline_us: u64) {
        while let Some(e) = self.events.peek() {
            if e.time_us > deadline_us {
                break;
            }
            let e = self.events.pop().expect("peeked");
            self.now_us = e.time_us;
            self.trace_clock.set_micros(self.now_us);
            self.process_event(e.kind);
        }
        self.now_us = self.now_us.max(deadline_us);
        self.trace_clock.set_micros(self.now_us);
    }

    /// Runs for `dur_us` of virtual time.
    pub fn run_for(&mut self, dur_us: u64) {
        let deadline = self.now_us + dur_us;
        self.run_until(deadline);
    }

    /// Runs until an established leader exists (checking at 1 ms
    /// granularity); returns it, or `None` if `deadline_us` passes first.
    pub fn run_until_leader(&mut self, deadline_us: u64) -> Option<ServerId> {
        loop {
            if let Some(l) = self.leader() {
                return Some(l);
            }
            if self.now_us >= deadline_us || self.events.is_empty() {
                return None;
            }
            let step = (self.now_us + 1_000).min(deadline_us);
            self.run_until(step);
        }
    }

    /// Runs until the workload completed `target` operations (checking at
    /// 1 ms granularity); returns false if `deadline_us` passes first.
    pub fn run_until_completed(&mut self, target: u64, deadline_us: u64) -> bool {
        loop {
            if self.stats.ops.len() as u64 >= target {
                return true;
            }
            if self.now_us >= deadline_us || self.events.is_empty() {
                return false;
            }
            let step = (self.now_us + 1_000).min(deadline_us);
            self.run_until(step);
        }
    }

    /// Submits one client operation to `node` (tests and fault scenarios;
    /// benches use workloads).
    pub fn submit(&mut self, node: ServerId, data: Vec<u8>) {
        self.broadcast_hashes.insert(payload_hash(&data));
        self.feed(node, LocalInput::Zab(Input::ClientRequest { data: Bytes::from(data) }));
    }

    /// Installs a closed-loop workload and schedules its first issues.
    pub fn install_closed_loop(&mut self, spec: ClosedLoopSpec) {
        self.workload = Some(Workload::Closed(spec));
        self.wl_next_op = 0;
        self.wl_issued = 0;
        for _ in 0..spec.clients.min(spec.total_ops as usize) {
            let op = self.wl_next_op;
            self.wl_next_op += 1;
            self.schedule(0, SimEventKind::Issue { op_id: op });
        }
    }

    /// Stops the installed workload: nothing further is issued, pending
    /// issue/timeout events become no-ops, and already-committed operations
    /// drain normally. Used by the chaos engine so the cluster can quiesce
    /// before the final convergence check.
    pub fn stop_workload(&mut self) {
        self.workload = None;
        self.wl_in_flight.clear();
    }

    /// Installs an open-loop workload and schedules every issue up front.
    pub fn install_open_loop(&mut self, spec: OpenLoopSpec) {
        self.workload = Some(Workload::Open(spec));
        self.wl_next_op = spec.total_ops;
        for op in 0..spec.total_ops {
            self.schedule(op * spec.interval_us, SimEventKind::Issue { op_id: op });
        }
    }

    /// Crashes a node: unflushed writes are lost; peers notice after the
    /// detection delay.
    pub fn crash(&mut self, id: ServerId) {
        let node = self.nodes.get_mut(&id).expect("known node");
        if !node.up {
            return;
        }
        node.up = false;
        node.faulted = false;
        node.incarnation += 1;
        node.storage.crash();
        node.zab = None;
        node.election = None;
        node.pending_tokens.clear();
        node.flushing_token = None;
        let peers: Vec<ServerId> = self.nodes.keys().copied().filter(|&p| p != id).collect();
        for p in peers {
            self.cut_link(id, p);
        }
    }

    /// Restarts a crashed node: recover storage, rejoin via election.
    pub fn restart(&mut self, id: ServerId) {
        let node = self.nodes.get_mut(&id).expect("known node");
        if node.up {
            return;
        }
        node.up = true;
        node.app = ReplicatedLog::new();
        self.boot_node(id);
    }

    /// Partitions the ensemble: `groups[i]` lists the members of group `i`;
    /// unlisted nodes form their own singleton groups.
    pub fn partition(&mut self, groups: &[&[u64]]) {
        let mut assignment: BTreeMap<ServerId, u32> = BTreeMap::new();
        for (gi, members) in groups.iter().enumerate() {
            for &m in *members {
                assignment.insert(ServerId(m), gi as u32);
            }
        }
        let mut next = groups.len() as u32;
        let ids: Vec<ServerId> = self.nodes.keys().copied().collect();
        for id in &ids {
            assignment.entry(*id).or_insert_with(|| {
                let g = next;
                next += 1;
                g
            });
        }
        // Cut every pair that the new assignment separates.
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let was = self.groups[&a] == self.groups[&b];
                let is = assignment[&a] == assignment[&b];
                if was && !is {
                    self.cut_link(a, b);
                    self.cut_link(b, a);
                }
            }
        }
        self.groups = assignment;
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        let ids: Vec<ServerId> = self.nodes.keys().copied().collect();
        self.groups = ids.into_iter().map(|id| (id, 0)).collect();
    }

    /// Sets the probability that any sent message is silently dropped in
    /// flight (on top of partitions/crashes). `0.0` disables loss and
    /// consumes no randomness, so loss-free runs keep their event streams.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_message_loss(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range: {p}");
        self.message_loss = p;
    }

    /// Skews one node's clock by `skew_ms` (positive = ahead). Applied to
    /// every `now_ms` the node's automata observe; safety must hold under
    /// arbitrary skew (all timeout arithmetic saturates).
    pub fn set_clock_skew_ms(&mut self, id: ServerId, skew_ms: i64) {
        assert!(self.nodes.contains_key(&id), "unknown node {id:?}");
        self.clock_skew_ms.insert(id, skew_ms);
    }

    /// Clears all clock skews (clocks return to simulated real time).
    pub fn clear_clock_skews(&mut self) {
        self.clock_skew_ms.clear();
    }

    /// Arms a one-shot storage fault on `id`: the next operation of kind
    /// `op` against its log fails with an injected I/O error, fail-stopping
    /// the node (see [`Sim::is_faulted`]).
    pub fn arm_disk_fault(&mut self, id: ServerId, op: FaultOp) {
        let node = self.nodes.get_mut(&id).expect("known node");
        match node.storage.faults_mut() {
            Some(plan) => plan.arm(op),
            None => {
                let mut plan = FaultPlan::new();
                plan.arm(op);
                node.storage.set_faults(Some(plan));
            }
        }
    }

    /// Removes any injected-fault schedule from `id`'s storage.
    pub fn clear_disk_faults(&mut self, id: ServerId) {
        self.nodes.get_mut(&id).expect("known node").storage.set_faults(None);
    }

    /// True if `id` fail-stopped on a storage error (up, serving reads,
    /// but out of the protocol until crashed + restarted).
    pub fn is_faulted(&self, id: ServerId) -> bool {
        self.nodes[&id].faulted
    }

    /// True if `id` is running (not crashed).
    pub fn is_up(&self, id: ServerId) -> bool {
        self.nodes[&id].up
    }

    /// Runs the full PO-atomic-broadcast safety checker.
    ///
    /// # Errors
    ///
    /// Returns the first [`CheckerError`] found; any error is an
    /// implementation bug.
    pub fn check_invariants(&self) -> Result<(), CheckerError> {
        let logs: Vec<(ServerId, &[crate::app::Applied])> =
            self.nodes.iter().map(|(&id, n)| (id, n.app.entries())).collect();
        check_all(&logs, Some(&self.broadcast_hashes))
    }

    /// Asserts that all *up* nodes converged to identical applied logs
    /// (run after healing + settling).
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence in lengths.
    pub fn check_converged(&self) -> Result<(), String> {
        let lens: BTreeMap<ServerId, usize> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.up && !n.faulted)
            .map(|(&id, n)| (id, n.app.len()))
            .collect();
        let mut values: Vec<usize> = lens.values().copied().collect();
        values.dedup();
        if values.len() > 1 {
            return Err(format!("applied-log lengths diverge: {lens:?}"));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Engine internals
    // ------------------------------------------------------------------

    fn schedule(&mut self, delay_us: u64, kind: SimEventKind) {
        self.seq += 1;
        self.events.push(EventEntry { time_us: self.now_us + delay_us, seq: self.seq, kind });
    }

    /// The wall clock as observed by `id`: simulated time plus the node's
    /// injected skew (clamped at zero).
    fn node_now_ms(&self, id: ServerId) -> u64 {
        let base = (self.now_us / 1_000) as i64;
        let skew = self.clock_skew_ms.get(&id).copied().unwrap_or(0);
        base.saturating_add(skew).max(0) as u64
    }

    /// Fail-stops `id` after a storage error: counts the fault and halts
    /// protocol participation. The applied state stays readable; recovery
    /// requires a crash + restart (operator intervention in real life).
    fn storage_fault(&mut self, id: ServerId) {
        self.stats.storage_faults += 1;
        let node = self.nodes.get_mut(&id).expect("known node");
        node.faulted = true;
        node.zab = None;
        node.election = None;
        node.pending_tokens.clear();
        node.flushing_token = None;
    }

    fn boot_node(&mut self, id: ServerId) {
        let now_ms = self.node_now_ms(id);
        let node = self.nodes.get_mut(&id).expect("known node");
        // Fresh registry per incarnation: counters describe this boot
        // only, so survivors' figures are comparable after a chaos run.
        node.metrics = Arc::new(Registry::new());
        node.commits_delivered = node.metrics.gauge("node.commits_delivered");
        // Latency histograms share the virtual-time clock; storage calls
        // are synchronous (virtual time never advances inside them), so
        // recorded latencies stay a deterministic zero.
        node.storage.set_metrics(
            LogMetrics::registered(&node.metrics)
                .with_clock(Arc::clone(&self.trace_clock) as Arc<dyn Clock>)
                .with_tracer(Tracer::new(Arc::clone(&node.recorder))),
        );
        let rec = node.storage.recover().expect("mem storage recovers");
        let vote =
            Vote { peer_epoch: rec.current_epoch, last_zxid: rec.history.last_zxid(), leader: id };
        let (election, acts) = Election::new(id, self.election_cfg.clone(), vote, now_ms);
        node.election = Some(election);
        let incarnation = node.incarnation;
        self.stats.elections_started += 1;
        self.route_election_actions(id, acts);
        self.schedule(self.cfg.tick_interval_us, SimEventKind::Tick { node: id, incarnation });
    }

    fn connected(&self, a: ServerId, b: ServerId) -> bool {
        self.nodes[&a].up && self.nodes[&b].up && self.groups[&a] == self.groups[&b]
    }

    fn cut_link(&mut self, a: ServerId, b: ServerId) {
        *self.link_epochs.entry((a, b)).or_insert(0) += 1;
        *self.link_epochs.entry((b, a)).or_insert(0) += 1;
        // The surviving endpoints learn of the broken connection after the
        // detection delay (TCP reset / keepalive).
        self.schedule(self.cfg.disconnect_detect_us, SimEventKind::Disconnect { node: b, peer: a });
        self.schedule(self.cfg.disconnect_detect_us, SimEventKind::Disconnect { node: a, peer: b });
    }

    /// The zxid a wire message is traced under: only the per-transaction
    /// broadcast path (Propose / Ack / Commit), mirroring the real
    /// transport — heartbeats, election, and sync streams would drown
    /// the per-transaction timelines.
    fn traced_zxid(wire: &Wire) -> Option<u64> {
        match wire {
            Wire::Zab(Message::Propose { txn, .. }) => Some(txn.zxid.0),
            Wire::Zab(Message::Ack { zxid }) | Wire::Zab(Message::Commit { zxid }) => Some(zxid.0),
            _ => None,
        }
    }

    fn wire_size(wire: &Wire) -> usize {
        const FRAME: usize = 8;
        let body = match wire {
            Wire::Election(_) => 29,
            Wire::Zab(msg) => match msg {
                Message::FollowerInfo { .. } | Message::AckEpoch { .. } => 13,
                Message::NewEpoch { .. } | Message::NewLeader { .. } => 5,
                Message::AckNewLeader { .. } => 13,
                Message::UpToDate { .. }
                | Message::Ack { .. }
                | Message::Commit { .. }
                | Message::Ping { .. }
                | Message::Pong { .. }
                | Message::SyncAck { .. } => 9,
                // tag + watermark + zxid + len prefix + payload.
                Message::Propose { txn, .. } => 21 + txn.data.len(),
                Message::SyncDiff { txns } => {
                    5 + txns.iter().map(|t| 12 + t.data.len()).sum::<usize>()
                }
                Message::SyncTrunc { txns, .. } => {
                    13 + txns.iter().map(|t| 12 + t.data.len()).sum::<usize>()
                }
                Message::SyncSnap { snapshot, txns, .. } => {
                    13 + snapshot.len() + txns.iter().map(|t| 12 + t.data.len()).sum::<usize>()
                }
                // tag + len prefix + verbatim inner frame.
                Message::Forward { inner } => 5 + inner.len(),
                // tag + count prefix + member ids.
                Message::RelayAssign { members } => 5 + 8 * members.len(),
            },
        };
        FRAME + body
    }

    fn send(&mut self, from: ServerId, to: ServerId, wire: Wire) {
        if !self.connected(from, to) {
            self.stats.messages_dropped += 1;
            return;
        }
        // Random in-flight loss, independent of topology. The draw only
        // happens with loss enabled so loss-free seeds are unperturbed.
        // Zab assumes reliable FIFO channels (TCP): a segment loss that
        // exhausts retransmission kills the connection, so a dropped
        // message here is modeled as a connection reset — otherwise a
        // follower could silently miss a proposal yet keep the session,
        // stalling behind a gap forever.
        if self.message_loss > 0.0 && self.rng.gen_bool(self.message_loss) {
            self.stats.messages_dropped += 1;
            self.cut_link(from, to);
            return;
        }
        if let Some(zxid) = Self::traced_zxid(&wire) {
            self.nodes[&from].recorder.record(Stage::WireOut, zxid, to.0);
        }
        let size = Self::wire_size(&wire);
        *self.egress_bytes.entry(from).or_insert(0) += size as u64;
        let start = self.now_us.max(self.egress_free[&from]);
        let ser_us = match self.cfg.egress_bytes_per_us {
            Some(bw) => (size as f64 / bw).ceil() as u64,
            None => 0,
        };
        let egress_done = start + ser_us;
        self.egress_free.insert(from, egress_done);
        let (lo, hi) = self.cfg.latency_us;
        let latency = if hi > lo { self.rng.gen_range(lo..=hi) } else { lo };
        let mut arrival = egress_done + latency;
        // FIFO per link: arrivals never reorder.
        let last = self.link_last_arrival.entry((from, to)).or_insert(0);
        if arrival <= *last {
            arrival = *last + 1;
        }
        *last = arrival;
        let link_epoch = *self.link_epochs.entry((from, to)).or_insert(0);
        self.seq += 1;
        self.events.push(EventEntry {
            time_us: arrival,
            seq: self.seq,
            kind: SimEventKind::Deliver { from, to, wire, link_epoch, size },
        });
    }

    fn process_event(&mut self, kind: SimEventKind) {
        match kind {
            SimEventKind::Tick { node, incarnation } => {
                let Some(n) = self.nodes.get(&node) else { return };
                if !n.up || n.faulted || n.incarnation != incarnation {
                    // A faulted node's ticks stop too: a restart boots a
                    // fresh incarnation with its own tick stream.
                    return;
                }
                let now_ms = self.node_now_ms(node);
                self.feed(node, LocalInput::Election(ElectionInput::Tick { now_ms }));
                self.feed(node, LocalInput::Zab(Input::Tick { now_ms }));
                self.schedule(self.cfg.tick_interval_us, SimEventKind::Tick { node, incarnation });
            }
            SimEventKind::Deliver { from, to, wire, link_epoch, size } => {
                let current = *self.link_epochs.get(&(from, to)).unwrap_or(&0);
                if current != link_epoch || !self.connected(from, to) {
                    self.stats.messages_dropped += 1;
                    return;
                }
                self.stats.messages_delivered += 1;
                self.stats.bytes_delivered += size as u64;
                if let Some(zxid) = Self::traced_zxid(&wire) {
                    self.nodes[&to].recorder.record(Stage::WireIn, zxid, from.0);
                }
                match wire {
                    Wire::Zab(msg) => self.feed(to, LocalInput::Zab(Input::Message { from, msg })),
                    Wire::Election(notification) => self.feed(
                        to,
                        LocalInput::Election(ElectionInput::Notification { from, notification }),
                    ),
                }
            }
            SimEventKind::FlushDone { node, incarnation } => {
                let Some(n) = self.nodes.get_mut(&node) else { return };
                if !n.up || n.faulted || n.incarnation != incarnation {
                    return;
                }
                if let Err(e) = n.storage.flush() {
                    // fsync returned EIO: the write-back cache state is
                    // unknowable, so the node fail-stops (no ack is sent
                    // for the covered token).
                    assert_io_fault(&e);
                    self.storage_fault(node);
                    return;
                }
                self.stats.flushes += 1;
                let token = n.flushing_token.take().expect("flush was in flight");
                // Start the next group flush if writes accumulated.
                if !n.pending_tokens.is_empty() {
                    let max = *n.pending_tokens.iter().max().expect("nonempty");
                    n.pending_tokens.clear();
                    n.flushing_token = Some(max);
                    self.schedule(
                        self.cfg.flush_latency_us,
                        SimEventKind::FlushDone { node, incarnation },
                    );
                }
                self.feed(node, LocalInput::Zab(Input::Persisted { token }));
            }
            SimEventKind::Disconnect { node, peer } => {
                let Some(n) = self.nodes.get(&node) else { return };
                if !n.up {
                    return;
                }
                self.feed(node, LocalInput::Zab(Input::PeerDisconnected { peer }));
            }
            SimEventKind::Issue { op_id } => self.workload_issue(op_id),
            SimEventKind::OpTimeout { op_id } => {
                if self.wl_in_flight.contains_key(&op_id) {
                    // Not completed in time (leader died mid-flight):
                    // re-issue.
                    self.workload_issue(op_id);
                }
            }
        }
    }

    /// Feeds a local input to a node's automata, routing resulting actions
    /// (and their cascading local inputs) to completion.
    fn feed(&mut self, id: ServerId, input: LocalInput) {
        let mut inbox: VecDeque<(ServerId, LocalInput)> = VecDeque::new();
        inbox.push_back((id, input));
        while let Some((nid, li)) = inbox.pop_front() {
            let Some(node) = self.nodes.get_mut(&nid) else { continue };
            if !node.up || node.faulted {
                continue;
            }
            match li {
                LocalInput::Zab(i) => {
                    let Some(zab) = node.zab.as_mut() else { continue };
                    let acts = zab.handle(i);
                    self.route_zab_actions(nid, acts, &mut inbox);
                }
                LocalInput::Election(i) => {
                    let Some(el) = node.election.as_mut() else { continue };
                    let acts = el.handle(i);
                    self.route_election_actions_inner(nid, acts, &mut inbox);
                }
            }
        }
    }

    fn route_election_actions(&mut self, id: ServerId, acts: Vec<ElectionAction>) {
        let mut inbox = VecDeque::new();
        self.route_election_actions_inner(id, acts, &mut inbox);
        while let Some((nid, li)) = inbox.pop_front() {
            // Cascade through feed's loop body by re-entering feed.
            self.feed(nid, li);
        }
    }

    fn route_election_actions_inner(
        &mut self,
        id: ServerId,
        acts: Vec<ElectionAction>,
        inbox: &mut VecDeque<(ServerId, LocalInput)>,
    ) {
        for a in acts {
            match a {
                ElectionAction::Send { to, notification } => {
                    self.send(id, to, Wire::Election(notification));
                }
                ElectionAction::Decided { leader } => {
                    let now_ms = self.node_now_ms(id);
                    let node = self.nodes.get_mut(&id).expect("known node");
                    let rec = node.storage.recover().expect("mem storage recovers");
                    // After a crash the application restarts from the
                    // durable snapshot; without one it keeps its live state
                    // and delivery resumes after it. A snapshot that fails
                    // to decode fail-stops the node, like any storage rot.
                    if node.app.last_zxid() < rec.history.base() {
                        let snap = rec.snapshot.clone().expect("base > 0 implies snapshot");
                        if node.app.install(&snap).is_err() {
                            node.metrics.counter("node.snapshot_install_failures").inc();
                            self.stats.snapshot_install_failures += 1;
                            self.storage_fault(id);
                            return;
                        }
                        node.commits_delivered.set(node.app.len() as i64);
                    }
                    let applied_to = node.app.last_zxid();
                    let (mut zab, acts) = Zab::from_election(
                        id,
                        leader,
                        self.cluster.clone(),
                        rec.into_persistent_state(),
                        applied_to,
                        now_ms,
                    );
                    zab.set_metrics(CoreMetrics::registered(&node.metrics));
                    zab.set_tracer(Tracer::new(Arc::clone(&node.recorder)));
                    node.zab = Some(zab);
                    self.route_zab_actions(id, acts, inbox);
                }
            }
        }
    }

    fn route_zab_actions(
        &mut self,
        id: ServerId,
        acts: Vec<Action>,
        inbox: &mut VecDeque<(ServerId, LocalInput)>,
    ) {
        for a in acts {
            match a {
                Action::Send { to, msg } => self.send(id, to, Wire::Zab(msg)),
                Action::Broadcast { to, msg } => {
                    // Expand in the action's (sorted) target order so the
                    // simulation stays deterministic and matches the
                    // per-peer Send semantics exactly.
                    for &t in &to {
                        self.send(id, t, Wire::Zab(msg.clone()));
                    }
                }
                Action::Persist { token, req } => {
                    let node = self.nodes.get_mut(&id).expect("known node");
                    if let Err(e) = node.storage.apply(&req) {
                        // The write failed before anything mutated: the
                        // node fail-stops, dropping its remaining actions
                        // (they were predicated on the persist).
                        assert_io_fault(&e);
                        self.storage_fault(id);
                        return;
                    }
                    let node = self.nodes.get_mut(&id).expect("known node");
                    if node.flushing_token.is_none() {
                        node.flushing_token = Some(token);
                        let incarnation = node.incarnation;
                        self.schedule(
                            self.cfg.flush_latency_us,
                            SimEventKind::FlushDone { node: id, incarnation },
                        );
                    } else {
                        node.pending_tokens.push(token);
                    }
                }
                Action::Deliver { txn } => {
                    let node = self.nodes.get_mut(&id).expect("known node");
                    node.app.apply(&txn);
                    node.commits_delivered.set(node.app.len() as i64);
                    node.delivered_since_compact += 1;
                    if let Some(every) = self.cfg.compact_every {
                        if node.delivered_since_compact >= every {
                            node.delivered_since_compact = 0;
                            let snapshot = Bytes::from(node.app.snapshot());
                            let through = node.app.last_zxid();
                            if let Err(e) = node.storage.compact(snapshot.clone(), through) {
                                assert_io_fault(&e);
                                self.storage_fault(id);
                                return;
                            }
                            inbox.push_back((
                                id,
                                LocalInput::Zab(Input::Compact {
                                    through,
                                    snapshot: Some(snapshot),
                                }),
                            ));
                        }
                    }
                    self.workload_on_delivered(id, &txn);
                }
                Action::InstallSnapshot { snapshot, .. } => {
                    // A malformed snapshot off the (simulated) wire is a
                    // node fault, not a simulator panic: count it and
                    // fail-stop, leaving the applied state readable.
                    let node = self.nodes.get_mut(&id).expect("known node");
                    if node.app.install(&snapshot).is_err() {
                        node.metrics.counter("node.snapshot_install_failures").inc();
                        self.stats.snapshot_install_failures += 1;
                        self.storage_fault(id);
                        return;
                    }
                    node.commits_delivered.set(node.app.len() as i64);
                }
                Action::TakeSnapshot => {
                    let node = self.nodes.get_mut(&id).expect("known node");
                    let snapshot = Bytes::from(node.app.snapshot());
                    let zxid = node.app.last_zxid();
                    inbox.push_back((id, LocalInput::Zab(Input::SnapshotReady { snapshot, zxid })));
                }
                Action::GoToElection { .. } => {
                    let now_ms = self.node_now_ms(id);
                    let node = self.nodes.get_mut(&id).expect("known node");
                    node.zab = None;
                    let rec = node.storage.recover().expect("mem storage recovers");
                    let el = node.election.as_mut().expect("election exists");
                    let acts = el.restart(rec.current_epoch, rec.history.last_zxid(), now_ms);
                    self.stats.elections_started += 1;
                    self.route_election_actions_inner(id, acts, inbox);
                }
                Action::Activated { .. } => {
                    let node = self.nodes.get(&id).expect("known node");
                    if matches!(&node.zab, Some(Zab::Leader(_))) {
                        self.stats.establishments += 1;
                    }
                }
                Action::Committed { .. } => {}
                Action::ClientRequestRejected { data, .. } => {
                    self.stats.rejections += 1;
                    self.workload_on_rejected(&data);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Workload plumbing
    // ------------------------------------------------------------------

    fn workload_issue(&mut self, op_id: u64) {
        let Some(wl) = &self.workload else { return };
        let (payload_size, retry, timeout) = match wl {
            Workload::Closed(s) => (s.payload_size, s.retry_delay_us, s.op_timeout_us),
            Workload::Open(s) => (s.payload_size, s.retry_delay_us, None),
        };
        let Some(leader) = self.leader() else {
            self.schedule(retry, SimEventKind::Issue { op_id });
            return;
        };
        let data = op_payload(op_id, payload_size);
        self.broadcast_hashes.insert(payload_hash(&data));
        self.wl_in_flight.entry(op_id).or_insert(self.now_us);
        self.wl_issued += 1;
        if let Some(t) = timeout {
            self.schedule(t, SimEventKind::OpTimeout { op_id });
        }
        self.feed(leader, LocalInput::Zab(Input::ClientRequest { data: Bytes::from(data) }));
    }

    /// Called on every delivery; completes workload ops on their first
    /// delivery anywhere (the leader delivers at commit time).
    fn workload_on_delivered(&mut self, _node: ServerId, txn: &zab_core::Txn) {
        if self.workload.is_none() {
            return;
        }
        let Some(op_id) = op_id_of(&txn.data) else { return };
        let Some(issued_us) = self.wl_in_flight.remove(&op_id) else { return };
        self.stats.ops.push(OpRecord { op_id, issued_us, completed_us: self.now_us });
        // Closed loop: this client issues its next operation.
        if let Some(Workload::Closed(spec)) = &self.workload {
            if self.wl_next_op < spec.total_ops {
                let op = self.wl_next_op;
                self.wl_next_op += 1;
                self.schedule(0, SimEventKind::Issue { op_id: op });
            }
        }
    }

    fn workload_on_rejected(&mut self, data: &[u8]) {
        let Some(wl) = &self.workload else { return };
        let retry = match wl {
            Workload::Closed(s) => s.retry_delay_us,
            Workload::Open(s) => s.retry_delay_us,
        };
        let Some(op_id) = op_id_of(data) else { return };
        if self.wl_in_flight.remove(&op_id).is_some() {
            self.schedule(retry, SimEventKind::Issue { op_id });
        }
    }
}
