//! Seeded chaos sweep driver.
//!
//! ```text
//! chaos_search [START_SEED] [COUNT] [TOPOLOGY]
//! ```
//!
//! Runs `COUNT` (default 64) chaos schedules starting at `START_SEED`
//! (default 0) with the default [`zab_simnet::ChaosConfig`] — including
//! the post-convergence metrics cross-check. `TOPOLOGY` is `star`
//! (default) or `relay`; `relay` runs a 9-node ensemble under relay-tree
//! dissemination, so random crashes routinely hit live relays
//! mid-broadcast and re-parenting is exercised under every other fault. On the first failure it
//! prints the replayable `(seed, schedule)` report, writes it to
//! `chaos-failure.txt` (or `$CHAOS_ARTIFACT` if set) for CI artifact
//! upload alongside one `chaos-trace-n<ID>.json` flight-recorder dump
//! per node (Chrome trace-event format, loadable in Perfetto), and exits
//! nonzero. On success it writes an aggregate metrics summary as JSON to
//! `chaos-metrics.json` (or `$CHAOS_METRICS`).
//!
//! Malformed arguments print usage and exit with status 2; they never
//! panic.

use zab_core::Topology;
use zab_simnet::chaos::{self, ChaosConfig, ChaosReport};

fn usage(reason: &str) -> ! {
    eprintln!("error: {reason}");
    eprintln!("usage: chaos_search [START_SEED] [COUNT] [TOPOLOGY]");
    eprintln!("  START_SEED  first seed to run (u64, default 0)");
    eprintln!("  COUNT       number of seeds to run (u64, default 64)");
    eprintln!("  TOPOLOGY    star (default) or relay (9-node relay-tree sweep)");
    std::process::exit(2);
}

fn parse_arg(arg: Option<String>, name: &str, default: u64) -> u64 {
    match arg {
        None => default,
        Some(a) => match a.parse() {
            Ok(v) => v,
            Err(_) => usage(&format!("{name} must be a u64, got {a:?}")),
        },
    }
}

/// Aggregate sweep metrics as a small flat JSON object (every value is a
/// plain integer or float — no escaping needed).
fn metrics_json(reports: &[ChaosReport]) -> String {
    let ops: u64 = reports.iter().map(|r| r.ops_completed).sum();
    let faults: u64 = reports.iter().map(|r| r.storage_faults).sum();
    let msgs: u64 = reports.iter().map(|r| r.messages_delivered).sum();
    let dropped: u64 = reports.iter().map(|r| r.messages_dropped).sum();
    let elections: u64 = reports.iter().map(|r| r.elections_started).sum();
    let virt_us: u64 = reports.iter().map(|r| r.end_us).sum();
    format!(
        "{{\"runs\":{},\"ops_completed\":{ops},\"messages_delivered\":{msgs},\
         \"messages_dropped\":{dropped},\"elections_started\":{elections},\
         \"storage_faults\":{faults},\"virtual_seconds\":{:.3}}}",
        reports.len(),
        virt_us as f64 / 1_000_000.0,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let start = parse_arg(args.next(), "START_SEED", 0);
    let count = parse_arg(args.next(), "COUNT", 64);
    let cfg = match args.next().as_deref() {
        None | Some("star") => ChaosConfig::default(),
        Some("relay") => {
            ChaosConfig { nodes: 9, topology: Topology::Relay, ..ChaosConfig::default() }
        }
        Some(other) => usage(&format!("TOPOLOGY must be star or relay, got {other:?}")),
    };
    if let Some(extra) = args.next() {
        usage(&format!("unexpected argument {extra:?}"));
    }

    println!(
        "chaos sweep: seeds {start}..{} ({} nodes, {:?} topology, {} steps/run, disk faults {}, \
         clock skew {}, metrics checks {})",
        start.saturating_add(count),
        cfg.nodes,
        cfg.topology,
        cfg.steps,
        if cfg.disk_faults { "on" } else { "off" },
        if cfg.clock_skew { "on" } else { "off" },
        if cfg.check_metrics { "on" } else { "off" },
    );

    match chaos::sweep(start, count, &cfg) {
        Ok(reports) => {
            let ops: u64 = reports.iter().map(|r| r.ops_completed).sum();
            let faults: u64 = reports.iter().map(|r| r.storage_faults).sum();
            let msgs: u64 = reports.iter().map(|r| r.messages_delivered).sum();
            let dropped: u64 = reports.iter().map(|r| r.messages_dropped).sum();
            let elections: u64 = reports.iter().map(|r| r.elections_started).sum();
            let virt_s: f64 = reports.iter().map(|r| r.end_us).sum::<u64>() as f64 / 1_000_000.0;
            println!(
                "PASS: {} runs, {virt_s:.1}s virtual time, {ops} ops committed, \
                 {msgs} msgs delivered ({dropped} dropped), {elections} elections, \
                 {faults} injected storage fail-stops",
                reports.len(),
            );
            let path =
                std::env::var("CHAOS_METRICS").unwrap_or_else(|_| "chaos-metrics.json".to_string());
            match std::fs::write(&path, metrics_json(&reports)) {
                Ok(()) => println!("metrics summary written to {path}"),
                Err(e) => eprintln!("could not write metrics summary {path}: {e}"),
            }
        }
        Err(failure) => {
            let report = failure.to_string();
            eprintln!("{report}");
            let path =
                std::env::var("CHAOS_ARTIFACT").unwrap_or_else(|_| "chaos-failure.txt".to_string());
            if let Err(e) = std::fs::write(&path, &report) {
                eprintln!("could not write failure artifact {path}: {e}");
            } else {
                eprintln!("failure artifact written to {path}");
            }
            // Flight-recorder dumps land next to the failure report: the
            // causal history of every node leading into the violation.
            let dir = std::path::Path::new(&path).parent().unwrap_or(std::path::Path::new("."));
            for (node, events) in &failure.traces {
                let trace_path = dir.join(format!("chaos-trace-n{node}.json"));
                match std::fs::write(&trace_path, zab_trace::chrome_trace_json(events)) {
                    Ok(()) => eprintln!(
                        "flight recorder ({} events) written to {}",
                        events.len(),
                        trace_path.display()
                    ),
                    Err(e) => eprintln!("could not write trace {}: {e}", trace_path.display()),
                }
            }
            std::process::exit(1);
        }
    }
}
