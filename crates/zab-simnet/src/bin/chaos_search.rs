//! Seeded chaos sweep driver.
//!
//! ```text
//! chaos_search [START_SEED] [COUNT]
//! ```
//!
//! Runs `COUNT` (default 64) chaos schedules starting at `START_SEED`
//! (default 0) with the default [`zab_simnet::ChaosConfig`]. On the first
//! failure it prints the replayable `(seed, schedule)` report, writes it
//! to `chaos-failure.txt` (or `$CHAOS_ARTIFACT` if set) for CI artifact
//! upload, and exits nonzero.

use zab_simnet::chaos::{self, ChaosConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let start: u64 = args.next().map_or(0, |a| a.parse().expect("START_SEED must be a u64"));
    let count: u64 = args.next().map_or(64, |a| a.parse().expect("COUNT must be a u64"));
    let cfg = ChaosConfig::default();

    println!(
        "chaos sweep: seeds {start}..{} ({} nodes, {} steps/run, disk faults {}, clock skew {})",
        start + count,
        cfg.nodes,
        cfg.steps,
        if cfg.disk_faults { "on" } else { "off" },
        if cfg.clock_skew { "on" } else { "off" },
    );

    match chaos::sweep(start, count, &cfg) {
        Ok(reports) => {
            let ops: u64 = reports.iter().map(|r| r.ops_completed).sum();
            let faults: u64 = reports.iter().map(|r| r.storage_faults).sum();
            let msgs: u64 = reports.iter().map(|r| r.messages_delivered).sum();
            let dropped: u64 = reports.iter().map(|r| r.messages_dropped).sum();
            let elections: u64 = reports.iter().map(|r| r.elections_started).sum();
            let virt_s: f64 = reports.iter().map(|r| r.end_us).sum::<u64>() as f64 / 1_000_000.0;
            println!(
                "PASS: {} runs, {virt_s:.1}s virtual time, {ops} ops committed, \
                 {msgs} msgs delivered ({dropped} dropped), {elections} elections, \
                 {faults} injected storage fail-stops",
                reports.len(),
            );
        }
        Err(failure) => {
            let report = failure.to_string();
            eprintln!("{report}");
            let path =
                std::env::var("CHAOS_ARTIFACT").unwrap_or_else(|_| "chaos-failure.txt".to_string());
            if let Err(e) = std::fs::write(&path, &report) {
                eprintln!("could not write failure artifact {path}: {e}");
            } else {
                eprintln!("failure artifact written to {path}");
            }
            std::process::exit(1);
        }
    }
}
