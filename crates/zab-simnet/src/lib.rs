//! # zab-simnet — deterministic cluster simulation for Zab
//!
//! The paper evaluates Zab on a 13-server cluster with gigabit Ethernet and
//! dedicated log disks. This crate substitutes that testbed with a
//! **deterministic discrete-event simulator** so the evaluation's *shapes*
//! (who wins, where knees and crossovers fall) reproduce on a laptop, and
//! so fault schedules (crashes, partitions, message loss) replay exactly
//! from a seed.
//!
//! What is modeled:
//!
//! - **Network**: per-link propagation latency (seeded uniform range),
//!   per-node egress bandwidth (the leader's NIC fan-out bottleneck that
//!   dominates the paper's throughput-vs-ensemble-size figure), FIFO
//!   delivery per link, and TCP-like connection semantics — a cut link
//!   drops in-flight traffic and surfaces `PeerDisconnected` at both ends.
//! - **Disk**: one flush at a time per node, fixed flush latency, natural
//!   group commit (everything buffered when a flush starts is covered by
//!   it) — the interaction that makes pipelined proposals fast.
//! - **Crash-recovery**: a crashed node loses exactly its unflushed writes
//!   ([`zab_log::MemStorage::crash`]) and rejoins through recovery +
//!   election, like a real process restart.
//! - **Application**: each node applies delivered transactions to a
//!   [`app::ReplicatedLog`] whose full content *is* its state, making the
//!   PO-atomic-broadcast checker ([`checker`]) exact.
//!
//! Time is in **microseconds** internally (bandwidth math needs it); the
//! protocol automata see milliseconds.
//!
//! # Example
//!
//! ```
//! use zab_simnet::SimBuilder;
//!
//! let mut sim = SimBuilder::new(3).seed(7).build();
//! let leader = sim.run_until_leader(10_000_000).expect("a leader emerges");
//! sim.submit(leader, b"hello".to_vec());
//! sim.run_for(1_000_000);
//! sim.check_invariants().unwrap();
//! assert_eq!(sim.applied_log(leader).len(), 1);
//! ```

pub mod app;
pub mod chaos;
pub mod checker;
pub mod sim;
pub mod stats;
pub mod workload;

pub use app::ReplicatedLog;
pub use chaos::{ChaosConfig, ChaosFailure, ChaosOp, ChaosReport, ChaosSchedule};
pub use checker::{check_all, CheckerError};
pub use sim::{Sim, SimBuilder, SimEventKind};
pub use stats::{LatencyStats, SimStats};
pub use workload::{ClosedLoopSpec, OpenLoopSpec};
