//! Workload specifications for the simulator.
//!
//! Two classic generators:
//!
//! - [`ClosedLoopSpec`] — `clients` independent clients, each with one
//!   operation outstanding: the generator the paper's saturation
//!   experiments use (offered load scales with the client count).
//! - [`OpenLoopSpec`] — operations issued at a fixed rate regardless of
//!   completions: used for latency-vs-offered-load sweeps.
//!
//! Operations are opaque payloads whose first 8 bytes carry the operation
//! id; the remainder is zero padding up to `payload_size` (matching the
//! paper's fixed-size write workloads).

/// Closed-loop workload: a fixed population of clients, one outstanding
/// operation each.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoopSpec {
    /// Number of concurrent clients (each keeps one op in flight).
    pub clients: usize,
    /// Bytes per operation payload (min 8, for the op id).
    pub payload_size: usize,
    /// Total operations to complete before the workload stops issuing.
    pub total_ops: u64,
    /// Delay before reissuing after a rejection or missing leader (µs).
    pub retry_delay_us: u64,
    /// Reissue an operation not completed within this window (µs);
    /// `None` disables (use `None` unless the run injects faults).
    pub op_timeout_us: Option<u64>,
}

impl ClosedLoopSpec {
    /// A saturation workload: `clients` clients, `payload_size`-byte ops,
    /// `total_ops` operations, 5 ms retry, no op timeout.
    pub fn saturating(clients: usize, payload_size: usize, total_ops: u64) -> ClosedLoopSpec {
        ClosedLoopSpec {
            clients,
            payload_size: payload_size.max(8),
            total_ops,
            retry_delay_us: 5_000,
            op_timeout_us: None,
        }
    }
}

/// Open-loop workload: fixed issue rate.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopSpec {
    /// Microseconds between consecutive issues.
    pub interval_us: u64,
    /// Bytes per operation payload (min 8).
    pub payload_size: usize,
    /// Total operations to issue.
    pub total_ops: u64,
    /// Delay before re-trying an issue that found no leader (µs).
    pub retry_delay_us: u64,
}

impl OpenLoopSpec {
    /// An open-loop workload issuing `rate_per_sec` ops/s.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is 0.
    pub fn at_rate(rate_per_sec: u64, payload_size: usize, total_ops: u64) -> OpenLoopSpec {
        assert!(rate_per_sec > 0, "rate must be positive");
        OpenLoopSpec {
            interval_us: 1_000_000 / rate_per_sec,
            payload_size: payload_size.max(8),
            total_ops,
            retry_delay_us: 5_000,
        }
    }
}

/// Builds an operation payload: op id, then zero padding.
pub(crate) fn op_payload(op_id: u64, payload_size: usize) -> Vec<u8> {
    let mut data = vec![0u8; payload_size.max(8)];
    data[..8].copy_from_slice(&op_id.to_le_bytes());
    data
}

/// Extracts the op id from a payload (first 8 bytes).
pub(crate) fn op_id_of(data: &[u8]) -> Option<u64> {
    data.get(..8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips_op_id() {
        let p = op_payload(0xDEAD_BEEF_CAFE, 64);
        assert_eq!(p.len(), 64);
        assert_eq!(op_id_of(&p), Some(0xDEAD_BEEF_CAFE));
    }

    #[test]
    fn payload_is_at_least_eight_bytes() {
        assert_eq!(op_payload(1, 0).len(), 8);
    }

    #[test]
    fn open_loop_rate_conversion() {
        let spec = OpenLoopSpec::at_rate(1000, 100, 10);
        assert_eq!(spec.interval_us, 1000);
    }

    #[test]
    fn short_payload_has_no_id() {
        assert_eq!(op_id_of(&[1, 2, 3]), None);
    }
}
