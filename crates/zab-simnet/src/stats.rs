//! Measurement collection: per-operation latencies, throughput, protocol
//! event counts.

/// Latency distribution summary (all values in microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencyStats {
    /// Summarizes a set of latency samples. Returns `None` for no samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Option<LatencyStats> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        let pct = |p: f64| -> u64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            samples[idx]
        };
        Some(LatencyStats {
            count,
            mean_us: sum as f64 / count as f64,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            max_us: samples[count - 1],
        })
    }
}

/// One completed operation, as observed at the leader.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// Workload-assigned operation id.
    pub op_id: u64,
    /// When the client issued it (µs of virtual time).
    pub issued_us: u64,
    /// When the leader delivered it (µs of virtual time).
    pub completed_us: u64,
}

/// Aggregated simulation statistics.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Completed operations (issue → leader delivery).
    pub ops: Vec<OpRecord>,
    /// Total protocol messages delivered.
    pub messages_delivered: u64,
    /// Total protocol message bytes delivered.
    pub bytes_delivered: u64,
    /// Messages dropped by loss/partition/crash.
    pub messages_dropped: u64,
    /// Disk flushes completed across all nodes.
    pub flushes: u64,
    /// Elections started (incl. the initial one per node).
    pub elections_started: u64,
    /// Leader establishments observed.
    pub establishments: u64,
    /// Client request rejections observed.
    pub rejections: u64,
    /// Nodes fail-stopped by an injected storage error.
    pub storage_faults: u64,
    /// Snapshot installs rejected as malformed (node fail-stops).
    pub snapshot_install_failures: u64,
}

impl SimStats {
    /// Latency summary over completed operations.
    pub fn latency(&self) -> Option<LatencyStats> {
        LatencyStats::from_samples(self.ops.iter().map(|o| o.completed_us - o.issued_us).collect())
    }

    /// Throughput in operations per *virtual* second: **all** completed
    /// operations divided by the span from first to last completion.
    /// (`n / span`, not `(n-1) / span` — the old interval-count
    /// convention under-reported bursty completions.) Returns `None`
    /// with fewer than 2 completions or a zero-length span, where a
    /// rate is undefined.
    pub fn throughput_ops_per_sec(&self) -> Option<f64> {
        if self.ops.len() < 2 {
            return None;
        }
        let (first, last) = self
            .ops
            .iter()
            .fold((u64::MAX, 0u64), |(lo, hi), o| (lo.min(o.completed_us), hi.max(o.completed_us)));
        if last == first {
            return None;
        }
        Some(self.ops.len() as f64 * 1_000_000.0 / (last - first) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_yield_none() {
        assert!(LatencyStats::from_samples(vec![]).is_none());
    }

    #[test]
    fn single_sample_stats() {
        let s = LatencyStats::from_samples(vec![42]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, 42);
        assert_eq!(s.p99_us, 42);
        assert_eq!(s.max_us, 42);
        assert!((s.mean_us - 42.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let s = LatencyStats::from_samples((1..=100).collect()).unwrap();
        // Index round((n-1)*p): p50 of 1..=100 lands on the 51st value.
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn throughput_spans_completions() {
        let mut stats = SimStats::default();
        for i in 0..11u64 {
            stats.ops.push(OpRecord { op_id: i, issued_us: i * 100, completed_us: i * 100_000 });
        }
        // 11 ops over a 1-second span → 11 ops/s.
        let tput = stats.throughput_ops_per_sec().unwrap();
        assert!((tput - 11.0).abs() < 1e-9, "got {tput}");
    }

    #[test]
    fn throughput_two_ops_is_ops_over_span() {
        let mut stats = SimStats::default();
        stats.ops.push(OpRecord { op_id: 0, issued_us: 0, completed_us: 500_000 });
        stats.ops.push(OpRecord { op_id: 1, issued_us: 0, completed_us: 1_000_000 });
        // 2 ops over a 0.5-second span → exactly 4 ops/s.
        let tput = stats.throughput_ops_per_sec().unwrap();
        assert!((tput - 4.0).abs() < 1e-9, "got {tput}");
    }

    #[test]
    fn throughput_is_order_independent() {
        let mut stats = SimStats::default();
        // Completion records arrive out of order (deliveries on
        // different nodes interleave); the single-pass scan must still
        // find the true span.
        for &t in &[700_000u64, 200_000, 900_000, 400_000] {
            stats.ops.push(OpRecord { op_id: t, issued_us: 0, completed_us: t });
        }
        // 4 ops over a 0.7-second span.
        let tput = stats.throughput_ops_per_sec().unwrap();
        assert!((tput - 4.0 / 0.7).abs() < 1e-9, "got {tput}");
    }

    #[test]
    fn throughput_equal_timestamps_is_undefined() {
        let mut stats = SimStats::default();
        for i in 0..3u64 {
            stats.ops.push(OpRecord { op_id: i, issued_us: 0, completed_us: 42 });
        }
        assert_eq!(stats.throughput_ops_per_sec(), None);
    }

    #[test]
    fn throughput_single_op_is_undefined() {
        let mut stats = SimStats::default();
        stats.ops.push(OpRecord { op_id: 0, issued_us: 0, completed_us: 10 });
        assert_eq!(stats.throughput_ops_per_sec(), None);
    }

    #[test]
    fn latency_uses_issue_to_completion() {
        let mut stats = SimStats::default();
        stats.ops.push(OpRecord { op_id: 0, issued_us: 100, completed_us: 350 });
        let l = stats.latency().unwrap();
        assert_eq!(l.p50_us, 250);
    }
}
