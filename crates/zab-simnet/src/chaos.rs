//! The deterministic chaos engine: seeded, replayable fault exploration.
//!
//! The paper's claim is that primary order survives *arbitrary* crash,
//! recovery, and message-loss interleavings — a property no fixed list of
//! hand-scripted scenarios can certify. This module turns the simulator
//! into a randomized explorer of that space:
//!
//! 1. [`generate`] expands a `u64` seed into a [`ChaosSchedule`] — a
//!    sequence of crash / restart / partition / heal / message-loss /
//!    clock-skew / disk-fault events.
//! 2. [`run`] executes the schedule against a cluster under closed-loop
//!    client load, running the full PO-atomic-broadcast checker
//!    ([`crate::checker`]) after **every** step, then heals everything and
//!    requires the survivors to re-elect and converge.
//! 3. [`sweep`] does this for a contiguous range of seeds; the first
//!    failure is returned as a [`ChaosFailure`] whose `Display` prints the
//!    exact `(seed, schedule)` pair — re-running [`run`] with that seed
//!    replays the failure byte-for-byte (the simulator is fully
//!    deterministic, including fault timing and RNG tie-breaks).
//!
//! Everything is pure virtual time: a 64-seed sweep covering minutes of
//! cluster time runs in seconds of real time.

use crate::sim::{Sim, SimBuilder};
use crate::workload::ClosedLoopSpec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::fmt;
use zab_core::{ServerId, Topology};
use zab_log::FaultOp;
use zab_trace::TraceEvent;

/// Distinct RNG stream for schedule generation, so the schedule and the
/// simulator (seeded with the raw seed) draw independent randomness.
const SCHEDULE_STREAM: u64 = 0xC4A0_5C4A_05C4_A05C;

/// One step of a chaos schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosOp {
    /// Crash a node (no-op if already down).
    Crash {
        /// Target server id.
        node: u64,
    },
    /// Restart a node (no-op if already up and healthy; a faulted node is
    /// crash-restarted, losing unflushed writes).
    Restart {
        /// Target server id.
        node: u64,
    },
    /// Split the ensemble into two groups by membership bitmap: bit `i-1`
    /// set puts server `i` in group A, clear in group B.
    Partition {
        /// Group-A membership bitmap.
        mask: u64,
    },
    /// Heal all partitions.
    Heal,
    /// Set the random in-flight message-loss rate, in permille.
    SetLoss {
        /// Loss probability × 1000 (0 disables).
        permille: u32,
    },
    /// Skew one node's clock.
    ClockSkew {
        /// Target server id.
        node: u64,
        /// Offset in milliseconds (positive = clock ahead).
        skew_ms: i64,
    },
    /// Arm a one-shot injected storage fault on a node's log.
    DiskFault {
        /// Target server id.
        node: u64,
        /// The storage operation that will fail next.
        op: FaultOp,
    },
}

impl fmt::Display for ChaosOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosOp::Crash { node } => write!(f, "crash({node})"),
            ChaosOp::Restart { node } => write!(f, "restart({node})"),
            ChaosOp::Partition { mask } => write!(f, "partition(mask={mask:#b})"),
            ChaosOp::Heal => write!(f, "heal"),
            ChaosOp::SetLoss { permille } => write!(f, "loss({permille}‰)"),
            ChaosOp::ClockSkew { node, skew_ms } => write!(f, "skew({node}, {skew_ms}ms)"),
            ChaosOp::DiskFault { node, op } => write!(f, "disk-fault({node}, {op:?})"),
        }
    }
}

/// A generated sequence of chaos steps. `Display` prints one step per
/// line, exactly what [`ChaosFailure`] embeds for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// The steps, applied in order with [`ChaosConfig::step_us`] of run
    /// time after each.
    pub ops: Vec<ChaosOp>,
}

impl fmt::Display for ChaosSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  step {i:>3}: {op}")?;
        }
        Ok(())
    }
}

/// Tunables for schedule generation and execution.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Ensemble size.
    pub nodes: u64,
    /// Number of chaos steps per run.
    pub steps: usize,
    /// Virtual time between steps (µs).
    pub step_us: u64,
    /// Virtual time for the final heal-and-converge phase (µs).
    pub settle_us: u64,
    /// Include injected disk faults in generated schedules.
    pub disk_faults: bool,
    /// Include clock-skew events in generated schedules.
    pub clock_skew: bool,
    /// Maximum random message-loss rate a schedule may set (permille).
    pub max_loss_permille: u32,
    /// Closed-loop clients driving load during the run.
    pub clients: usize,
    /// Payload bytes per client operation.
    pub payload_size: usize,
    /// After convergence, cross-check each survivor's metrics registry
    /// against the checker's ground truth (see [`run_schedule`]).
    pub check_metrics: bool,
    /// Dissemination topology for the cluster under test. Under
    /// [`Topology::Relay`] random crashes routinely hit live relays
    /// mid-broadcast, exercising re-parenting under every other fault.
    pub topology: Topology,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            nodes: 5,
            steps: 24,
            step_us: 50_000,
            settle_us: 4_000_000,
            disk_faults: true,
            clock_skew: true,
            max_loss_permille: 150,
            clients: 4,
            payload_size: 16,
            check_metrics: true,
            topology: Topology::Star,
        }
    }
}

/// Expands `seed` into a schedule. Pure function of `(seed, cfg)`: the
/// same pair always yields the same schedule, and the simulator's own
/// randomness comes from a different stream, so printing the seed is
/// enough to replay a failing run exactly.
pub fn generate(seed: u64, cfg: &ChaosConfig) -> ChaosSchedule {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ SCHEDULE_STREAM);
    let pick_node = |rng: &mut ChaCha8Rng| rng.gen_range(1..=cfg.nodes);
    let mut ops = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let roll: u32 = rng.gen_range(0..100);
        let op = if roll < 20 {
            ChaosOp::Crash { node: pick_node(&mut rng) }
        } else if roll < 40 {
            ChaosOp::Restart { node: pick_node(&mut rng) }
        } else if roll < 52 {
            // Random two-way split; all-zero / all-ones masks degenerate
            // to "no split", which is fine (partition is a no-op then).
            ChaosOp::Partition { mask: rng.gen_range(0..(1u64 << cfg.nodes)) }
        } else if roll < 64 {
            ChaosOp::Heal
        } else if roll < 76 {
            ChaosOp::SetLoss { permille: rng.gen_range(0..=cfg.max_loss_permille) }
        } else if roll < 88 && cfg.clock_skew {
            // -200ms..+500ms: enough to cross the failure-detection
            // timeouts in both directions.
            let skew_ms = rng.gen_range(0..=700u64) as i64 - 200;
            ChaosOp::ClockSkew { node: pick_node(&mut rng), skew_ms }
        } else if cfg.disk_faults {
            let idx = rng.gen_range(0..FaultOp::ALL.len());
            ChaosOp::DiskFault { node: pick_node(&mut rng), op: FaultOp::ALL[idx] }
        } else {
            ChaosOp::Heal
        };
        ops.push(op);
    }
    ChaosSchedule { ops }
}

/// What a passing run observed — compared across replays in tests to
/// demonstrate determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// The seed that produced the run.
    pub seed: u64,
    /// Client operations completed during the run.
    pub ops_completed: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by loss, partitions, and crashes.
    pub messages_dropped: u64,
    /// Nodes fail-stopped by injected storage errors.
    pub storage_faults: u64,
    /// Elections started.
    pub elections_started: u64,
    /// Virtual time at the end of the run (µs).
    pub end_us: u64,
}

/// A failed chaos run: everything needed to replay it.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The seed to replay with.
    pub seed: u64,
    /// Index of the failing step, or `None` if the final
    /// heal-and-converge phase failed.
    pub step: Option<usize>,
    /// The checker/convergence error.
    pub error: String,
    /// The full schedule (regenerable from `seed`, embedded for
    /// human-readable reports).
    pub schedule: ChaosSchedule,
    /// Per-node flight-recorder dumps (node id → events, virtual-time
    /// stamped) captured at the moment of failure: what every node was
    /// doing when the invariant broke, across all its incarnations.
    pub traces: BTreeMap<u64, Vec<TraceEvent>>,
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chaos run failed: seed={}", self.seed)?;
        match self.step {
            Some(i) => writeln!(f, "  failing step: {} ({})", i, self.schedule.ops[i])?,
            None => writeln!(f, "  failing step: final heal-and-converge phase")?,
        }
        writeln!(f, "  error: {}", self.error)?;
        writeln!(f, "  schedule (replays via chaos::run(seed, cfg)):")?;
        write!(f, "{}", self.schedule)
    }
}

impl std::error::Error for ChaosFailure {}

fn apply(sim: &mut Sim, cfg: &ChaosConfig, op: &ChaosOp) {
    match op {
        ChaosOp::Crash { node } => sim.crash(ServerId(*node)),
        ChaosOp::Restart { node } => {
            let id = ServerId(*node);
            if sim.is_faulted(id) {
                // A faulted node needs a full process restart to rejoin.
                sim.clear_disk_faults(id);
                sim.crash(id);
            }
            sim.restart(id);
        }
        ChaosOp::Partition { mask } => {
            let a: Vec<u64> = (1..=cfg.nodes).filter(|i| mask & (1 << (i - 1)) != 0).collect();
            let b: Vec<u64> = (1..=cfg.nodes).filter(|i| mask & (1 << (i - 1)) == 0).collect();
            sim.partition(&[&a, &b]);
        }
        ChaosOp::Heal => sim.heal(),
        ChaosOp::SetLoss { permille } => sim.set_message_loss(f64::from(*permille) / 1000.0),
        ChaosOp::ClockSkew { node, skew_ms } => sim.set_clock_skew_ms(ServerId(*node), *skew_ms),
        ChaosOp::DiskFault { node, op } => sim.arm_disk_fault(ServerId(*node), *op),
    }
}

/// Generates the schedule for `seed` and executes it. See the module docs
/// for the phases.
///
/// # Errors
///
/// Returns a [`ChaosFailure`] carrying the replayable `(seed, schedule)`
/// if any invariant check fails mid-run, or if the healed cluster fails
/// to re-elect and converge.
pub fn run(seed: u64, cfg: &ChaosConfig) -> Result<ChaosReport, ChaosFailure> {
    let schedule = generate(seed, cfg);
    run_schedule(seed, cfg, &schedule)
}

/// Executes an explicit schedule (normally obtained from [`generate`];
/// hand-written schedules are fine too — they are just not regenerable
/// from the seed).
///
/// # Errors
///
/// As for [`run`].
pub fn run_schedule(
    seed: u64,
    cfg: &ChaosConfig,
    schedule: &ChaosSchedule,
) -> Result<ChaosReport, ChaosFailure> {
    // Failure construction dumps every node's flight recorder: the trace
    // rides along with the replayable `(seed, schedule)` so the causal
    // history leading into the violation is inspectable without a replay.
    let fail = |sim: &Sim, step: Option<usize>, error: String| ChaosFailure {
        seed,
        step,
        error,
        schedule: schedule.clone(),
        traces: sim.members().iter().map(|&id| (id.0, sim.trace_events(id))).collect(),
    };

    let mut sim = SimBuilder::new(cfg.nodes)
        .seed(seed)
        .timeouts_ms(200, 200, 25)
        .compact_every(Some(64))
        .topology(cfg.topology)
        .build();
    sim.run_until_leader(5_000_000);
    sim.install_closed_loop(ClosedLoopSpec {
        clients: cfg.clients,
        payload_size: cfg.payload_size.max(8),
        total_ops: u64::MAX / 2,
        retry_delay_us: 5_000,
        op_timeout_us: Some(1_000_000),
    });

    for (i, op) in schedule.ops.iter().enumerate() {
        apply(&mut sim, cfg, op);
        sim.run_for(cfg.step_us);
        if let Err(e) = sim.check_invariants() {
            return Err(fail(&sim, Some(i), e.to_string()));
        }
    }

    // Heal-and-converge phase: lift every fault, restart every casualty,
    // and require the cluster to come back.
    sim.heal();
    sim.set_message_loss(0.0);
    sim.clear_clock_skews();
    for id in sim.members() {
        sim.clear_disk_faults(id);
        if sim.is_faulted(id) {
            sim.crash(id);
        }
        sim.restart(id);
    }
    sim.run_for(cfg.settle_us / 2);
    sim.stop_workload();
    sim.run_for(cfg.settle_us / 2);

    if let Err(e) = sim.check_invariants() {
        return Err(fail(&sim, None, e.to_string()));
    }
    if sim.leader().is_none() {
        let deadline = sim.now_us() + cfg.settle_us;
        if sim.run_until_leader(deadline).is_none() {
            return Err(fail(&sim, None, "no leader re-established after healing".into()));
        }
        sim.run_for(500_000);
    }
    if let Err(e) = sim.check_converged() {
        return Err(fail(&sim, None, format!("healed cluster did not converge: {e}")));
    }

    // The observability layer must agree with the checker's ground truth:
    // each survivor's `node.commits_delivered` gauge equals its applied
    // log length (and therefore converges across survivors), and the
    // core's in-incarnation commit counter never exceeds total applied
    // state (restarted nodes re-deliver only a suffix; snapshot installs
    // bypass Deliver entirely).
    if cfg.check_metrics {
        let mut delivered: Vec<(ServerId, i64)> = Vec::new();
        for id in sim.members() {
            if !sim.is_up(id) || sim.is_faulted(id) {
                continue;
            }
            let snap = sim.node_metrics(id);
            let gauge = snap.gauge("node.commits_delivered");
            let applied = sim.applied_log(id).len() as i64;
            if gauge != applied {
                return Err(fail(
                    &sim,
                    None,
                    format!(
                        "metrics drift on {id}: node.commits_delivered={gauge} \
                         but the applied log holds {applied} entries"
                    ),
                ));
            }
            let committed = snap.counter("core.proposals_committed") as i64;
            if committed > gauge {
                return Err(fail(
                    &sim,
                    None,
                    format!(
                        "metrics drift on {id}: core.proposals_committed={committed} \
                         exceeds node.commits_delivered={gauge}"
                    ),
                ));
            }
            delivered.push((id, gauge));
        }
        let mut values: Vec<i64> = delivered.iter().map(|&(_, v)| v).collect();
        values.dedup();
        if values.len() > 1 {
            return Err(fail(
                &sim,
                None,
                format!("survivor commit metrics diverge: {delivered:?}"),
            ));
        }
    }

    let stats = sim.stats();
    Ok(ChaosReport {
        seed,
        ops_completed: stats.ops.len() as u64,
        messages_delivered: stats.messages_delivered,
        messages_dropped: stats.messages_dropped,
        storage_faults: stats.storage_faults,
        elections_started: stats.elections_started,
        end_us: sim.now_us(),
    })
}

/// Runs `count` seeds starting at `start_seed`, stopping at the first
/// failure. On success returns every run's report.
///
/// # Errors
///
/// The first [`ChaosFailure`] found; its `Display` carries the replayable
/// `(seed, schedule)`.
pub fn sweep(
    start_seed: u64,
    count: u64,
    cfg: &ChaosConfig,
) -> Result<Vec<ChaosReport>, ChaosFailure> {
    let mut reports = Vec::with_capacity(count as usize);
    for seed in start_seed..start_seed + count {
        reports.push(run(seed, cfg)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ChaosConfig::default();
        assert_eq!(generate(3, &cfg), generate(3, &cfg));
        assert_ne!(generate(3, &cfg), generate(4, &cfg));
    }

    #[test]
    fn generation_respects_feature_gates() {
        let cfg = ChaosConfig { disk_faults: false, clock_skew: false, ..ChaosConfig::default() };
        for seed in 0..32 {
            for op in &generate(seed, &cfg).ops {
                assert!(
                    !matches!(op, ChaosOp::DiskFault { .. } | ChaosOp::ClockSkew { .. }),
                    "gated op generated: {op}"
                );
            }
        }
    }

    #[test]
    fn failure_display_carries_seed_and_schedule() {
        let cfg = ChaosConfig { steps: 2, ..ChaosConfig::default() };
        let f = ChaosFailure {
            seed: 99,
            step: Some(1),
            error: "boom".into(),
            schedule: generate(99, &cfg),
            traces: BTreeMap::new(),
        };
        let text = f.to_string();
        assert!(text.contains("seed=99"));
        assert!(text.contains("step   0"));
        assert!(text.contains("boom"));
    }
}
