//! Chaos-engine acceptance tests: a seeded sweep holds every safety
//! invariant, failures (and passes) replay byte-identically from the
//! seed, and a node fail-stopped by an injected disk fault leaves the
//! remaining majority committing.

use zab_core::Topology;
use zab_log::FaultOp;
use zab_simnet::chaos::{self, ChaosConfig};
use zab_simnet::workload::ClosedLoopSpec;
use zab_simnet::SimBuilder;

/// The acceptance sweep: ≥ 64 seeds with crashes, restarts, partitions,
/// message drops, clock skew, and disk faults all enabled, the full
/// PO-atomic-broadcast checker after every step, and heal-and-converge at
/// the end of every run.
#[test]
fn sweep_64_seeds_holds_all_invariants() {
    let cfg = ChaosConfig::default();
    let reports = chaos::sweep(0, 64, &cfg).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(reports.len(), 64);
    // The sweep must actually exercise the fault space, not dodge it.
    let ops: u64 = reports.iter().map(|r| r.ops_completed).sum();
    let faults: u64 = reports.iter().map(|r| r.storage_faults).sum();
    let dropped: u64 = reports.iter().map(|r| r.messages_dropped).sum();
    assert!(ops > 10_000, "sweep barely committed anything: {ops} ops");
    assert!(faults > 0, "no injected storage fault ever fired");
    assert!(dropped > 0, "no message was ever dropped");
}

/// The same sweep under relay-tree dissemination: random crashes land on
/// live relays mid-broadcast, partitions sever relay groups from their
/// parent, and every safety invariant (primary order included) must
/// still hold. At n=9 the plan is a real two-level tree (√8 → groups of
/// 3), so orphaned-member re-parenting is exercised constantly.
#[test]
fn sweep_64_seeds_relay_topology_holds_all_invariants() {
    let cfg = ChaosConfig { nodes: 9, topology: Topology::Relay, ..ChaosConfig::default() };
    let reports = chaos::sweep(0, 64, &cfg).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(reports.len(), 64);
    let ops: u64 = reports.iter().map(|r| r.ops_completed).sum();
    assert!(ops > 10_000, "relay sweep barely committed anything: {ops} ops");
}

/// The targeted relay-crash scenario: under sustained load, crash a live
/// relay mid-broadcast. The leader must re-parent the orphaned group
/// members (visible as `core.relay_reassignments`), commits must keep
/// flowing, and after the casualty rejoins the cluster converges with
/// zero primary-order violations.
#[test]
fn relay_crash_mid_broadcast_reparents_and_converges() {
    let mut sim =
        SimBuilder::new(9).seed(42).timeouts_ms(200, 200, 25).topology(Topology::Relay).build();
    let leader = sim.run_until_leader(5_000_000).expect("initial leader");
    sim.install_closed_loop(ClosedLoopSpec {
        clients: 4,
        payload_size: 16,
        total_ops: u64::MAX / 2,
        retry_delay_us: 5_000,
        op_timeout_us: Some(1_000_000),
    });
    sim.run_for(1_000_000);

    // The tree must have formed: at n=9 the 8 ready followers split into
    // ⌈√8⌉ = 3-member groups headed by relays.
    let plan = sim.relay_topology(leader);
    assert!(!plan.is_empty(), "no relay plan formed under load at n=9");
    let (relay, members) = plan[0].clone();
    assert!(!members.is_empty(), "relay {relay} heads an empty group");
    let reassign_before = sim.node_metrics(leader).counter("core.relay_reassignments");

    // Kill the relay mid-stream; its members must be re-parented and the
    // cluster must keep committing without ever violating primary order.
    let committed_before = sim.applied_log(leader).len();
    sim.crash(relay);
    sim.run_for(2_000_000);
    sim.check_invariants().unwrap();
    assert!(sim.applied_log(leader).len() > committed_before, "commits stalled after relay crash");
    let reassign_after = sim.node_metrics(leader).counter("core.relay_reassignments");
    assert!(
        reassign_after > reassign_before,
        "relay crash caused no re-parenting: {reassign_before} -> {reassign_after}"
    );
    let replan = sim.relay_topology(leader);
    assert!(
        replan.iter().all(|(r, ms)| *r != relay && !ms.contains(&relay)),
        "crashed relay {relay} still in the plan: {replan:?}"
    );

    // The casualty rejoins and the whole ensemble converges.
    sim.restart(relay);
    sim.run_for(1_000_000);
    sim.stop_workload();
    sim.run_for(3_000_000);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
}

/// Relay dissemination is an optimization, not a semantic change: the
/// same seed and workload commit the same operations under star and
/// relay, and both converge to identical applied state.
#[test]
fn relay_and_star_commit_identical_state() {
    let run = |topology: Topology| {
        let mut sim =
            SimBuilder::new(9).seed(7).timeouts_ms(200, 200, 25).topology(topology).build();
        let leader = sim.run_until_leader(5_000_000).expect("leader");
        for i in 0..100u32 {
            sim.submit(leader, i.to_le_bytes().to_vec());
        }
        sim.run_for(4_000_000);
        sim.check_invariants().unwrap();
        sim.check_converged().unwrap();
        assert_eq!(sim.applied_log(leader).len(), 100);
        sim.applied_log(leader).to_vec()
    };
    assert_eq!(run(Topology::Star), run(Topology::Relay));
}

/// A leaf follower sees relayed PROPOSE frames but must detect leader
/// death through direct pings alone — forwarded traffic must not keep a
/// dead leader "alive". Crash the leader under relay topology: a new
/// leader is elected promptly and the cluster keeps committing.
#[test]
fn relay_topology_does_not_mask_leader_failure() {
    let mut sim =
        SimBuilder::new(9).seed(3).timeouts_ms(200, 200, 25).topology(Topology::Relay).build();
    let leader = sim.run_until_leader(5_000_000).expect("initial leader");
    for i in 0..50u32 {
        sim.submit(leader, i.to_le_bytes().to_vec());
    }
    sim.run_for(1_000_000);
    assert!(!sim.relay_topology(leader).is_empty(), "plan never formed");
    sim.crash(leader);
    let next = sim.run_until_leader(sim.now_us() + 5_000_000).expect("failover leader");
    assert_ne!(next, leader);
    let before = sim.applied_log(next).len();
    sim.submit(next, b"post-failover".to_vec());
    sim.run_for(1_000_000);
    assert!(sim.applied_log(next).len() > before, "new leader not committing");
    sim.restart(leader);
    sim.run_for(4_000_000);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
}

/// A run replays byte-identically from its seed: same schedule, same
/// message counts, same fault firings, same end time.
#[test]
fn runs_replay_byte_identically() {
    let cfg = ChaosConfig::default();
    for seed in [7, 28, 61] {
        assert_eq!(chaos::generate(seed, &cfg), chaos::generate(seed, &cfg));
        let a = chaos::run(seed, &cfg).unwrap_or_else(|f| panic!("{f}"));
        let b = chaos::run(seed, &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(a, b, "seed {seed} did not replay identically");
    }
}

/// Different seeds explore different schedules (the generator is not
/// collapsing the space).
#[test]
fn seeds_diversify_schedules() {
    let cfg = ChaosConfig::default();
    let schedules: Vec<_> = (0..16).map(|s| chaos::generate(s, &cfg)).collect();
    for (i, a) in schedules.iter().enumerate() {
        for b in &schedules[i + 1..] {
            assert_ne!(a, b);
        }
    }
}

/// An injected disk fault fail-stops exactly the victim: it counts as a
/// storage fault, stops participating, but the remaining majority keeps
/// electing and committing.
#[test]
fn majority_keeps_committing_past_storage_fault() {
    let mut sim = SimBuilder::new(3).seed(11).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(5_000_000).expect("initial leader");
    sim.submit(leader, b"before".to_vec());
    sim.run_for(500_000);

    // Fail the *leader's* next flush: the strongest degradation case —
    // it must step down (fail-stop) and the two survivors re-elect.
    sim.arm_disk_fault(leader, FaultOp::Flush);
    sim.submit(leader, b"trigger".to_vec());
    sim.run_for(2_000_000);

    assert!(sim.is_faulted(leader), "injected flush error did not fail-stop the leader");
    assert_eq!(sim.stats().storage_faults, 1);
    let new_leader = sim.leader().expect("survivors re-elect");
    assert_ne!(new_leader, leader);

    // The remaining majority keeps committing.
    let before = sim.applied_log(new_leader).len();
    sim.submit(new_leader, b"after-fault".to_vec());
    sim.run_for(1_000_000);
    assert!(sim.applied_log(new_leader).len() > before, "majority stopped committing");
    sim.check_invariants().unwrap();

    // The faulted node still serves (stale) reads from its applied state.
    assert!(!sim.applied_log(leader).is_empty());

    // Operator intervention: crash + restart clears the fault and the
    // node rejoins and catches up.
    sim.clear_disk_faults(leader);
    sim.crash(leader);
    sim.restart(leader);
    sim.run_for(3_000_000);
    assert!(!sim.is_faulted(leader));
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
}

/// A follower hitting an append fault halts acking without disturbing
/// the leader's majority.
#[test]
fn follower_append_fault_is_invisible_to_the_majority() {
    let mut sim = SimBuilder::new(3).seed(5).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(5_000_000).expect("initial leader");
    let follower = sim.members().into_iter().find(|&id| id != leader).expect("a follower");

    sim.arm_disk_fault(follower, FaultOp::Append);
    for i in 0..10u8 {
        sim.submit(leader, vec![i; 8]);
    }
    sim.run_for(2_000_000);

    assert!(sim.is_faulted(follower));
    assert_eq!(sim.leader(), Some(leader), "leader should be undisturbed");
    assert_eq!(sim.applied_log(leader).len(), 10, "majority must commit everything");
    sim.check_invariants().unwrap();
}

/// Message loss is a connection reset, not a silent gap: even under
/// sustained loss the cluster recovers once loss stops, with no follower
/// stranded behind a missing proposal.
#[test]
fn message_loss_never_strands_a_follower() {
    let mut sim = SimBuilder::new(3).seed(9).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(5_000_000).expect("initial leader");
    sim.set_message_loss(0.10);
    for i in 0..50u8 {
        sim.submit(leader, vec![i; 8]);
        sim.run_for(50_000);
    }
    sim.set_message_loss(0.0);
    sim.run_for(3_000_000);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
}

/// Clock skew alone (no other faults) cannot break safety or liveness:
/// skewed clocks may force elections, but the cluster keeps committing.
#[test]
fn clock_skew_preserves_safety() {
    let mut sim = SimBuilder::new(3).seed(13).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(5_000_000).expect("initial leader");
    let members = sim.members();
    sim.set_clock_skew_ms(members[0], 400);
    sim.set_clock_skew_ms(members[1], -150);
    sim.submit(leader, b"skewed".to_vec());
    sim.run_for(3_000_000);
    sim.clear_clock_skews();
    sim.run_for(2_000_000);
    let l = sim.leader().expect("a leader under cleared skew");
    let before = sim.applied_log(l).len();
    sim.submit(l, b"post-skew".to_vec());
    sim.run_for(1_000_000);
    assert!(sim.applied_log(l).len() > before);
    sim.check_invariants().unwrap();
}

/// Deep pipelining through the piggybacked commit watermark: with
/// hundreds of proposals outstanding, most commits ride on later PROPOSE
/// frames instead of standalone COMMITs. A mid-burst leader crash then
/// forces an epoch change with uncommitted suffixes in flight — the
/// epoch-e watermark must never commit an epoch-(e+1) proposal, and the
/// full PO-atomic-broadcast checker must stay silent throughout.
#[test]
fn deep_pipeline_watermark_commits_survive_failover() {
    let mut sim =
        SimBuilder::new(5).seed(23).max_outstanding(256).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(5_000_000).expect("initial leader");
    for i in 0..200u32 {
        sim.submit(leader, i.to_le_bytes().to_vec());
    }
    // Crash mid-burst so a deep uncommitted pipeline crosses the failover.
    sim.run_for(100_000);
    sim.check_invariants().unwrap();
    sim.crash(leader);
    let deadline = sim.now_us() + 5_000_000;
    let next = sim.run_until_leader(deadline).expect("failover leader");
    assert_ne!(next, leader);
    for i in 200..400u32 {
        sim.submit(next, i.to_le_bytes().to_vec());
    }
    sim.run_for(1_000_000);
    sim.check_invariants().unwrap();
    sim.restart(leader);
    sim.run_for(5_000_000);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
    // The run must actually have committed a deep pipeline's worth of ops.
    let l = sim.leader().expect("stable leader");
    assert!(
        sim.applied_log(l).len() >= 200,
        "expected a deep committed pipeline, got {} ops",
        sim.applied_log(l).len()
    );
}

/// The per-node metrics registries agree with the simulator's ground
/// truth on a healthy cluster, and — because the simulator pins storage
/// clocks at virtual zero — replay to byte-identical snapshots.
#[test]
fn node_metrics_track_ground_truth_deterministically() {
    let run = || {
        let mut sim = SimBuilder::new(3).seed(17).timeouts_ms(200, 200, 25).build();
        let leader = sim.run_until_leader(5_000_000).expect("initial leader");
        for i in 0..20u8 {
            sim.submit(leader, vec![i; 8]);
        }
        sim.run_for(3_000_000);
        sim.check_converged().unwrap();
        (sim.members().iter().map(|&id| sim.node_metrics(id).to_json()).collect::<Vec<_>>(), sim)
    };

    let (json_a, sim) = run();
    let leader = sim.leader().expect("leader still up");
    for id in sim.members() {
        let snap = sim.node_metrics(id);
        // The convergence gauge equals the checker's view of applied state.
        assert_eq!(
            snap.gauge("node.commits_delivered"),
            sim.applied_log(id).len() as i64,
            "commits_delivered drifted on {id}"
        );
        assert_eq!(snap.counter("core.proposals_committed"), 20, "wrong commit count on {id}");
        assert!(snap.counter("log.appends") >= 20, "too few appends on {id}");
        if id == leader {
            assert_eq!(snap.counter("core.proposals_proposed"), 20);
            let h = snap.histogram("core.quorum_ack_latency_ms").expect("latency recorded");
            assert_eq!(h.count, 20);
        } else {
            assert!(snap.counter("core.acks_sent") >= 1, "follower {id} never acked");
        }
        // Storage latency histograms run on a clock pinned at virtual
        // zero, so every sample is exactly 0 — deterministic by design.
        let append = snap.histogram("log.append_latency_us").expect("appends timed");
        assert_eq!(append.sum, 0, "storage clock leaked wall time on {id}");
    }

    // A replay of the same seed yields byte-identical metric dumps.
    let (json_b, _) = run();
    assert_eq!(json_a, json_b, "metrics did not replay deterministically");
}
