//! Fault-injection tests on the deterministic simulator: every run ends
//! with the full PO-atomic-broadcast safety check.

use zab_simnet::{ClosedLoopSpec, SimBuilder};

const SEC: u64 = 1_000_000;

#[test]
fn bootstrap_elects_and_establishes() {
    let mut sim = SimBuilder::new(3).seed(1).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    assert!(sim.members().contains(&leader));
    sim.check_invariants().unwrap();
}

#[test]
fn bootstrap_all_ensemble_sizes() {
    for n in [1, 2, 3, 5, 7, 9, 13] {
        let mut sim = SimBuilder::new(n).seed(n).build();
        let leader = sim.run_until_leader(20 * SEC);
        assert!(leader.is_some(), "no leader for n={n}");
        sim.check_invariants().unwrap();
    }
}

#[test]
fn same_seed_same_run() {
    let run = |seed: u64| {
        let mut sim = SimBuilder::new(5).seed(seed).build();
        sim.run_until_leader(10 * SEC).expect("leader");
        sim.install_closed_loop(ClosedLoopSpec::saturating(8, 64, 200));
        sim.run_until_completed(200, 30 * SEC);
        (sim.now_us(), sim.stats().messages_delivered, sim.stats().ops.len(), sim.leader())
    };
    assert_eq!(run(7), run(7));
    // And a different seed takes a different trajectory.
    assert_ne!(run(7).1, run(8).1);
}

#[test]
fn closed_loop_completes_and_converges() {
    let mut sim = SimBuilder::new(3).seed(2).build();
    sim.run_until_leader(10 * SEC).expect("leader");
    sim.install_closed_loop(ClosedLoopSpec::saturating(16, 128, 500));
    assert!(sim.run_until_completed(500, 60 * SEC), "workload stalled");
    sim.run_for(SEC); // drain trailing commits to followers
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
    for &id in &sim.members() {
        assert_eq!(sim.applied_log(id).len(), 500, "node {id} incomplete");
    }
}

#[test]
fn follower_crash_does_not_stop_broadcast() {
    let mut sim = SimBuilder::new(3).seed(3).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    let victim = sim.members().into_iter().find(|&m| m != leader).expect("a follower");
    sim.install_closed_loop(ClosedLoopSpec::saturating(4, 64, 300));
    sim.run_until_completed(100, 30 * SEC);
    sim.crash(victim);
    assert!(sim.run_until_completed(300, 60 * SEC), "broadcast stalled after follower crash");
    sim.check_invariants().unwrap();
}

#[test]
fn follower_crash_restart_catches_up() {
    let mut sim = SimBuilder::new(3).seed(4).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    let victim = sim.members().into_iter().find(|&m| m != leader).expect("a follower");
    sim.install_closed_loop(ClosedLoopSpec::saturating(4, 64, 400));
    sim.run_until_completed(100, 30 * SEC);
    sim.crash(victim);
    sim.run_until_completed(200, 30 * SEC);
    sim.restart(victim);
    assert!(sim.run_until_completed(400, 90 * SEC));
    sim.run_for(3 * SEC);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
}

#[test]
fn leader_crash_fails_over_and_preserves_history() {
    let mut sim = SimBuilder::new(3).seed(5).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    sim.install_closed_loop(ClosedLoopSpec::saturating(4, 64, 400));
    assert!(sim.run_until_completed(150, 30 * SEC));
    sim.crash(leader);
    // A new leader must emerge and the workload must finish (ops in flight
    // at the crash may be lost; the closed loop re-issues none of them, so
    // allow a lower completion bar: issue fresh ops via the remaining ids).
    let new_leader = {
        // Let failover play out.
        sim.run_for(3 * SEC);
        sim.leader().expect("failover leader")
    };
    assert_ne!(new_leader, leader);
    assert!(sim.run_until_completed(390, 120 * SEC), "workload stalled after failover");
    sim.check_invariants().unwrap();
}

#[test]
fn repeated_leader_crashes_never_violate_safety() {
    let mut sim = SimBuilder::new(5).seed(6).timeouts_ms(200, 200, 25).build();
    sim.run_until_leader(10 * SEC).expect("leader");
    sim.install_closed_loop(ClosedLoopSpec {
        clients: 8,
        payload_size: 64,
        total_ops: 2_000,
        retry_delay_us: 5_000,
        op_timeout_us: Some(2 * SEC),
    });
    let mut crashed: Option<zab_core::ServerId> = None;
    for round in 0..4 {
        sim.run_for(5 * SEC);
        if let Some(old) = crashed.take() {
            sim.restart(old);
        }
        if let Some(l) = sim.leader() {
            sim.crash(l);
            crashed = Some(l);
        }
        sim.run_for(3 * SEC);
        sim.check_invariants().unwrap_or_else(|e| panic!("safety violated in round {round}: {e}"));
    }
    if let Some(old) = crashed {
        sim.restart(old);
    }
    sim.run_for(10 * SEC);
    sim.check_invariants().unwrap();
}

#[test]
fn minority_partition_stalls_majority_side_continues() {
    let mut sim = SimBuilder::new(5).seed(7).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    sim.install_closed_loop(ClosedLoopSpec {
        clients: 4,
        payload_size: 64,
        total_ops: 1_000,
        retry_delay_us: 5_000,
        op_timeout_us: Some(2 * SEC),
    });
    sim.run_until_completed(200, 30 * SEC);
    // Cut the leader plus one follower away from the other three.
    let mut others = sim.members();
    others.retain(|&m| m != leader);
    let minority = [leader.0, others[0].0];
    let majority = [others[1].0, others[2].0, others[3].0];
    sim.partition(&[&minority, &majority]);
    sim.run_for(5 * SEC);
    // The majority side elected a new leader and keeps committing.
    let new_leader = sim.leader().expect("majority leader");
    assert!(majority.contains(&new_leader.0), "leader must be on the majority side");
    assert!(sim.run_until_completed(600, 60 * SEC), "majority side stalled");
    sim.check_invariants().unwrap();
    // Heal: the old leader's side rejoins; everything converges.
    sim.heal();
    assert!(sim.run_until_completed(1_000, 120 * SEC), "post-heal stall");
    sim.run_for(5 * SEC);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
}

#[test]
fn partitioned_minority_leader_abdicates() {
    let mut sim = SimBuilder::new(3).seed(8).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    sim.partition(&[&[leader.0]]); // leader alone; others together
    sim.run_for(3 * SEC);
    // The isolated ex-leader must no longer claim established leadership.
    let current = sim.leader();
    assert_ne!(current, Some(leader), "isolated leader failed to abdicate");
    sim.check_invariants().unwrap();
}

#[test]
fn unflushed_writes_are_lost_but_safety_holds() {
    // Crash a follower immediately after heavy traffic; its unflushed log
    // suffix vanishes. On restart it must resync without violating order.
    let mut sim = SimBuilder::new(3)
        .seed(9)
        .flush_latency_us(20_000) // slow disk: lots of unflushed state
        .build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    let victim = sim.members().into_iter().find(|&m| m != leader).expect("a follower");
    sim.install_closed_loop(ClosedLoopSpec::saturating(32, 256, 600));
    sim.run_until_completed(300, 60 * SEC);
    sim.crash(victim);
    sim.run_for(SEC);
    sim.restart(victim);
    assert!(sim.run_until_completed(600, 120 * SEC));
    sim.run_for(3 * SEC);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
}

#[test]
fn snap_threshold_forces_snapshot_resync() {
    let mut sim = SimBuilder::new(3).seed(10).snap_threshold(50).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    let victim = sim.members().into_iter().find(|&m| m != leader).expect("a follower");
    sim.install_closed_loop(ClosedLoopSpec::saturating(8, 64, 500));
    sim.run_until_completed(50, 30 * SEC);
    sim.crash(victim);
    // Let far more than snap_threshold transactions pass.
    sim.run_until_completed(400, 60 * SEC);
    sim.restart(victim);
    assert!(sim.run_until_completed(500, 60 * SEC));
    sim.run_for(3 * SEC);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
    assert_eq!(sim.applied_log(victim).len(), 500);
}

#[test]
fn two_node_ensemble_survives_follower_blip() {
    let mut sim = SimBuilder::new(2).seed(11).timeouts_ms(200, 200, 25).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    let follower = sim.members().into_iter().find(|&m| m != leader).expect("one follower");
    sim.install_closed_loop(ClosedLoopSpec {
        clients: 2,
        payload_size: 32,
        total_ops: 200,
        retry_delay_us: 5_000,
        op_timeout_us: Some(2 * SEC),
    });
    sim.run_until_completed(50, 30 * SEC);
    sim.crash(follower);
    sim.run_for(SEC); // leader stalls (no quorum)
    sim.restart(follower);
    assert!(sim.run_until_completed(200, 120 * SEC), "did not recover from blip");
    sim.check_invariants().unwrap();
}

#[test]
fn periodic_compaction_with_lagging_follower_snap_resync() {
    // With aggressive compaction, a follower that misses many transactions
    // finds the leader's log truncated and must take a snapshot sync.
    let mut sim = SimBuilder::new(3).seed(12).compact_every(Some(100)).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    let victim = sim.members().into_iter().find(|&m| m != leader).expect("a follower");
    sim.install_closed_loop(ClosedLoopSpec::saturating(8, 64, 800));
    sim.run_until_completed(100, 30 * SEC);
    sim.crash(victim);
    sim.run_until_completed(700, 60 * SEC);
    sim.restart(victim);
    assert!(sim.run_until_completed(800, 120 * SEC));
    sim.run_for(3 * SEC);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
    assert_eq!(sim.applied_log(victim).len(), 800);
}

#[test]
fn paced_snap_catch_up_past_compaction_horizon() {
    // The full recovery gauntlet: a follower crashes under a saturated
    // pipeline, the survivors keep committing and compact the log far past
    // the point the victim fell behind, and the rejoin must be served SNAP
    // from the retained snapshot — shipped in paced chunks under a tight
    // shared sync budget — while PROPOSE fan-out continues. Catch-up must
    // terminate with the victim byte-identical to the majority.
    let mut sim = SimBuilder::new(5)
        .seed(14)
        .compact_every(Some(50))
        .snap_threshold(50)
        .sync_rate(512 * 1024)
        .build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    let victim = sim.members().into_iter().find(|&m| m != leader).expect("a follower");
    sim.install_closed_loop(ClosedLoopSpec::saturating(8, 1024, 600));
    sim.run_until_completed(100, 30 * SEC);
    sim.crash(victim);
    // The log grows well past both the compaction cadence and the
    // DIFF-vs-SNAP threshold while the victim is down.
    sim.run_until_completed(500, 120 * SEC);
    sim.restart(victim);
    assert!(sim.run_until_completed(600, 240 * SEC), "load did not finish past the rejoin");
    sim.run_for(5 * SEC);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
    assert_eq!(sim.applied_log(victim).len(), 600);
    // The catch-up crossed the compaction horizon, so it cannot have been
    // a DIFF: some leader must have served a snapshot sync.
    let snap_syncs: u64 =
        sim.members().iter().map(|&id| sim.node_metrics(id).counter("core.snap_syncs")).sum();
    assert!(snap_syncs >= 1, "rejoin behind the compaction horizon must SNAP-sync");
}

#[test]
fn compaction_survives_crash_recovery() {
    // Compacted nodes recover from snapshot + log suffix.
    let mut sim = SimBuilder::new(3).seed(13).compact_every(Some(50)).build();
    let leader = sim.run_until_leader(10 * SEC).expect("leader");
    let victim = sim.members().into_iter().find(|&m| m != leader).expect("a follower");
    sim.install_closed_loop(ClosedLoopSpec::saturating(8, 64, 400));
    sim.run_until_completed(200, 30 * SEC);
    sim.crash(victim);
    sim.run_for(SEC);
    sim.restart(victim);
    assert!(sim.run_until_completed(400, 120 * SEC));
    sim.run_for(3 * SEC);
    sim.check_invariants().unwrap();
    sim.check_converged().unwrap();
}
