//! Flight-recorder behaviour under simulation: deterministic virtual-time
//! traces, full causal chains across the ensemble, survival across node
//! crashes, and bounded memory.

use zab_core::ServerId;
use zab_simnet::{ClosedLoopSpec, SimBuilder};
use zab_trace::{merge, stage_deltas, timelines, Stage, TraceEvent};

fn run_workload(seed: u64) -> Vec<TraceEvent> {
    let mut sim = SimBuilder::new(3).seed(seed).build();
    sim.run_until_leader(5_000_000).expect("leader");
    sim.install_closed_loop(ClosedLoopSpec {
        clients: 2,
        payload_size: 16,
        total_ops: 40,
        retry_delay_us: 5_000,
        op_timeout_us: Some(1_000_000),
    });
    assert!(sim.run_until_completed(40, 30_000_000));
    merge((1..=3).map(|i| sim.trace_events(ServerId(i))).collect())
}

/// The sim records the same causal chain the real cluster does: for some
/// committed zxid the leader has propose→ack-rx→quorum→deliver and every
/// follower has wire-in, an outbound ack, and the delivery — all stamped
/// with deterministic virtual time. (The `Submit` stage belongs to the
/// real replica's client boundary; in the sim, submission is synchronous
/// with the propose-enqueue.)
#[test]
fn simulated_run_produces_full_causal_chains() {
    let merged = run_workload(5);
    let by_zxid = timelines(&merged);
    assert!(!by_zxid.is_empty(), "no traced zxids at all");

    let full_chain = by_zxid.iter().any(|(_, evs)| {
        let has = |node: u64, stage: Stage| evs.iter().any(|e| e.node == node && e.stage == stage);
        let leader = evs.iter().find(|e| e.stage == Stage::Quorum).map(|e| e.node);
        let Some(leader) = leader else { return false };
        has(leader, Stage::ProposeEnqueue)
            && has(leader, Stage::AckRx)
            && has(leader, Stage::CommitOut)
            && has(leader, Stage::Deliver)
            && (1..=3)
                .filter(|&n| n != leader)
                .all(|f| has(f, Stage::WireIn) && has(f, Stage::WireOut) && has(f, Stage::Deliver))
    });
    assert!(full_chain, "no zxid shows the full causal chain across the ensemble");
    assert!(!stage_deltas(&merged).is_empty());
}

/// Identical seeds produce byte-identical traces: the recorder is timed
/// by virtual time and introduces no nondeterminism of its own.
#[test]
fn traces_replay_identically_from_the_seed() {
    assert_eq!(run_workload(7), run_workload(7));
}

/// The recorder survives a crash + restart: events recorded by the dead
/// incarnation are still in the dump afterwards (the point of a flight
/// recorder), and the memory bound holds throughout.
#[test]
fn recorder_survives_crash_and_respects_bound() {
    let mut sim = SimBuilder::new(3).seed(9).trace_capacity(256).build();
    sim.run_until_leader(5_000_000).expect("leader");
    let leader = sim.leader().expect("leader");
    let victim = ServerId((1..=3).find(|&i| ServerId(i) != leader).expect("follower"));
    for i in 0..5u32 {
        sim.submit(leader, i.to_le_bytes().to_vec());
    }
    sim.run_for(2_000_000);
    let before = sim.trace_events(victim);
    assert!(!before.is_empty(), "victim recorded nothing before the crash");

    sim.crash(victim);
    sim.restart(victim);
    sim.run_for(2_000_000);

    let after = sim.trace_events(victim);
    assert!(
        before.iter().all(|e| after.contains(e)),
        "pre-crash events vanished from the flight recorder"
    );
    for i in 1..=3 {
        let id = ServerId(i);
        assert!(sim.trace_events(id).len() <= sim.trace_recorder(id).max_resident_events());
    }
}
