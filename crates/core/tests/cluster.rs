//! Integration tests driving Leader + Follower automata directly through a
//! synchronous, loss-free harness (instant network, instant disk).
//!
//! These validate the protocol logic in isolation; the deterministic
//! simulator in `zab-simnet` adds latency, loss, partitions and crashes.

use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use zab_core::{
    Action, ClusterConfig, Epoch, Follower, FollowerStatus, Input, Leader, Message,
    PersistentState, ServerId, Txn, Zab, Zxid,
};

/// A synchronous cluster: messages and persists complete immediately, in
/// FIFO order, until no work remains.
struct Harness {
    nodes: BTreeMap<ServerId, Zab>,
    /// (from, to, message) queue.
    net: VecDeque<(ServerId, ServerId, Message)>,
    /// Deliveries observed per node, in order.
    delivered: BTreeMap<ServerId, Vec<Txn>>,
    /// Committed events observed at the leader.
    committed: Vec<Zxid>,
    /// Election requests observed (node → reason).
    defections: Vec<(ServerId, &'static str)>,
}

impl Harness {
    fn new(n: u64, leader: ServerId) -> Harness {
        let ids: Vec<ServerId> = (1..=n).map(ServerId).collect();
        let cfg = ClusterConfig::majority(ids.clone());
        let mut h = Harness {
            nodes: BTreeMap::new(),
            net: VecDeque::new(),
            delivered: BTreeMap::new(),
            committed: Vec::new(),
            defections: Vec::new(),
        };
        for &id in &ids {
            let (z, acts) = Zab::from_election(
                id,
                leader,
                cfg.clone(),
                PersistentState::default(),
                Zxid::ZERO,
                0,
            );
            h.nodes.insert(id, z);
            h.delivered.insert(id, Vec::new());
            h.dispatch(id, acts);
        }
        h.run();
        h
    }

    /// Applies a node's actions: instant persists, queued sends.
    fn dispatch(&mut self, id: ServerId, actions: Vec<Action>) {
        let mut queue: VecDeque<Action> = actions.into();
        while let Some(a) = queue.pop_front() {
            match a {
                Action::Send { to, msg } => self.net.push_back((id, to, msg)),
                Action::Broadcast { to, msg } => {
                    for t in to {
                        self.net.push_back((id, t, msg.clone()));
                    }
                }
                Action::Persist { token, .. } => {
                    let more = self.nodes.get_mut(&id).unwrap().handle(Input::Persisted { token });
                    // Completions run before later actions to mimic an
                    // instant disk, but network order is preserved by the
                    // FIFO `net` queue regardless.
                    for m in more.into_iter().rev() {
                        queue.push_front(m);
                    }
                }
                Action::Deliver { txn } => self.delivered.get_mut(&id).unwrap().push(txn),
                Action::Committed { zxid } => self.committed.push(zxid),
                Action::GoToElection { reason } => self.defections.push((id, reason)),
                Action::TakeSnapshot => {
                    // Serve a dummy snapshot at the node's delivered point.
                    let zxid = self.delivered[&id].last().map_or(Zxid::ZERO, |t| t.zxid);
                    let more = self.nodes.get_mut(&id).unwrap().handle(Input::SnapshotReady {
                        snapshot: Bytes::from_static(b"app-snapshot"),
                        zxid,
                    });
                    for m in more.into_iter().rev() {
                        queue.push_front(m);
                    }
                }
                Action::InstallSnapshot { .. }
                | Action::Activated { .. }
                | Action::ClientRequestRejected { .. } => {}
            }
        }
    }

    /// Pumps the network until quiescent.
    fn run(&mut self) {
        while let Some((from, to, msg)) = self.net.pop_front() {
            if let Some(node) = self.nodes.get_mut(&to) {
                let acts = node.handle(Input::Message { from, msg });
                self.dispatch(to, acts);
            }
        }
    }

    fn request(&mut self, leader: ServerId, data: &[u8]) {
        let acts = self
            .nodes
            .get_mut(&leader)
            .unwrap()
            .handle(Input::ClientRequest { data: Bytes::copy_from_slice(data) });
        self.dispatch(leader, acts);
        self.run();
    }

    fn leader(&self, id: ServerId) -> &Leader {
        match &self.nodes[&id] {
            Zab::Leader(l) => l,
            _ => panic!("{id} is not a leader"),
        }
    }

    fn follower(&self, id: ServerId) -> &Follower {
        match &self.nodes[&id] {
            Zab::Follower(f) => f,
            _ => panic!("{id} is not a follower"),
        }
    }
}

#[test]
fn three_node_cluster_establishes() {
    let h = Harness::new(3, ServerId(1));
    assert!(h.leader(ServerId(1)).is_established());
    assert_eq!(h.leader(ServerId(1)).epoch(), Epoch(1));
    for id in [ServerId(2), ServerId(3)] {
        assert_eq!(h.follower(id).status(), FollowerStatus::Active);
    }
    assert!(h.defections.is_empty());
}

#[test]
fn single_node_cluster_establishes_alone() {
    let h = Harness::new(1, ServerId(1));
    assert!(h.leader(ServerId(1)).is_established());
}

#[test]
fn five_node_cluster_establishes() {
    let h = Harness::new(5, ServerId(3));
    assert!(h.leader(ServerId(3)).is_established());
    assert_eq!(h.leader(ServerId(3)).active_followers().count(), 4);
}

#[test]
fn broadcast_delivers_everywhere_in_order() {
    let mut h = Harness::new(3, ServerId(1));
    for i in 0..10u8 {
        h.request(ServerId(1), &[i]);
    }
    let expect: Vec<Zxid> = (1..=10).map(|c| Zxid::new(Epoch(1), c)).collect();
    for (&id, txns) in &h.delivered {
        let zxids: Vec<Zxid> = txns.iter().map(|t| t.zxid).collect();
        assert_eq!(zxids, expect, "node {id} delivered out of order");
    }
    assert_eq!(h.committed, expect);
}

#[test]
fn delivered_payloads_match_requests() {
    let mut h = Harness::new(3, ServerId(1));
    h.request(ServerId(1), b"alpha");
    h.request(ServerId(1), b"beta");
    for txns in h.delivered.values() {
        assert_eq!(txns[0].data.as_ref(), b"alpha");
        assert_eq!(txns[1].data.as_ref(), b"beta");
    }
}

#[test]
fn client_request_to_follower_is_rejected() {
    let mut h = Harness::new(3, ServerId(1));
    let acts = h
        .nodes
        .get_mut(&ServerId(2))
        .unwrap()
        .handle(Input::ClientRequest { data: Bytes::from_static(b"x") });
    assert!(matches!(acts[0], Action::ClientRequestRejected { .. }));
}

#[test]
fn late_joiner_is_synced_with_diff_and_catches_up() {
    // Build a 3-node cluster but only connect two; broadcast; then let the
    // third join and verify it receives the full history.
    let ids: Vec<ServerId> = (1..=3).map(ServerId).collect();
    let cfg = ClusterConfig::majority(ids.clone());
    let mut h = Harness {
        nodes: BTreeMap::new(),
        net: VecDeque::new(),
        delivered: BTreeMap::new(),
        committed: Vec::new(),
        defections: Vec::new(),
    };
    for &id in &[ServerId(1), ServerId(2)] {
        let (z, acts) = Zab::from_election(
            id,
            ServerId(1),
            cfg.clone(),
            PersistentState::default(),
            Zxid::ZERO,
            0,
        );
        h.nodes.insert(id, z);
        h.delivered.insert(id, Vec::new());
        h.dispatch(id, acts);
    }
    h.run();
    assert!(h.leader(ServerId(1)).is_established());
    for i in 0..5u8 {
        h.request(ServerId(1), &[i]);
    }
    // Now the third server comes up as a follower of the established leader.
    let (z, acts) = Zab::from_election(
        ServerId(3),
        ServerId(1),
        cfg,
        PersistentState::default(),
        Zxid::ZERO,
        0,
    );
    h.nodes.insert(ServerId(3), z);
    h.delivered.insert(ServerId(3), Vec::new());
    h.dispatch(ServerId(3), acts);
    h.run();
    assert_eq!(h.follower(ServerId(3)).status(), FollowerStatus::Active);
    assert_eq!(h.delivered[&ServerId(3)].len(), 5);
    // And it participates in new broadcasts.
    h.request(ServerId(1), b"after-join");
    assert_eq!(h.delivered[&ServerId(3)].len(), 6);
}

#[test]
fn leader_change_preserves_committed_history() {
    // Epoch 1: commit 3 txns. Then "crash" the leader and re-run election
    // nominating server 2, reusing each survivor's persistent state.
    let mut h = Harness::new(3, ServerId(1));
    for i in 0..3u8 {
        h.request(ServerId(1), &[i]);
    }
    let s2 = h.nodes[&ServerId(2)].persistent_state();
    let s3 = h.nodes[&ServerId(3)].persistent_state();

    let ids: Vec<ServerId> = (1..=3).map(ServerId).collect();
    let cfg = ClusterConfig::majority(ids);
    let mut h2 = Harness {
        nodes: BTreeMap::new(),
        net: VecDeque::new(),
        delivered: BTreeMap::new(),
        committed: Vec::new(),
        defections: Vec::new(),
    };
    for (id, st) in [(ServerId(2), s2), (ServerId(3), s3)] {
        let (z, acts) = Zab::from_election(id, ServerId(2), cfg.clone(), st, Zxid::ZERO, 0);
        h2.nodes.insert(id, z);
        h2.delivered.insert(id, Vec::new());
        h2.dispatch(id, acts);
    }
    h2.run();
    assert!(h2.leader(ServerId(2)).is_established());
    assert_eq!(h2.leader(ServerId(2)).epoch(), Epoch(2));
    // Primary integrity: the old committed txns deliver before anything new.
    let mut prefix: Vec<Zxid> = (1..=3).map(|c| Zxid::new(Epoch(1), c)).collect();
    assert_eq!(h2.delivered[&ServerId(2)].iter().map(|t| t.zxid).collect::<Vec<_>>(), prefix);
    h2.request(ServerId(2), b"epoch2-txn");
    prefix.push(Zxid::new(Epoch(2), 1));
    for (&id, txns) in &h2.delivered {
        assert_eq!(
            txns.iter().map(|t| t.zxid).collect::<Vec<_>>(),
            prefix,
            "node {id} violated primary order across the leader change"
        );
    }
}

#[test]
fn divergent_follower_is_truncated() {
    // Server 3 accepted (1,4) and (1,5) which never committed. A new
    // epoch-2 leader (server 2, history through (1,3)) establishes with
    // server 1 and commits (2,1). When server 3 joins late, it must
    // truncate (1,4..5) — the paper's discard-skipped-transactions case.
    let mut h = Harness::new(3, ServerId(1));
    for i in 0..3u8 {
        h.request(ServerId(1), &[i]);
    }
    let s1 = h.nodes[&ServerId(1)].persistent_state();
    let s2 = h.nodes[&ServerId(2)].persistent_state();
    let mut s3 = h.nodes[&ServerId(3)].persistent_state();
    s3.history.append(Txn::new(Zxid::new(Epoch(1), 4), &b"never-committed"[..]));
    s3.history.append(Txn::new(Zxid::new(Epoch(1), 5), &b"never-committed"[..]));

    let ids: Vec<ServerId> = (1..=3).map(ServerId).collect();
    let cfg = ClusterConfig::majority(ids);
    let mut h2 = Harness {
        nodes: BTreeMap::new(),
        net: VecDeque::new(),
        delivered: BTreeMap::new(),
        committed: Vec::new(),
        defections: Vec::new(),
    };
    for (id, st) in [(ServerId(2), s2), (ServerId(1), s1)] {
        let (z, acts) = Zab::from_election(id, ServerId(2), cfg.clone(), st, Zxid::ZERO, 0);
        h2.nodes.insert(id, z);
        h2.delivered.insert(id, Vec::new());
        h2.dispatch(id, acts);
    }
    h2.run();
    assert!(h2.leader(ServerId(2)).is_established());
    h2.request(ServerId(2), b"epoch2");

    // Late join by the divergent server 3.
    let (z, acts) = Zab::from_election(ServerId(3), ServerId(2), cfg, s3, Zxid::ZERO, 0);
    h2.nodes.insert(ServerId(3), z);
    h2.delivered.insert(ServerId(3), Vec::new());
    h2.dispatch(ServerId(3), acts);
    h2.run();
    assert_eq!(h2.follower(ServerId(3)).status(), FollowerStatus::Active);
    // The uncommitted suffix is gone; the epoch-2 txn replaced it.
    assert_eq!(h2.follower(ServerId(3)).last_zxid(), Zxid::new(Epoch(2), 1));
    let delivered: Vec<Zxid> = h2.delivered[&ServerId(3)].iter().map(|t| t.zxid).collect();
    assert!(!delivered.contains(&Zxid::new(Epoch(1), 4)));
    assert!(!delivered.contains(&Zxid::new(Epoch(1), 5)));
    // New broadcasts flow to the truncated follower.
    h2.request(ServerId(2), b"fresh");
    assert_eq!(h2.follower(ServerId(3)).last_zxid(), Zxid::new(Epoch(2), 2));
}

#[test]
fn fresher_follower_forces_leader_abdication() {
    // Server 1 is nominated but server 2 has a longer history: the
    // prospective leader must abdicate rather than discard committed txns.
    let mut h = Harness::new(3, ServerId(1));
    for i in 0..2u8 {
        h.request(ServerId(1), &[i]);
    }
    let s1 = h.nodes[&ServerId(1)].persistent_state();
    let mut s2 = h.nodes[&ServerId(2)].persistent_state();
    // Server 2 additionally accepted (and the quorum committed) one more.
    s2.history.append(Txn::new(Zxid::new(Epoch(1), 3), &b"extra"[..]));

    let ids: Vec<ServerId> = (1..=3).map(ServerId).collect();
    let cfg = ClusterConfig::majority(ids);
    let mut h2 = Harness {
        nodes: BTreeMap::new(),
        net: VecDeque::new(),
        delivered: BTreeMap::new(),
        committed: Vec::new(),
        defections: Vec::new(),
    };
    // Wrong nomination: server 1 leads although server 2 is fresher.
    for (id, st) in [(ServerId(1), s1), (ServerId(2), s2)] {
        let (z, acts) = Zab::from_election(id, ServerId(1), cfg.clone(), st, Zxid::ZERO, 0);
        h2.nodes.insert(id, z);
        h2.delivered.insert(id, Vec::new());
        h2.dispatch(id, acts);
    }
    h2.run();
    assert!(h2
        .defections
        .iter()
        .any(|&(id, reason)| id == ServerId(1) && reason.contains("fresher")));
}

#[test]
fn pipelined_burst_commits_everything() {
    let mut h = Harness::new(5, ServerId(1));
    // Submit a burst without waiting for completions in between.
    let acts: Vec<Action> = (0..100u32)
        .flat_map(|i| {
            h.nodes
                .get_mut(&ServerId(1))
                .unwrap()
                .handle(Input::ClientRequest { data: Bytes::copy_from_slice(&i.to_le_bytes()) })
        })
        .collect();
    h.dispatch(ServerId(1), acts);
    h.run();
    for (&id, txns) in &h.delivered {
        assert_eq!(txns.len(), 100, "node {id} missed deliveries");
    }
    assert_eq!(h.leader(ServerId(1)).outstanding(), 0);
}

#[test]
fn outstanding_window_throttles_proposals() {
    let ids: Vec<ServerId> = (1..=3).map(ServerId).collect();
    let mut cfg = ClusterConfig::majority(ids.clone());
    cfg.max_outstanding = 2;
    let mut h = Harness {
        nodes: BTreeMap::new(),
        net: VecDeque::new(),
        delivered: BTreeMap::new(),
        committed: Vec::new(),
        defections: Vec::new(),
    };
    for &id in &ids {
        let (z, acts) = Zab::from_election(
            id,
            ServerId(1),
            cfg.clone(),
            PersistentState::default(),
            Zxid::ZERO,
            0,
        );
        h.nodes.insert(id, z);
        h.delivered.insert(id, Vec::new());
        h.dispatch(id, acts);
    }
    h.run();
    // Enqueue 5 requests at once; without running the network the window
    // only admits 2 proposals.
    let acts: Vec<Action> = (0..5u8)
        .flat_map(|i| {
            h.nodes
                .get_mut(&ServerId(1))
                .unwrap()
                .handle(Input::ClientRequest { data: Bytes::copy_from_slice(&[i]) })
        })
        .collect();
    assert_eq!(h.leader(ServerId(1)).outstanding(), 2);
    assert_eq!(h.leader(ServerId(1)).queued_requests(), 3);
    h.dispatch(ServerId(1), acts);
    h.run();
    // Once the pipeline drains, everything is committed.
    assert_eq!(h.leader(ServerId(1)).outstanding(), 0);
    assert_eq!(h.delivered[&ServerId(2)].len(), 5);
}

#[test]
fn follower_restart_rejoins_established_leader_fast_path() {
    let mut h = Harness::new(3, ServerId(1));
    for i in 0..4u8 {
        h.request(ServerId(1), &[i]);
    }
    // Follower 3 "crashes": leader notices the disconnect; follower comes
    // back with its persisted state and re-follows the same leader.
    let state = h.nodes[&ServerId(3)].persistent_state();
    let acts = h
        .nodes
        .get_mut(&ServerId(1))
        .unwrap()
        .handle(Input::PeerDisconnected { peer: ServerId(3) });
    h.dispatch(ServerId(1), acts);
    let (z, acts) = Zab::from_election(
        ServerId(3),
        ServerId(1),
        ClusterConfig::majority((1..=3).map(ServerId)),
        state,
        Zxid::ZERO,
        0,
    );
    h.nodes.insert(ServerId(3), z);
    h.delivered.insert(ServerId(3), Vec::new());
    h.dispatch(ServerId(3), acts);
    h.run();
    assert_eq!(h.follower(ServerId(3)).status(), FollowerStatus::Active);
    // Same epoch: no election storm, no epoch bump.
    assert_eq!(h.leader(ServerId(1)).epoch(), Epoch(1));
    // It keeps receiving broadcasts.
    h.request(ServerId(1), b"post-rejoin");
    assert_eq!(h.follower(ServerId(3)).last_zxid(), Zxid::new(Epoch(1), 5));
}

#[test]
fn snap_sync_for_deeply_lagging_follower() {
    // Small snap threshold forces SNAP for a fresh follower joining a
    // leader with history.
    let ids: Vec<ServerId> = (1..=3).map(ServerId).collect();
    let mut cfg = ClusterConfig::majority(ids.clone());
    cfg.snap_threshold = 3;
    let mut h = Harness {
        nodes: BTreeMap::new(),
        net: VecDeque::new(),
        delivered: BTreeMap::new(),
        committed: Vec::new(),
        defections: Vec::new(),
    };
    for &id in &[ServerId(1), ServerId(2)] {
        let (z, acts) = Zab::from_election(
            id,
            ServerId(1),
            cfg.clone(),
            PersistentState::default(),
            Zxid::ZERO,
            0,
        );
        h.nodes.insert(id, z);
        h.delivered.insert(id, Vec::new());
        h.dispatch(id, acts);
    }
    h.run();
    for i in 0..10u8 {
        h.request(ServerId(1), &[i]);
    }
    let (z, acts) = Zab::from_election(
        ServerId(3),
        ServerId(1),
        cfg,
        PersistentState::default(),
        Zxid::ZERO,
        0,
    );
    h.nodes.insert(ServerId(3), z);
    h.delivered.insert(ServerId(3), Vec::new());
    h.dispatch(ServerId(3), acts);
    h.run();
    assert_eq!(h.follower(ServerId(3)).status(), FollowerStatus::Active);
    assert_eq!(h.follower(ServerId(3)).last_zxid(), Zxid::new(Epoch(1), 10));
    // Snapshot skipped deliveries of the snapshotted prefix: the follower
    // delivered nothing (snapshot install replaced delivery) or only the
    // tail past the leader's delivered point at snapshot time.
    assert!(h.delivered[&ServerId(3)].len() < 10);
}

#[test]
fn zero_weight_observer_receives_stream_but_cannot_commit() {
    // ZooKeeper-style observer: member with weight 0. It is synced and
    // receives proposals/commits, but its acks never count toward quorum.
    use std::sync::Arc;
    use zab_core::WeightedQuorum;

    let mut cfg = ClusterConfig::majority((1..=3).map(ServerId));
    cfg.quorum = Arc::new(WeightedQuorum::new([
        (ServerId(1), 1),
        (ServerId(2), 1),
        (ServerId(3), 0), // observer
    ]));
    let mut h = Harness {
        nodes: BTreeMap::new(),
        net: VecDeque::new(),
        delivered: BTreeMap::new(),
        committed: Vec::new(),
        defections: Vec::new(),
    };
    for id in (1..=3).map(ServerId) {
        let (z, acts) = Zab::from_election(
            id,
            ServerId(1),
            cfg.clone(),
            PersistentState::default(),
            Zxid::ZERO,
            0,
        );
        h.nodes.insert(id, z);
        h.delivered.insert(id, Vec::new());
        h.dispatch(id, acts);
    }
    h.run();
    assert!(h.leader(ServerId(1)).is_established());
    // Both voter + observer are active followers and deliver the stream.
    h.request(ServerId(1), b"observed");
    assert_eq!(h.delivered[&ServerId(3)].len(), 1, "observer missed the broadcast");
    assert_eq!(h.delivered[&ServerId(2)].len(), 1);

    // Now verify the observer's ack alone cannot commit: leader + observer
    // only (voter s2 never responds) must NOT commit new proposals.
    let mut h2 = Harness {
        nodes: BTreeMap::new(),
        net: VecDeque::new(),
        delivered: BTreeMap::new(),
        committed: Vec::new(),
        defections: Vec::new(),
    };
    for id in [ServerId(1), ServerId(3)] {
        let (z, acts) = Zab::from_election(
            id,
            ServerId(1),
            cfg.clone(),
            PersistentState::default(),
            Zxid::ZERO,
            0,
        );
        h2.nodes.insert(id, z);
        h2.delivered.insert(id, Vec::new());
        h2.dispatch(id, acts);
    }
    h2.run();
    // Weighted quorum of {s1} has weight 1 of 2 total: not a quorum, so
    // the leader cannot even establish without voter s2 — exactly the
    // observer semantics (it adds read capacity, not fault tolerance).
    assert!(!h2.leader(ServerId(1)).is_established());
}
