//! Property tests for the protocol core: message codec totality, zxid
//! algebra, and — most importantly — that DIFF/TRUNC/SNAP synchronization
//! plans always reconstruct the leader's history on any follower.

use bytes::Bytes;
use proptest::prelude::*;
use zab_core::{Epoch, History, Message, SyncPlan, Txn, Zxid};

fn arb_zxid() -> impl Strategy<Value = Zxid> {
    (0u32..50, 0u32..100).prop_map(|(e, c)| Zxid::new(Epoch(e), c))
}

fn arb_txn() -> impl Strategy<Value = Txn> {
    (arb_zxid(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(z, d)| Txn::new(z, d))
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (0u32..100, arb_zxid())
            .prop_map(|(e, z)| Message::FollowerInfo { accepted_epoch: Epoch(e), last_zxid: z }),
        (0u32..100).prop_map(|e| Message::NewEpoch { epoch: Epoch(e) }),
        (0u32..100, arb_zxid())
            .prop_map(|(e, z)| Message::AckEpoch { current_epoch: Epoch(e), last_zxid: z }),
        prop::collection::vec(arb_txn(), 0..8).prop_map(|txns| Message::SyncDiff { txns }),
        (arb_zxid(), prop::collection::vec(arb_txn(), 0..8))
            .prop_map(|(z, txns)| Message::SyncTrunc { truncate_to: z, txns }),
        (
            prop::collection::vec(any::<u8>(), 0..128),
            arb_zxid(),
            prop::collection::vec(arb_txn(), 0..4)
        )
            .prop_map(|(s, z, txns)| Message::SyncSnap {
                snapshot: Bytes::from(s),
                snapshot_zxid: z,
                txns
            }),
        (0u32..100).prop_map(|e| Message::NewLeader { epoch: Epoch(e) }),
        (0u32..100, arb_zxid())
            .prop_map(|(e, z)| Message::AckNewLeader { epoch: Epoch(e), last_zxid: z }),
        arb_zxid().prop_map(|z| Message::UpToDate { commit_to: z }),
        (arb_txn(), arb_zxid())
            .prop_map(|(txn, commit_up_to)| Message::Propose { txn, commit_up_to }),
        arb_zxid().prop_map(|zxid| Message::Ack { zxid }),
        arb_zxid().prop_map(|zxid| Message::Commit { zxid }),
        arb_zxid().prop_map(|last_committed| Message::Ping { last_committed }),
        arb_zxid().prop_map(|last_zxid| Message::Pong { last_zxid }),
        prop::collection::vec(any::<u8>(), 0..64)
            .prop_map(|b| Message::Forward { inner: Bytes::from(b) }),
        prop::collection::vec(1u64..64, 0..8).prop_map(|ids| Message::RelayAssign {
            members: ids.into_iter().map(zab_core::ServerId).collect(),
        }),
    ]
}

/// Builds a legal history from a sorted, deduplicated set of zxids.
fn history_from_zxids(mut zxids: Vec<Zxid>) -> History {
    zxids.sort_unstable();
    zxids.dedup();
    let mut h = History::new();
    for z in zxids {
        if z > h.last_zxid() {
            h.append(Txn::new(z, z.0.to_le_bytes().to_vec()));
        }
    }
    h
}

proptest! {
    #[test]
    fn messages_round_trip(msg in arb_message()) {
        let wire = msg.encode();
        prop_assert_eq!(Message::decode(&wire).unwrap(), msg);
    }

    /// Decoding arbitrary bytes never panics, only errors or succeeds.
    #[test]
    fn message_decode_total(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&data);
    }

    /// The relay contract: a FORWARD wraps the origin PROPOSE frame
    /// verbatim — after a round trip over the wire the carried bytes are
    /// identical to the origin encoding, and decoding them yields the
    /// origin message. This is what lets relays fan out the received
    /// `Bytes` without re-encoding.
    #[test]
    fn forward_wrapped_propose_is_byte_identical(
        txn in arb_txn(),
        commit_up_to in arb_zxid(),
    ) {
        let origin = Message::Propose { txn, commit_up_to };
        let origin_bytes = origin.encode();
        let fwd = Message::Forward { inner: Bytes::from(origin_bytes.clone()) };
        match Message::decode(&fwd.encode()).unwrap() {
            Message::Forward { inner } => {
                prop_assert_eq!(inner.as_ref(), origin_bytes.as_slice());
                prop_assert_eq!(Message::decode_bytes(inner).unwrap(), origin);
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    /// Zxid packing is a bijection and order-preserving.
    #[test]
    fn zxid_pack_unpack_bijective(e in any::<u32>(), c in any::<u32>()) {
        let z = Zxid::new(Epoch(e), c);
        prop_assert_eq!(z.epoch(), Epoch(e));
        prop_assert_eq!(z.counter(), c);
    }

    #[test]
    fn zxid_order_matches_tuple_order(
        e1 in 0u32..10, c1 in any::<u32>(),
        e2 in 0u32..10, c2 in any::<u32>(),
    ) {
        let a = Zxid::new(Epoch(e1), c1);
        let b = Zxid::new(Epoch(e2), c2);
        prop_assert_eq!(a.cmp(&b), (e1, c1).cmp(&(e2, c2)));
    }

    /// THE synchronization property: for any legal leader history and any
    /// legal follower history, applying the leader's sync plan to the
    /// follower leaves the follower's history identical to the leader's.
    #[test]
    fn sync_plan_reconstructs_leader_history(
        leader_zxids in prop::collection::vec(arb_zxid(), 0..40),
        // The follower shares a prefix with the leader plus divergent junk.
        shared_prefix_len in any::<prop::sample::Index>(),
        divergent in prop::collection::vec(arb_zxid(), 0..10),
        threshold in prop_oneof![Just(0u64), Just(5u64), Just(1_000u64)],
    ) {
        let leader = history_from_zxids(leader_zxids);
        // Follower: some prefix of the leader's txns, then divergent ones.
        let keep = shared_prefix_len.index(leader.len() + 1);
        let mut follower = History::new();
        for t in &leader.txns()[..keep] {
            follower.append(t.clone());
        }
        let mut divergent_count = 0usize;
        for z in divergent {
            // Legal divergence models proposals of dead epochs: zxids the
            // leader never saw. Two *different* txns with one zxid cannot
            // exist (an epoch belongs to a unique leader), so skip zxids
            // present in the leader's history.
            if z > follower.last_zxid() && !leader.contains_point(z) {
                follower.append(Txn::new(z, b"divergent".to_vec()));
                divergent_count += 1;
            }
        }

        // The follower applies plans exactly as `Follower::on_sync_*` does,
        // including the self-healing retry when a TRUNC references a point
        // it does not have (it truncates to its greatest point below and
        // re-runs discovery). Every retry strictly shrinks the follower's
        // divergent tail, so convergence takes at most one round per
        // divergent segment plus the final DIFF.
        let max_rounds = divergent_count + 2;
        let mut rounds = 0;
        loop {
            rounds += 1;
            prop_assert!(rounds <= max_rounds, "sync did not converge in {} rounds", max_rounds);
            match leader.plan_sync(follower.last_zxid(), threshold) {
                SyncPlan::Diff { txns } => {
                    for t in txns {
                        prop_assert!(t.zxid > follower.last_zxid());
                        follower.append(t);
                    }
                    break;
                }
                SyncPlan::Trunc { truncate_to, txns } => {
                    if !follower.contains_point(truncate_to) {
                        // Follower::on_sync_trunc's fallback + rejoin.
                        let fallback = follower.last_point_at_or_below(truncate_to);
                        follower.truncate_to(fallback);
                        continue;
                    }
                    follower.truncate_to(truncate_to);
                    for t in txns {
                        prop_assert!(t.zxid > follower.last_zxid());
                        follower.append(t);
                    }
                    break;
                }
                SyncPlan::Snap => {
                    // Snapshot covers the leader's delivered state; model
                    // it as resetting to the leader's base and appending
                    // the suffix.
                    follower.reset_to_snapshot(leader.base());
                    for t in leader.txns_after(leader.base()) {
                        follower.append(t.clone());
                    }
                    break;
                }
            }
        }
        // The follower's zxid sequence now equals the leader's... except
        // for payloads of shared-prefix txns, which were identical by
        // construction; compare zxids AND payloads.
        prop_assert_eq!(follower.txns(), leader.txns());
        prop_assert_eq!(follower.last_zxid(), leader.last_zxid());
    }

    /// After purging (compaction), sync plans still reconstruct histories
    /// for followers at or past the base, and demand SNAP for the rest.
    #[test]
    fn sync_plan_respects_compaction(
        count in 2u32..40,
        purge_at in any::<prop::sample::Index>(),
        follower_at in any::<prop::sample::Index>(),
    ) {
        let mut leader = History::new();
        for c in 1..=count {
            leader.append(Txn::new(Zxid::new(Epoch(1), c), vec![]));
        }
        let purge_idx = purge_at.index(count as usize) as u32 + 1;
        leader.mark_committed(Zxid::new(Epoch(1), count));
        leader.purge_through(Zxid::new(Epoch(1), purge_idx));

        let follower_last = follower_at.index(count as usize + 1) as u32;
        let fz = if follower_last == 0 { Zxid::ZERO } else { Zxid::new(Epoch(1), follower_last) };
        let plan = leader.plan_sync(fz, 10_000);
        if fz < leader.base() {
            prop_assert_eq!(plan, SyncPlan::Snap);
        } else {
            match plan {
                SyncPlan::Diff { txns } => {
                    prop_assert_eq!(txns.len() as u32, count - follower_last);
                }
                other => prop_assert!(false, "expected diff, got {:?}", other),
            }
        }
    }

    /// Truncation and commit watermarks interact safely under random
    /// operation sequences (no panics, invariants hold).
    #[test]
    fn history_operations_maintain_invariants(
        ops in prop::collection::vec((0u8..4, arb_zxid()), 0..60),
    ) {
        let mut h = History::new();
        for (kind, z) in ops {
            match kind {
                0 => {
                    if z > h.last_zxid() {
                        h.append(Txn::new(z, vec![]));
                    }
                }
                1 => {
                    if z <= h.last_zxid() {
                        h.mark_committed(z);
                    }
                }
                2 => {
                    if z >= h.base() {
                        h.truncate_to(z);
                    }
                }
                _ => {
                    if z <= h.last_committed() && z >= h.base() {
                        h.purge_through(z);
                    }
                }
            }
            // Invariants after every step.
            prop_assert!(h.last_committed() <= h.last_zxid());
            prop_assert!(h.base() <= h.last_zxid());
            let mut prev = h.base();
            for t in h.txns() {
                prop_assert!(t.zxid > prev);
                prev = t.zxid;
            }
        }
    }
}

proptest! {
    /// The zero-copy codec path round-trips payloads of every interesting
    /// size: a proposed txn encoded, framed, reassembled by the frame
    /// decoder, and decoded through the refcounted-`Bytes` cursor comes
    /// back byte-identical. Sizes pin the empty payload and a full 64 KiB
    /// payload alongside random small ones.
    #[test]
    fn bytes_codec_path_round_trips(
        size in prop_oneof![Just(0usize), Just(64 * 1024), 1usize..2048],
        seed in any::<u8>(),
        zxid in arb_zxid(),
    ) {
        let payload: Vec<u8> = (0..size).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect();
        let msg = Message::Propose { txn: Txn::new(zxid, payload.clone()), commit_up_to: Zxid::ZERO };

        // Encode and frame as the transport does, then feed the frame
        // through the segment-based decoder.
        let frame = zab_wire::frame::encode_frame(&msg.encode());
        let mut dec = zab_wire::frame::FrameDecoder::new();
        dec.extend_bytes(Bytes::from(frame));
        let wire = dec.next_frame().unwrap().expect("one whole frame");
        prop_assert!(dec.next_frame().unwrap().is_none());

        match Message::decode_bytes(wire).unwrap() {
            Message::Propose { txn, .. } => {
                prop_assert_eq!(txn.zxid, zxid);
                prop_assert_eq!(txn.data.as_ref(), &payload[..]);
            }
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }
}

/// Replays one recorded failure of `sync_plan_reconstructs_leader_history`
/// (see `prop.proptest-regressions`) as a deterministic test: the follower
/// applies the leader's sync plans until its history matches.
fn check_sync_reconstructs(
    leader_zxids: Vec<Zxid>,
    keep: usize,
    divergent: Vec<Zxid>,
    threshold: u64,
) {
    let leader = history_from_zxids(leader_zxids);
    let keep = keep.min(leader.len());
    let mut follower = History::new();
    for t in &leader.txns()[..keep] {
        follower.append(t.clone());
    }
    let mut divergent_count = 0usize;
    for z in divergent {
        if z > follower.last_zxid() && !leader.contains_point(z) {
            follower.append(Txn::new(z, b"divergent".to_vec()));
            divergent_count += 1;
        }
    }
    let max_rounds = divergent_count + 2;
    let mut rounds = 0;
    loop {
        rounds += 1;
        assert!(rounds <= max_rounds, "sync did not converge in {max_rounds} rounds");
        match leader.plan_sync(follower.last_zxid(), threshold) {
            SyncPlan::Diff { txns } => {
                for t in txns {
                    assert!(t.zxid > follower.last_zxid());
                    follower.append(t);
                }
                break;
            }
            SyncPlan::Trunc { truncate_to, txns } => {
                if !follower.contains_point(truncate_to) {
                    let fallback = follower.last_point_at_or_below(truncate_to);
                    follower.truncate_to(fallback);
                    continue;
                }
                follower.truncate_to(truncate_to);
                for t in txns {
                    assert!(t.zxid > follower.last_zxid());
                    follower.append(t);
                }
                break;
            }
            SyncPlan::Snap => {
                follower.reset_to_snapshot(leader.base());
                for t in leader.txns_after(leader.base()) {
                    follower.append(t.clone());
                }
                break;
            }
        }
    }
    assert_eq!(follower.txns(), leader.txns());
    assert_eq!(follower.last_zxid(), leader.last_zxid());
}

#[test]
fn sync_regression_same_zxid_divergence_threshold_zero() {
    // prop.proptest-regressions seed 8ddda835…: shrinks to
    // leader_zxids = [Zxid(1)], shared_prefix_len = 0,
    // divergent = [Zxid(1)], threshold = 0.
    check_sync_reconstructs(vec![Zxid(1)], 0, vec![Zxid(1)], 0);
}

#[test]
fn sync_regression_multi_epoch_divergence_threshold_five() {
    // prop.proptest-regressions seed a628207a…: shrinks to three leader
    // epochs with an interleaved divergent tail at threshold 5.
    check_sync_reconstructs(
        vec![Zxid(167_503_724_554), Zxid(141_733_920_768), Zxid(1)],
        0,
        vec![Zxid(2), Zxid(141_733_920_769), Zxid(167_503_724_555)],
        5,
    );
}
